"""A2/A3 — ablation: the §3.1 interference controls are load-bearing.

The paper's methodology disables periodic refresh (which also starves
on-die TRR) and on-die ECC before measuring.  This ablation measures the
same rows with each control flipped back on:

* refresh enabled — REFs interleaved at the nominal tREFI rate let the
  hidden TRR fire and periodically restore the victim: BER collapses;
* ECC enabled — single-bit-per-word flips are silently corrected on
  read: measured BER drops substantially.

Either misconfiguration would corrupt a characterization study, which is
why §3.1 exists.
"""

import numpy as np

from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig, InterferenceControls
from repro.core.patterns import ROWSTRIPE0
from repro.dram.address import DramAddress

from benchmarks.conftest import emit

ROWS = range(5000, 5064, 8)


def measure(board, controls, rows=ROWS):
    board.host.set_ecc_enabled(controls.ecc_enabled)
    config = ExperimentConfig(controls=controls)
    experiment = BerExperiment(board.host, board.device.mapper, config)
    records = [experiment.run_row(DramAddress(7, 0, 0, row), ROWSTRIPE0)
               for row in rows]
    return float(np.mean([record.ber for record in records]))


def test_ablation_interference_controls(benchmark, board, results_dir):
    def campaign():
        clean = measure(board, InterferenceControls())
        with_ecc = measure(board, InterferenceControls(ecc_enabled=True))
        with_refresh = measure(board, InterferenceControls(
            issue_periodic_refresh=True, time_budget_s=1.0))
        return clean, with_ecc, with_refresh

    clean, with_ecc, with_refresh = benchmark.pedantic(campaign, rounds=1,
                                                       iterations=1)
    board.host.set_ecc_enabled(False)

    lines = [
        "mean BER over 8 channel-7 rows, Rowstripe0, 256K hammers:",
        f"  controls per paper Sec 3.1 (refresh off, ECC off): "
        f"{clean:.4%}",
        f"  ECC left enabled (A3):                             "
        f"{with_ecc:.4%}",
        f"  periodic refresh left enabled (A2, TRR active):    "
        f"{with_refresh:.4%}",
        "",
        f"ECC masks {1 - with_ecc / clean:.0%} of the flips; "
        f"refresh+TRR prevent {1 - with_refresh / clean:.0%}.",
    ]
    emit(results_dir, "ablation_interference", "\n".join(lines))

    assert with_ecc < clean
    assert with_refresh < clean

"""A1 — ablation: temperature sensitivity (paper §6, future work 2.4).

The paper runs everything at 85 degC (the maximum operating temperature
at the nominal refresh rate) and lists voltage/temperature sweeps as
future work.  This ablation performs the temperature sweep on the
simulated chip: BER at 55-90 degC with the PID rig actually settling the
plant at each setpoint.  Expected shape: monotonically more flips as the
chip heats (the fault model's thresholds shrink with temperature).
"""

import numpy as np

from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.patterns import ROWSTRIPE0
from repro.dram.address import DramAddress

from benchmarks.conftest import emit

TEMPERATURES_C = (55.0, 65.0, 75.0, 85.0, 90.0)
ROWS = range(5000, 5048, 8)


def test_ablation_temperature_sweep(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    experiment = BerExperiment(board.host, board.device.mapper,
                               ExperimentConfig())

    def sweep():
        means = {}
        for temperature in TEMPERATURES_C:
            board.set_target_temperature(temperature)
            records = [experiment.run_row(DramAddress(7, 0, 0, row),
                                          ROWSTRIPE0)
                       for row in ROWS]
            means[temperature] = float(np.mean(
                [record.ber for record in records]))
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    board.set_target_temperature(85.0)

    lines = ["mean BER vs chip temperature (ch7, Rowstripe0, 256K hammers):"]
    for temperature, ber in means.items():
        bar = "#" * int(round(ber * 4000))
        lines.append(f"  {temperature:5.1f} degC  {ber:.4%}  {bar}")
    emit(results_dir, "ablation_temperature", "\n".join(lines))

    ordered = [means[t] for t in TEMPERATURES_C]
    assert ordered == sorted(ordered), \
        "hotter chips should flip at least as much"
    assert means[90.0] > means[55.0]

"""E3 — extension: wordline-voltage sweep (paper §6, future work 2.4).

The paper plans to characterize RowHammer "across different HBM2 voltage
and temperature levels", building on the group's reduced-wordline-voltage
DRAM study (Yaglikci+ DSN'22).  This bench performs the voltage half:
BER and HC_first on the same rows as the wordline rail is underscaled
from the nominal 2.5 V toward the 2.0 V operational minimum.  Expected
shape: monotonically fewer flips and higher HC_first at lower voltage.
"""

import numpy as np

from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.hcfirst import HcFirstSearch
from repro.core.patterns import ROWSTRIPE0
from repro.dram.address import DramAddress

from benchmarks.conftest import emit

VOLTAGES_V = (2.5, 2.4, 2.3, 2.2, 2.1)
ROWS = range(5000, 5048, 8)


def test_ablation_voltage_sweep(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    ber = BerExperiment(board.host, board.device.mapper,
                        ExperimentConfig())
    search = HcFirstSearch(board.host, board.device.mapper,
                           ExperimentConfig())
    victim = DramAddress(7, 0, 0, 5000)

    def sweep():
        results = {}
        for voltage in VOLTAGES_V:
            board.device.set_wordline_voltage(voltage)
            mean_ber = float(np.mean([
                ber.run_row(DramAddress(7, 0, 0, row), ROWSTRIPE0).ber
                for row in ROWS]))
            hc = search.search(victim, ROWSTRIPE0).hc_first
            results[voltage] = (mean_ber, hc)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    board.device.set_wordline_voltage(2.5)

    lines = ["BER / HC_first vs wordline voltage "
             "(ch7, Rowstripe0, 256K hammers):"]
    for voltage, (mean_ber, hc) in results.items():
        hc_text = f"{hc:,}" if hc is not None else "censored (>256K)"
        lines.append(f"  {voltage:.1f} V: BER {mean_ber:.4%}   "
                     f"HC_first {hc_text}")
    lines.append("")
    lines.append("=> underscaling the wordline weakens aggressor "
                 "coupling: fewer flips, higher HC_first (DSN'22 shape).")
    emit(results_dir, "ablation_voltage", "\n".join(lines))

    bers = [results[voltage][0] for voltage in VOLTAGES_V]
    assert bers == sorted(bers, reverse=True), \
        "BER should fall as voltage is reduced"

"""A5 — attack implication: templating speed per channel (§4 summary).

The paper's first implication: an attacker should template the most
vulnerable channel to find exploitable bitflips faster.  This bench
measures time-to-N-templates (in DRAM time, the budget an attacker pays)
on the best and worst channels.  Expected shape: channel 7 reaches the
target in roughly half the time (and/or half the rows) of channel 0,
mirroring the ~2x BER gap.
"""

from repro.attacks.templating import MemoryTemplater
from repro.core.patterns import ROWSTRIPE1

from benchmarks.conftest import emit, env_int


def test_attack_templating_speed(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    # Template with Rowstripe1 — the worst-case pattern for the most
    # vulnerable die (an attacker picks the channel's WCDP).
    templater = MemoryTemplater(board.host, board.device.mapper,
                                hammer_count=128 * 1024,
                                pattern=ROWSTRIPE1)
    target = env_int("REPRO_TEMPLATE_TARGET", 400)
    rows = range(4000, 4000 + 4 * env_int("REPRO_TEMPLATE_ROWS", 96), 4)

    results = benchmark.pedantic(
        lambda: templater.compare_channels([0, 7], rows=rows,
                                           target_templates=target),
        rounds=1, iterations=1)

    lines = [f"templating target: {target} exploitable bitflips "
             f"(Rowstripe1, 128K hammers per row)"]
    for channel, result in results.items():
        lines.append(
            f"  ch{channel}: {result.templates_found} templates from "
            f"{result.rows_scanned} rows in {result.dram_time_s:.3f} s "
            f"DRAM time ({result.seconds_per_template * 1e3:.2f} ms/"
            f"template)")
    speedup = (results[0].seconds_per_template /
               results[7].seconds_per_template)
    lines.append(f"most-vulnerable-channel speedup (paper implies ~2x): "
                 f"{speedup:.2f}x")
    emit(results_dir, "attack_templating", "\n".join(lines))

    assert results[7].seconds_per_template < \
        results[0].seconds_per_template

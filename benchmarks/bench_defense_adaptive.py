"""A4 — defense implication: vulnerability-adaptive mitigation (§4).

The paper's second implication: a defense can adapt to the measured
heterogeneity.  This bench characterizes per-channel HC_first, derives a
channel-adaptive PARA policy, and attacks victims on the best and worst
channels under (a) no defense, (b) uniform PARA provisioned for the worst
channel, and (c) the adaptive policy.  Expected shape: both defenses stop
the attack, and the adaptive one issues measurably fewer refreshes.
"""

from repro.core.sweeps import SpatialSweep, SweepConfig
from repro.defenses.evaluation import compare_defenses
from repro.dram.address import DramAddress

from benchmarks.conftest import emit, env_int


def test_defense_adaptive_vs_uniform(benchmark, board, results_dir):
    from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
    characterization = SpatialSweep(board, SweepConfig(
        channels=(0, 3, 7),
        rows_per_region=4,
        hcfirst_rows_per_region=4,
        patterns=(ROWSTRIPE0, ROWSTRIPE1),
        include_ber=False,
    )).run()

    victims = [DramAddress(channel, 0, 0, row)
               for channel in (0, 3, 7)
               for row in range(5200, 5200 + 4 * env_int(
                   "REPRO_DEFENSE_VICTIMS", 4), 4)]
    base_probability = 6.0 / min(
        record.hc_first for record in
        characterization.hcfirst(include_censored=False))

    results = benchmark.pedantic(
        lambda: compare_defenses(board, characterization, victims,
                                 base_probability=base_probability),
        rounds=1, iterations=1)

    lines = [f"attack: 256K double-sided hammers per victim, "
             f"{len(victims)} victims on channels 0, 3, and 7",
             f"uniform PARA probability (provisioned for the worst "
             f"channel): {base_probability:.2e}"]
    for name in ("none", "uniform", "adaptive"):
        lines.append("  " + results[name].summary())
    saved = 1 - (results["adaptive"].total_refreshes /
                 max(1, results["uniform"].total_refreshes))
    lines.append(f"adaptive saves {saved:.0%} of the preventive refreshes "
                 f"at equal protection")
    emit(results_dir, "defense_adaptive", "\n".join(lines))

    assert results["none"].victims_compromised > 0
    assert results["uniform"].victims_compromised == 0
    assert results["adaptive"].victims_compromised == 0
    assert results["adaptive"].total_refreshes < \
        results["uniform"].total_refreshes

"""E1 — engine program cache: Fig. 3 BER sweep, cache on vs off.

Times the Fig. 3-shaped BER campaign (all 8 channels, three regions,
Table-1 rowstripe patterns, 256K double-sided hammers) twice on
identical fresh stations: once through the engine's verified-program
cache (the default) and once with ``REPRO_PROGRAM_CACHE=0``, which
restores the pre-engine build-verify-run-per-measurement path.

Asserts the contract the cache was built under: the cached campaign is
**byte-identical** to the uncached one (same dataset fingerprint) and
at least **1.5x faster**.  The hit rate is read back through the
metrics registry (``engine.cache.hits`` / ``engine.cache.misses``).

Methodology: each arm runs a one-repetition warmup sweep first so the
device model's one-time row sampling is excluded from both sides, then
times the full campaign; two rounds per arm, best round scored.  The
default density (one row per region, ten repetitions) keeps the row
working set inside the cell model's ground-truth LRU, so the timed
region measures steady-state execution rather than cache thrash.
"""

import time
from dataclasses import replace

from repro.bender.board import make_paper_setup
from repro.core.experiment import ExperimentConfig
from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
from repro.core.sweeps import SpatialSweep, SweepConfig
from repro.envutil import PROGRAM_CACHE_VAR
from repro.obs import MetricsRegistry, use_metrics

from benchmarks.conftest import CHIP_SEED, emit, env_int, write_bench_json

ROUNDS = 2
SPEEDUP_FLOOR = 1.5


def cache_bench_config() -> SweepConfig:
    return SweepConfig(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_CACHE_BENCH_ROWS", 1),
        repetitions=env_int("REPRO_CACHE_BENCH_REPS", 10),
        patterns=(ROWSTRIPE0, ROWSTRIPE1),
        include_hcfirst=False,
        experiment=ExperimentConfig(ber_hammer_count=256 * 1024),
    )


def run_arm(cache_flag: str, config: SweepConfig, monkeypatch):
    """One timed campaign on a fresh station; returns its record."""
    monkeypatch.setenv(PROGRAM_CACHE_VAR, cache_flag)
    board = make_paper_setup(seed=CHIP_SEED)
    SpatialSweep(board, replace(config, repetitions=1)).run()  # warmup
    registry = MetricsRegistry()
    with use_metrics(registry):
        started = time.perf_counter()
        dataset = SpatialSweep(board, config).run()
        wall_s = time.perf_counter() - started
    return dataset, wall_s, registry.snapshot()["counters"]


def test_engine_cache_speedup(benchmark, results_dir, monkeypatch):
    config = cache_bench_config()

    uncached_walls, cached_walls = [], []
    fingerprints = set()
    for _ in range(ROUNDS):
        dataset, wall_s, _ = run_arm("0", config, monkeypatch)
        uncached_walls.append(wall_s)
        fingerprints.add(dataset.fingerprint())

    def cached_round():
        dataset, wall_s, counters = run_arm("1", config, monkeypatch)
        cached_walls.append(wall_s)
        fingerprints.add(dataset.fingerprint())
        return counters

    cached_counters = benchmark.pedantic(cached_round, rounds=1,
                                         iterations=1)
    for _ in range(ROUNDS - 1):
        cached_counters = cached_round()

    hits = int(cached_counters["engine.cache.hits"])
    # The warmup pass inserts every shape, so the timed campaign can be
    # (and usually is) all hits.
    misses = int(cached_counters.get("engine.cache.misses", 0))
    hit_rate = hits / (hits + misses)
    speedup = min(uncached_walls) / min(cached_walls)
    measurements = (len(config.channels) * 3 * config.rows_per_region
                    * len(config.patterns) * config.repetitions)

    emit(results_dir, "engine_cache", "\n".join([
        f"Fig. 3 BER campaign, {measurements} measurements "
        f"({config.repetitions} repetitions)",
        f"cache off: {min(uncached_walls):.2f}s   "
        f"cache on: {min(cached_walls):.2f}s   speedup: {speedup:.2f}x",
        f"program cache: {hits:,} hits, {misses:,} misses "
        f"({hit_rate:.1%} hit rate)",
        "datasets byte-identical: "
        f"{'yes' if len(fingerprints) == 1 else 'NO'}",
    ]))
    write_bench_json(results_dir, "engine_cache", {
        "campaign": {
            "channels": len(config.channels),
            "rows_per_region": config.rows_per_region,
            "repetitions": config.repetitions,
            "patterns": len(config.patterns),
            "ber_hammer_count": config.experiment.ber_hammer_count,
        },
        "uncached_s": [round(wall, 3) for wall in uncached_walls],
        "cached_s": [round(wall, 3) for wall in cached_walls],
        "speedup": round(speedup, 3),
        "cache": {"hits": hits, "misses": misses,
                  "hit_rate": round(hit_rate, 4)},
    })

    # One fingerprint across every arm and round: caching is invisible
    # in the data.
    assert len(fingerprints) == 1
    assert hit_rate > 0.9
    assert speedup >= SPEEDUP_FLOOR, (
        f"program cache delivered {speedup:.2f}x, need >= "
        f"{SPEEDUP_FLOOR}x (off {min(uncached_walls):.2f}s, "
        f"on {min(cached_walls):.2f}s)")

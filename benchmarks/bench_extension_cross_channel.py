"""E4 — extension: cross-channel interference (paper §6, future work 3).

The paper asks whether hammering *aggressor channels* can disturb
*victim channels* stacked above/below them.  This bench runs the
differential experiment from :mod:`repro.core.cross_channel` twice:

* on the default chip (no modelled inter-die coupling — consistent with
  the absence of published evidence): the answer is **no interference**;
* on a what-if chip with hypothesised coupling: the same experiment
  detects the excess flips, validating that the methodology would catch
  the effect if a real chip exhibited it.
"""

from repro.bender.board import make_paper_setup
from repro.core.cross_channel import CrossChannelExperiment
from repro.dram.address import DramAddress
from repro.dram.calibration import default_profile

from benchmarks.conftest import CHIP_SEED, emit, env_int


def run_pair(board, activations):
    board.host.set_ecc_enabled(False)
    experiment = CrossChannelExperiment(board.host, board.device.mapper)
    victim = DramAddress(2, 0, 0, 5000)
    return experiment.run(victim, activations=activations)


def test_extension_cross_channel(benchmark, board, results_dir):
    activations = env_int("REPRO_CROSS_CHANNEL_ACTS", 4_000_000)

    def campaign():
        default_outcome = run_pair(board, activations)
        whatif_profile = default_profile().with_overrides(
            cross_channel_coupling=0.08)
        whatif_board = make_paper_setup(seed=CHIP_SEED,
                                        profile=whatif_profile,
                                        settle_thermals=False)
        whatif_outcome = run_pair(whatif_board, activations)
        return default_outcome, whatif_outcome

    default_outcome, whatif_outcome = benchmark.pedantic(
        campaign, rounds=1, iterations=1)

    lines = [
        f"differential stress test: {activations:,} aggressor-channel "
        f"activations vs an equal idle window "
        f"({default_outcome.duration_s * 1e3:.1f} ms each arm)",
        "",
        f"default chip (no modelled inter-die coupling):",
        f"  control flips {default_outcome.control_flips}, stressed "
        f"flips {default_outcome.stressed_flips} -> interference "
        f"detected: {default_outcome.interference_detected}",
        f"what-if chip (8% inter-die coupling):",
        f"  control flips {whatif_outcome.control_flips}, stressed "
        f"flips {whatif_outcome.stressed_flips} -> interference "
        f"detected: {whatif_outcome.interference_detected}",
        "",
        "=> the experiment answers future work 3 for the modelled chip "
        "(no cross-channel RowHammer) and demonstrably has the power to "
        "detect the effect if present.",
    ]
    emit(results_dir, "extension_cross_channel", "\n".join(lines))

    assert not default_outcome.interference_detected
    assert whatif_outcome.interference_detected

"""E5 — extension: cell-orientation analysis from flip directions.

Reverse-engineers each die's true-/anti-cell vulnerability balance from
RowHammer flip *directions* (0->1 flips under Rowstripe0 are anti cells,
1->0 under Rowstripe1 are true cells).  This is the microscopic
explanation of observation O7 — why channel 0's mean HC_first is lower
under Rowstripe0 while other dies prefer Rowstripe1 — and a building
block of the paper's planned richer-data-pattern study.

Expected shape: zero anomalous (wrong-direction) flips everywhere;
die-paired channels agree on their preferred rowstripe pattern; the
preferences differ across dies.
"""

from repro.core.orientation_re import (
    OrientationAnalysis,
    render_orientation_table,
)

from benchmarks.conftest import emit, env_int


def test_extension_orientation_analysis(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    analysis = OrientationAnalysis(board.host, board.device.mapper)
    rows = range(5000, 5000 + 8 * env_int("REPRO_ORIENTATION_ROWS", 10), 8)
    channels = (0, 1, 2, 3, 6, 7)

    profiles = benchmark.pedantic(
        lambda: analysis.profile_channels(channels, rows=rows),
        rounds=1, iterations=1)

    anomalous = sum(profile.anomalous_flips
                    for profile in profiles.values())
    lines = [
        render_orientation_table(profiles),
        "",
        f"anomalous (wrong-direction) flips: {anomalous} "
        "(charge loss only => must be 0)",
    ]
    emit(results_dir, "extension_orientation", "\n".join(lines))

    assert anomalous == 0
    # Die pairs agree on the preferred pattern...
    assert profiles[0].preferred_rowstripe == \
        profiles[1].preferred_rowstripe
    assert profiles[6].preferred_rowstripe == \
        profiles[7].preferred_rowstripe
    # ...and channel 0's anti cells dominate (O7's direction).
    assert profiles[0].preferred_rowstripe == "Rowstripe0"
    assert profiles[2].preferred_rowstripe == "Rowstripe1"

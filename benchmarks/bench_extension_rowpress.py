"""E1 — extension: RowPress sensitivity (paper §6, future work 2.2).

The paper plans to study how RowHammer varies with "the time an
aggressor row remains active" and the RowPress effect.  This bench runs
that study: flips at a fixed hammer count, and the first-flip hammer
count, as the aggressor-on time grows from the minimum tRAS (~33 ns)
into the microseconds.  Expected shape (RowPress, Luo+ ISCA'23): flips
rise and HC_first falls by roughly an order of magnitude at
microsecond-scale aggressor-on times.
"""

from repro.core.rowpress import RowPressExperiment
from repro.dram.address import DramAddress

from benchmarks.conftest import emit

#: Extra open cycles beyond tRAS: 0 ns, ~0.8 us, ~3.4 us, ~6.8 us.
EXTRA_OPEN_CYCLES = (0, 512, 2048, 4096)


def test_extension_rowpress(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    experiment = RowPressExperiment(board.host, board.device.mapper)
    victim = DramAddress(7, 0, 0, 5000)

    def campaign():
        points = experiment.sweep(victim, hammer_count=40_000,
                                  extra_open_cycles=EXTRA_OPEN_CYCLES)
        hc_base = experiment.first_flip_hammers(victim, 0)
        hc_pressed = experiment.first_flip_hammers(victim, 4096)
        return points, hc_base, hc_pressed

    points, hc_base, hc_pressed = benchmark.pedantic(campaign, rounds=1,
                                                     iterations=1)

    period_ns = 1e9 / board.device.timing.frequency_hz
    lines = ["flips at 40K double-sided hammers vs aggressor-on time "
             "(ch7 row 5000, Rowstripe0):"]
    for point in points:
        on_ns = point.aggressor_on_cycles * period_ns
        lines.append(f"  tAggON {on_ns:8.0f} ns: {point.flips:>5} flips "
                     f"(hammer phase {point.duration_s * 1e3:7.1f} ms)")
    lines += [
        "",
        f"first-flip hammers at minimum tAggON: {hc_base:,}",
        f"first-flip hammers at ~6.8 us tAggON: {hc_pressed:,}",
        f"HC_first reduction: {hc_base / hc_pressed:.1f}x "
        f"(RowPress reports ~an order of magnitude)",
    ]
    emit(results_dir, "extension_rowpress", "\n".join(lines))

    flips = [point.flips for point in points]
    assert flips == sorted(flips) and flips[-1] > flips[0]
    assert hc_pressed < hc_base / 4

"""E2 — extension: bypassing the uncovered TRR (why §5 matters).

§5 uncovers a sampler-based TRR firing every 17 REFs.  U-TRR's point is
that such mechanisms are attackable once understood: this bench attacks
a victim under *system-realistic* conditions (periodic refresh at the
nominal tREFI rate, hidden TRR active) twice —

* naively: the sampler always holds a true aggressor, TRR rescues the
  victim, zero flips;
* with one decoy activation per refresh interval: the sampler holds the
  decoy at every REF, the preventive refresh is wasted, and the victim
  flips despite the mitigation.
"""

from repro.attacks.trrespass import TrrBypassAttack
from repro.dram.address import DramAddress

from benchmarks.conftest import emit, env_int


def test_extension_trr_bypass(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    attack = TrrBypassAttack(board.host, board.device.mapper)
    victim = DramAddress(7, 0, 0, 5000)
    hammers = env_int("REPRO_BYPASS_HAMMERS", 400_000)

    outcomes = benchmark.pedantic(
        lambda: attack.compare(victim, hammer_count=hammers),
        rounds=1, iterations=1)

    lines = [f"attack under live refresh (hidden TRR active), "
             f"{hammers:,} double-sided hammers on {victim}:"]
    for name in ("naive", "decoy"):
        outcome = outcomes[name]
        lines.append(
            f"  {name:<6} flips={outcome.flips:>4}  "
            f"REFs issued={outcome.refs_issued:,}  "
            f"attack time={outcome.duration_s * 1e3:.1f} ms")
    lines.append("")
    lines.append("=> the sampler-based TRR uncovered in Sec 5 stops the "
                 "naive attack but is defeated by decoy activations "
                 "(TRRespass-style).")
    emit(results_dir, "extension_trr_bypass", "\n".join(lines))

    assert outcomes["naive"].flips == 0
    assert outcomes["decoy"].flips > 0

"""F3 — Fig. 3: BER across rows, channels, and data patterns.

Regenerates the paper's Fig. 3: the distribution of BER (256K
double-sided hammers) across DRAM rows of the first/middle/last 3K-row
regions, for every channel, under the four Table 1 patterns plus the
per-row WCDP.  Expected shape: flips in every row; channels 6/7 highest;
die-pair grouping; rowstripe > checkered; WCDP on top.
"""

import json
import time

from repro.analysis.figures import fig3_ber_distributions, render_box_table
from repro.analysis.tables import ber_channel_extremes, channel_groups_by_ber
from repro.core.parallel import run_sweep
from repro.core.sweeps import SweepConfig

from benchmarks.conftest import (
    emit,
    env_int,
    metrics_summary,
    write_bench_json,
)


def test_fig3_ber_distribution(benchmark, board, board_spec, results_dir,
                               campaign_metrics):
    config = SweepConfig.from_env(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_ROWS_PER_REGION", 10),
        include_hcfirst=False,
    )

    timing = {}

    def campaign():
        started = time.perf_counter()
        dataset = run_sweep(config, spec=board_spec, board=board)
        timing["wall_s"] = time.perf_counter() - started
        return dataset

    dataset = benchmark.pedantic(campaign, rounds=1, iterations=1)

    dataset.to_json(results_dir / "fig3_dataset.json")
    distributions = fig3_ber_distributions(dataset)
    worst, best, worst_ber, best_ber = ber_channel_extremes(dataset)
    lines = [
        render_box_table(distributions, value_format="{:.5f}",
                         title="BER distribution across rows "
                               "(fraction of row bits flipped)"),
        "",
        f"worst channel: ch{worst} (mean WCDP BER {worst_ber:.4%})",
        f"best channel:  ch{best} (mean WCDP BER {best_ber:.4%})",
        f"ratio (paper: 2.03x): {worst_ber / best_ber:.2f}x",
        f"difference (paper: up to 79%): "
        f"{(worst_ber - best_ber) / worst_ber:.1%}",
        f"channel groups by BER (paper: die pairs): "
        f"{channel_groups_by_ber(dataset)}",
    ]
    emit(results_dir, "fig3_ber", "\n".join(lines))

    (results_dir / "fig3_summary.json").write_text(json.dumps({
        "worst_channel": worst, "best_channel": best,
        "worst_ber": worst_ber, "best_ber": best_ber,
        "ratio": worst_ber / best_ber,
    }, indent=1))

    write_bench_json(results_dir, "fig3_ber", {
        "campaign": {
            "channels": len(config.channels),
            "rows_per_region": config.rows_per_region,
            "patterns": len(config.patterns),
            "jobs": config.jobs,
        },
        "elapsed_s": round(timing["wall_s"], 3),
        "metrics": metrics_summary(campaign_metrics, timing["wall_s"]),
    })

    assert worst in (6, 7)
    assert worst_ber / best_ber > 1.4

"""F3 — Fig. 3: BER across rows, channels, and data patterns.

Regenerates the paper's Fig. 3: the distribution of BER (256K
double-sided hammers) across DRAM rows of the first/middle/last 3K-row
regions, for every channel, under the four Table 1 patterns plus the
per-row WCDP.  Expected shape: flips in every row; channels 6/7 highest;
die-pair grouping; rowstripe > checkered; WCDP on top.

Also the analytic fast path's headline benchmark: the campaign runs
in two arms, once purely interpreted (``REPRO_FASTPATH=0``) and once
through the effect-summary fast path, on separately built stations,
each timed steady-state after one warm-up round — the archived record
carries both wall clocks and the speedup, and the CI equivalence job
pins the two arms to byte-identical datasets.
"""

import json
import os
import time

from repro.analysis.figures import fig3_ber_distributions, render_box_table
from repro.analysis.tables import ber_channel_extremes, channel_groups_by_ber
from repro.bender.board import make_paper_setup
from repro.core.parallel import run_sweep
from repro.core.sweeps import SweepConfig
from repro.envutil import FASTPATH_VAR, fastpath_enabled
from repro.obs import MetricsRegistry, use_metrics

from benchmarks.conftest import (
    CHIP_SEED,
    emit,
    env_int,
    metrics_summary,
    write_bench_json,
)

#: The interpreted Fig. 3 wall clock archived before the fast path
#: landed (same config: 8 channels x 10 rows/region x 4 patterns,
#: jobs=1, seed 2023) — the fixed goalpost for the recorded speedup,
#: immune to drift in the fresh baseline re-measured below.
RECORDED_INTERPRETED_ELAPSED_S = 6.251


def _interpreted_baseline(config: SweepConfig) -> float:
    """Time the same campaign with the fast path off, on its own
    freshly built station (equal footing: the fast arm's board is
    also built cold by the ``board`` fixture).  Runs under a private
    metrics registry so the archived telemetry block counts the fast
    arm only."""
    saved = os.environ.get(FASTPATH_VAR)
    os.environ[FASTPATH_VAR] = "0"
    try:
        baseline_board = make_paper_setup(seed=CHIP_SEED)
        with use_metrics(MetricsRegistry()):
            run_sweep(config, board=baseline_board)  # warm-up round
            started = time.perf_counter()
            run_sweep(config, board=baseline_board)
            return time.perf_counter() - started
    finally:
        if saved is None:
            del os.environ[FASTPATH_VAR]
        else:
            os.environ[FASTPATH_VAR] = saved


def test_fig3_ber_distribution(benchmark, board, board_spec, results_dir,
                               campaign_metrics):
    config = SweepConfig.from_env(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_ROWS_PER_REGION", 10),
        include_hcfirst=False,
    )

    interpreted_s = _interpreted_baseline(config)

    timing = {}

    def campaign():
        started = time.perf_counter()
        dataset = run_sweep(config, spec=board_spec, board=board)
        timing["wall_s"] = time.perf_counter() - started
        return dataset

    # Warm-up round under a private registry: the timed round below is
    # steady-state (caches and schedule memos hot, matching the
    # interpreted arm's warm second round) and the archived telemetry
    # counts the timed round only.
    with use_metrics(MetricsRegistry()):
        run_sweep(config, spec=board_spec, board=board)

    dataset = benchmark.pedantic(campaign, rounds=1, iterations=1)

    dataset.to_json(results_dir / "fig3_dataset.json")
    distributions = fig3_ber_distributions(dataset)
    worst, best, worst_ber, best_ber = ber_channel_extremes(dataset)
    lines = [
        render_box_table(distributions, value_format="{:.5f}",
                         title="BER distribution across rows "
                               "(fraction of row bits flipped)"),
        "",
        f"worst channel: ch{worst} (mean WCDP BER {worst_ber:.4%})",
        f"best channel:  ch{best} (mean WCDP BER {best_ber:.4%})",
        f"ratio (paper: 2.03x): {worst_ber / best_ber:.2f}x",
        f"difference (paper: up to 79%): "
        f"{(worst_ber - best_ber) / worst_ber:.1%}",
        f"channel groups by BER (paper: die pairs): "
        f"{channel_groups_by_ber(dataset)}",
    ]
    emit(results_dir, "fig3_ber", "\n".join(lines))

    (results_dir / "fig3_summary.json").write_text(json.dumps({
        "worst_channel": worst, "best_channel": best,
        "worst_ber": worst_ber, "best_ber": best_ber,
        "ratio": worst_ber / best_ber,
    }, indent=1))

    speedup = interpreted_s / timing["wall_s"]
    speedup_vs_recorded = (RECORDED_INTERPRETED_ELAPSED_S /
                           timing["wall_s"])
    metrics = metrics_summary(campaign_metrics, timing["wall_s"])
    write_bench_json(results_dir, "fig3_ber", {
        "campaign": {
            "channels": len(config.channels),
            "rows_per_region": config.rows_per_region,
            "patterns": len(config.patterns),
            "jobs": config.jobs,
        },
        "elapsed_s": round(timing["wall_s"], 3),
        "interpreted_elapsed_s": round(interpreted_s, 3),
        "speedup_x": round(speedup, 2),
        "speedup_vs_recorded_x": round(speedup_vs_recorded, 2),
        "metrics": metrics,
    })

    assert worst in (6, 7)
    assert worst_ber / best_ber > 1.4
    if fastpath_enabled():
        # Every campaign program must summarize: fallbacks are a
        # correctness escape hatch, never the benchmarked path.
        fastpath = metrics.get("fastpath", {})
        assert fastpath.get("hits", 0) > 0
        assert fastpath.get("fallbacks", 0) == 0
        # Conservative floor; the archived record carries the real
        # ratio (see speedup_x / speedup_vs_recorded_x).
        assert speedup > 3

"""F4 — Fig. 4: HC_first across rows, channels, and data patterns.

Regenerates the paper's Fig. 4: the distribution of the minimum hammer
count to the first bitflip, per channel and pattern (plus WCDP), with
searches capped at 256K hammers.  Expected shape: minima in the
low-tens-of-thousands (paper: 14,531 over 72K rows); channels 6/7 skew
low; channel-0 Rowstripe0 mean below Rowstripe1 (paper: 57,925 vs
79,179).
"""

import numpy as np

from repro.analysis.censored import censoring_rate, restricted_mean
from repro.analysis.figures import (
    fig4_hcfirst_distributions,
    render_box_table,
)
from repro.core.sweeps import SpatialSweep, SweepConfig

from benchmarks.conftest import emit, env_int


def test_fig4_hcfirst_distribution(benchmark, board, results_dir):
    config = SweepConfig.from_env(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_HCFIRST_ROWS", 4),
        hcfirst_rows_per_region=env_int("REPRO_HCFIRST_ROWS", 4),
        include_ber=True,  # WCDP tie-breaking needs BER at 256K
    )
    sweep = SpatialSweep(board, config)

    dataset = benchmark.pedantic(sweep.run, rounds=1, iterations=1)

    dataset.to_json(results_dir / "fig4_dataset.json")
    distributions = fig4_hcfirst_distributions(dataset)
    uncensored = dataset.hcfirst(include_censored=False)
    censored = [record for record in dataset.hcfirst() if record.censored]

    ch0_rs0 = [record.hc_first for record in dataset.hcfirst(
        channel=0, pattern="Rowstripe0", include_censored=False)]
    ch0_rs1 = [record.hc_first for record in dataset.hcfirst(
        channel=0, pattern="Rowstripe1", include_censored=False)]
    lines = [
        render_box_table(distributions, value_format="{:.0f}",
                         title="HC_first distribution across rows "
                               "(double-sided hammers to first flip)"),
        "",
        f"global minimum HC_first (paper: 14,531): "
        f"{min(record.hc_first for record in uncensored)}",
        f"censored searches (no flip at 256K): {len(censored)}",
        f"ch0 mean HC_first Rowstripe0 (paper: 57,925): "
        f"{np.mean(ch0_rs0):.0f}" if ch0_rs0 else "ch0 Rowstripe0: n/a",
        f"ch0 mean HC_first Rowstripe1 (paper: 79,179): "
        f"{np.mean(ch0_rs1):.0f}" if ch0_rs1 else "ch0 Rowstripe1: n/a",
        "",
        "censoring-aware summary (Kaplan-Meier restricted means; "
        "censored searches carry information instead of being dropped):",
    ]
    for channel in sorted(dataset.channels()):
        records = dataset.hcfirst(channel=channel, pattern="WCDP")
        if not records:
            continue
        lines.append(
            f"  ch{channel}: restricted mean "
            f"{restricted_mean(records):,.0f}  "
            f"(censoring rate {censoring_rate(records):.0%})")
    emit(results_dir, "fig4_hcfirst", "\n".join(lines))

    assert uncensored, "expected at least some uncensored HC_first"
    if ch0_rs0 and ch0_rs1:
        assert np.mean(ch0_rs0) < np.mean(ch0_rs1)

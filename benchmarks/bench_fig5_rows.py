"""F5 — Fig. 5: per-row BER across a bank + subarray structure.

Regenerates the paper's Fig. 5: per-row WCDP BER over the first, middle,
and last 3K-row regions, annotated with subarray boundaries recovered by
the footnote-3 single-sided scan.  Expected shape: BER rises mid-subarray
and droops at the edges; subarrays of 832 or 768 rows; the bank's final
832-row subarray ("SA Z") shows drastically fewer flips.
"""

import numpy as np

from repro.analysis.figures import fig5_row_series, render_row_series
from repro.core.results import REGION_LAST, REGION_MIDDLE
from repro.core.subarray_re import SubarrayReverseEngineer
from repro.core.sweeps import SpatialSweep, SweepConfig

from benchmarks.conftest import emit, env_int


def discover_boundaries(board, dataset):
    """Footnote-3 scan, guided by the measured BER shape.

    Fig. 5's per-row BER dips toward subarray edges, so the sampled row
    sweep itself localizes boundary neighbourhoods; a stride-1
    single-sided scan around the deepest dip then pins the boundary down
    exactly — all from read-back data.
    """
    board.host.set_ecc_enabled(False)
    mapper = board.device.mapper
    records = dataset.ber(channel=7, pattern="WCDP", region="first")
    by_physical = sorted(
        (mapper.logical_to_physical(record.row), record.ber)
        for record in records)
    # Ignore the first few rows (bank edge) when hunting the dip.
    interior = [(row, ber) for row, ber in by_physical if row > 128]
    dip_row = min(interior, key=lambda pair: pair[1])[0]

    engineer = SubarrayReverseEngineer(board.host, board.device.mapper)
    window = 72
    result = engineer.scan(channel=7, start=max(1, dip_row - window),
                           end=dip_row + window)
    return result.boundaries()


def test_fig5_row_sweep(benchmark, board, results_dir):
    config = SweepConfig.from_env(
        channels=(0, 7),
        rows_per_region=env_int("REPRO_FIG5_ROWS", 48),
        include_hcfirst=False,
    )
    sweep = SpatialSweep(board, config)

    def campaign():
        dataset = sweep.run()
        boundaries = discover_boundaries(board, dataset)
        return dataset, boundaries

    dataset, boundaries = benchmark.pedantic(campaign, rounds=1,
                                             iterations=1)
    dataset.to_json(results_dir / "fig5_dataset.json")

    series = fig5_row_series(dataset)
    middle = [record.ber for record in dataset.ber(
        channel=7, pattern="WCDP", region=REGION_MIDDLE)]
    last = [record.ber for record in dataset.ber(
        channel=7, pattern="WCDP", region=REGION_LAST)]
    # Rows of the protected final subarray (last 832 rows of the bank).
    rows = board.device.geometry.rows
    final_subarray = [record.ber for record in dataset.ber(
        channel=7, pattern="WCDP", region=REGION_LAST)
        if record.row >= rows - 832]

    lines = [
        render_row_series(series, boundaries=boundaries),
        "",
        f"subarray boundary discovered by single-sided RH around the "
        f"measured BER dip (paper: 832/768-row subarrays): {boundaries}",
        f"mean WCDP BER, middle region (ch7): {np.mean(middle):.4%}",
        f"mean WCDP BER, last region (ch7):   {np.mean(last):.4%}",
        f"mean WCDP BER, final 832-row subarray (ch7, 'SA Z'): "
        f"{np.mean(final_subarray):.4%}" if final_subarray else "",
    ]
    emit(results_dir, "fig5_rows", "\n".join(lines))

    layout_boundaries = board.device.subarray_layout.boundaries()
    assert boundaries
    assert all(boundary in layout_boundaries for boundary in boundaries)
    if final_subarray:
        assert np.mean(final_subarray) < 0.5 * np.mean(middle)

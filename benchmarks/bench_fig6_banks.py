"""F6 — Fig. 6: BER variation across banks and pseudo channels.

Regenerates the paper's Fig. 6: each of the 256 banks (8 channels x 2
pseudo channels x 16 banks) placed by its mean WCDP BER (y) and
coefficient of variation (x) over rows sampled from the first/middle/
last 100 rows.  Expected shape: bank-to-bank variation exists but is
dominated by channel-to-channel variation (banks of channels 6/7 sit
clearly above the rest).
"""

import time

import numpy as np

from repro.analysis.figures import fig6_bank_scatter, render_scatter_table
from repro.core.parallel import run_sweep
from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
from repro.core.sweeps import SweepConfig

from benchmarks.conftest import (
    emit,
    env_int,
    metrics_summary,
    write_bench_json,
)


def test_fig6_bank_scatter(benchmark, board, board_spec, results_dir,
                           campaign_metrics):
    """The 256-bank campaign: the sweep that gains the most from
    ``REPRO_JOBS`` — its 8 x 2 x banks x 3 shard grid keeps every worker
    busy."""
    config = SweepConfig.from_env(
        channels=tuple(range(8)),
        pseudo_channels=(0, 1),
        banks=tuple(range(env_int("REPRO_FIG6_BANKS", 4))),
        region_size=100,  # the paper samples first/middle/last 100 rows
        rows_per_region=env_int("REPRO_FIG6_ROWS", 3),
        patterns=(ROWSTRIPE0, ROWSTRIPE1),
        include_hcfirst=False,
    )

    timing = {}

    def campaign():
        started = time.perf_counter()
        result = run_sweep(config, spec=board_spec, board=board)
        timing["wall_s"] = time.perf_counter() - started
        return result

    dataset = benchmark.pedantic(campaign, rounds=1, iterations=1)
    dataset.to_json(results_dir / "fig6_dataset.json")

    points = fig6_bank_scatter(dataset)
    by_channel = {}
    for point in points:
        by_channel.setdefault(point.channel, []).append(point.mean_ber)
    channel_means = {channel: np.mean(values)
                     for channel, values in by_channel.items()}

    # Within-channel bank spread vs across-channel spread (the paper's
    # conclusion: test channels, not banks).
    within = np.mean([np.max(values) - np.min(values)
                      for values in by_channel.values()
                      if len(values) > 1])
    across = max(channel_means.values()) - min(channel_means.values())

    lines = [
        render_scatter_table(points),
        "",
        f"banks measured: {len(points)} "
        f"(paper: 256 banks, 300 rows each)",
        f"mean within-channel bank BER spread:  {within:.4%}",
        f"across-channel mean BER spread:       {across:.4%}",
        f"conclusion holds (channel >> bank variation): {across > within}",
    ]
    emit(results_dir, "fig6_banks", "\n".join(lines))

    write_bench_json(results_dir, "fig6_banks", {
        "campaign": {
            "channels": len(config.channels),
            "pseudo_channels": len(config.pseudo_channels),
            "banks": len(config.banks),
            "rows_per_region": config.rows_per_region,
            "patterns": len(config.patterns),
            "jobs": config.jobs,
        },
        "elapsed_s": round(timing["wall_s"], 3),
        "metrics": metrics_summary(campaign_metrics, timing["wall_s"]),
    })

    assert across > within

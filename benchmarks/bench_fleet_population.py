"""P2 — fleet population: N re-seeded specimens through the warm pool.

The paper reports chip-to-chip variation over six physical HBM2 devices
(§4); the fleet mode scales that axis in simulation.  This benchmark
runs ``REPRO_FLEET_DEVICES`` (default 100) distinct specimens — each a
re-seeded board with its own cell ground truth — through ``repro``'s
fleet runner and archives the population HC_first/BER distributions
plus device throughput in ``BENCH_fleet_population.json``.

Device throughput is the fleet's figure of merit: every device pays
board construction once in some worker's LRU session cache, so the
per-device cost is dominated by the (deliberately small) sweep itself.
"""

import time

from repro.bender.board import BoardSpec
from repro.core.fleet import FleetConfig, FleetRunner

from benchmarks.conftest import (
    effective_parallelism,
    emit,
    env_int,
    write_bench_json,
)

DEVICES = env_int("REPRO_FLEET_DEVICES", 100)
JOBS = env_int("REPRO_FLEET_JOBS", 2, minimum=1)


def test_fleet_population(results_dir):
    config = FleetConfig(devices=DEVICES, base_seed=0, jobs=JOBS,
                         spec=BoardSpec(seed=0))
    runner = FleetRunner(config)
    started = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - started

    assert not runner.errors
    population = result.population
    assert population["devices"] == DEVICES
    # A population of distinct specimens must actually vary: identical
    # per-device minima across 100 seeds would mean the re-seeding is
    # broken and every "device" is the same chip.
    hc_minima = {summary["hc_first_min"] for summary in result.devices}
    assert len(hc_minima) > 1

    effective = effective_parallelism()
    payload = {
        "devices": DEVICES,
        "jobs": JOBS,
        "effective_cpus": effective,
        "warnings": ([f"jobs={JOBS} oversubscribed: only {effective} "
                      f"effective CPU(s) available"]
                     if JOBS > effective else []),
        "elapsed_s": round(elapsed, 3),
        "devices_per_s": round(DEVICES / elapsed, 3),
        "population": population,
    }
    write_bench_json(results_dir, "fleet_population", payload)

    hc = population["hc_first_min"]
    ber = population["ber_mean"]
    lines = [
        f"devices: {DEVICES} (jobs={JOBS}, effective cpus: {effective})",
        f"throughput: {payload['devices_per_s']:.1f} devices/s "
        f"({elapsed:.2f}s total)",
        f"HC_first (per-device min): min={hc['min']:.0f} "
        f"p50={hc['p50']:.0f} max={hc['max']:.0f}",
        f"BER (per-device mean): min={ber['min']:.6f} "
        f"p50={ber['p50']:.6f} max={ber['max']:.6f}",
        f"bitflips total: {population['bitflips_total']}; fully censored "
        f"devices: {population['fully_censored_devices']}",
    ]
    emit(results_dir, "fleet_population", "\n".join(lines))

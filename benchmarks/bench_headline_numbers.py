"""K1 — headline numbers: the abstract's quantitative claims.

Runs a combined BER + HC_first campaign plus the U-TRR experiment and
prints the paper-vs-measured scoreboard for every number the paper
quotes: the 2.03x / 79% channel BER spread, the 14,531 minimum HC_first,
the ~20% channel HC_first spread, channel-0's per-pattern HC_first
means, channel-7's per-pattern maximum BER, and the TRR period of 17.
"""

from repro.analysis.tables import format_headline_table, headline_numbers
from repro.core.sweeps import SpatialSweep, SweepConfig
from repro.core.utrr import UTrrExperiment
from repro.dram.address import DramAddress

from benchmarks.conftest import emit, env_int


def test_headline_numbers(benchmark, board, results_dir):
    config = SweepConfig.from_env(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_ROWS_PER_REGION", 8),
        hcfirst_rows_per_region=env_int("REPRO_HCFIRST_ROWS", 4),
    )
    sweep = SpatialSweep(board, config)

    def campaign():
        dataset = sweep.run()
        utrr = UTrrExperiment(board.host, board.device.mapper).run(
            DramAddress(0, 0, 0, 6000), iterations=70)
        return dataset, utrr

    dataset, utrr = benchmark.pedantic(campaign, rounds=1, iterations=1)
    dataset.to_json(results_dir / "headline_dataset.json")

    numbers = headline_numbers(dataset, utrr_period=utrr.inferred_period)
    emit(results_dir, "headline_numbers", format_headline_table(numbers))

    by_key = {number.key: number for number in numbers}
    assert by_key["trr_period_refs"].measured_value == 17
    assert 1.3 < by_key["ber_channel_ratio"].measured_value < 3.5

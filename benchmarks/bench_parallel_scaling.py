"""P1 — parallel sweep scaling: rows/sec at jobs = 1 / 2 / 4.

Times a fixed, small Fig. 3-shaped campaign (all 8 channels, three
regions, BER only) through the serial path and the parallel executor,
checks the datasets are identical at every jobs level (the sharding
determinism contract), and archives throughput per jobs level in
``BENCH_parallel_scaling.json`` so the perf trajectory is tracked
across future changes.

Speedup is hardware-dependent: on a single-core container the parallel
levels only measure sharding overhead, so no speedup is asserted here —
the JSON records what this machine delivered, against the parallelism
it actually *had*: ``effective_cpus`` is the CPU count this process may
schedule on (affinity-aware, which ``os.cpu_count()`` is not), and any
jobs level exceeding it gets an explicit ``warnings`` entry so an
oversubscribed ~1.0x speedup is never mistaken for a scaling
regression.
"""

import os
import time

from repro.core.experiment import ExperimentConfig
from repro.core.parallel import run_sweep
from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
from repro.core.sweeps import SweepConfig
from repro.obs import MetricsRegistry, use_metrics

from benchmarks.conftest import (
    effective_parallelism,
    emit,
    env_int,
    metrics_summary,
    write_bench_json,
)

JOBS_LEVELS = (1, 2, 4)


def scaling_config(jobs: int) -> SweepConfig:
    return SweepConfig(
        channels=tuple(range(8)),
        rows_per_region=env_int("REPRO_SCALING_ROWS", 2),
        patterns=(ROWSTRIPE0, ROWSTRIPE1),
        include_hcfirst=False,
        jobs=jobs,
        experiment=ExperimentConfig(
            ber_hammer_count=env_int("REPRO_SCALING_HAMMERS", 64 * 1024)),
    )


def test_parallel_scaling(benchmark, board_spec, results_dir):
    datasets = {}
    levels = {}
    for jobs in JOBS_LEVELS:
        config = scaling_config(jobs)
        # A fresh registry per jobs level: each level's command counts
        # and (for jobs > 1) merged shard telemetry stand alone.
        registry = MetricsRegistry()
        with use_metrics(registry):
            if jobs == 1:
                started = time.perf_counter()
                dataset = benchmark.pedantic(
                    lambda: run_sweep(config, spec=board_spec),
                    rounds=1, iterations=1)
                elapsed = time.perf_counter() - started
            else:
                started = time.perf_counter()
                dataset = run_sweep(config, spec=board_spec)
                elapsed = time.perf_counter() - started
        datasets[jobs] = dataset
        measurements = len([record for record in dataset.ber_records
                            if record.pattern != "WCDP"])
        levels[str(jobs)] = {
            "elapsed_s": round(elapsed, 3),
            "measurements": measurements,
            "rows_per_s": round(measurements / elapsed, 3),
            "metrics": metrics_summary(registry, elapsed),
        }
        if jobs > 1:
            # The parallel executor lands per-shard wall/throughput rows
            # under metadata["telemetry"] when observability is active.
            telemetry = dataset.metadata.pop("telemetry")
            assert len(telemetry["shards"]) == 8 * 3  # every shard covered
            levels[str(jobs)]["shard_wall_s"] = [
                shard["wall_s"] for shard in telemetry["shards"]]

    # Determinism contract: every jobs level produces the same dataset
    # (telemetry, an execution detail, was popped above).
    reference = datasets[JOBS_LEVELS[0]]
    for jobs in JOBS_LEVELS[1:]:
        assert datasets[jobs].ber_records == reference.ber_records
        assert datasets[jobs].hcfirst_records == reference.hcfirst_records
        assert datasets[jobs].metadata == reference.metadata

    baseline = levels["1"]["rows_per_s"]
    effective = effective_parallelism()
    warnings = [
        f"jobs={jobs} oversubscribed: only {effective} effective CPU(s) "
        f"available — this level measures sharding overhead, not speedup"
        for jobs in JOBS_LEVELS if jobs > effective]
    payload = {
        "campaign": {
            "channels": 8, "regions": 3,
            "rows_per_region": levels["1"]["measurements"] // (8 * 3 * 2),
            "patterns": 2,
            "ber_hammer_count": scaling_config(1).experiment.ber_hammer_count,
        },
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective,
        "warnings": warnings,
        "jobs": levels,
        "speedup": {str(jobs): round(levels[str(jobs)]["rows_per_s"]
                                     / baseline, 3)
                    for jobs in JOBS_LEVELS},
    }
    write_bench_json(results_dir, "parallel_scaling", payload)

    lines = [f"cpu_count: {os.cpu_count()} "
             f"(effective: {effective})"]
    for jobs in JOBS_LEVELS:
        level = levels[str(jobs)]
        lines.append(
            f"jobs={jobs}: {level['measurements']} measurements in "
            f"{level['elapsed_s']:.2f}s = {level['rows_per_s']:.1f} rows/s "
            f"({payload['speedup'][str(jobs)]:.2f}x)")
    for warning in warnings:
        lines.append(f"WARNING: {warning}")
    emit(results_dir, "parallel_scaling", "\n".join(lines))

    for jobs in JOBS_LEVELS:
        assert levels[str(jobs)]["rows_per_s"] > 0

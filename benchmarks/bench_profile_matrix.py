"""PM — device-family matrix: the Fig. 3/4 campaign per profile.

Runs the same miniature characterization campaign (BER + HC_first,
first/middle/last regions, Table 1 patterns) on every registered device
family — ``hbm2`` (last-activation TRR, the paper's chip), ``ddr4``
(counter-table TRR) and ``ddr5`` (probabilistic TRR) — on separately
built stations under private metrics registries, and archives one
record per family: wall clock, rows/s, fast-path hit/fallback counters,
BER summary and the uncensored HC_first median, plus the dataset
fingerprint (deterministic per family, so the bench-regression job
doubles as a cross-family byte-identity check).

Expected shape: the three families produce distinct fingerprints and
distinct vulnerability levels (the DDR5 calibration is the most
RowHammer-vulnerable, per the paper's scaling narrative), while every
family keeps fast-path fallbacks at zero.
"""

import time
from statistics import median

from repro.core.experiment import ExperimentConfig
from repro.core.parallel import run_sweep
from repro.core.sweeps import SweepConfig
from repro.dram.profiles import get_profile, list_profiles
from repro.obs import MetricsRegistry, use_metrics

from benchmarks.conftest import (
    CHIP_SEED,
    emit,
    env_int,
    make_paper_setup,
    metrics_summary,
    write_bench_json,
)


def _family_config(name: str) -> SweepConfig:
    geometry = get_profile(name).geometry
    return SweepConfig.from_env(
        channels=tuple(range(min(2, geometry.channels))),
        rows_per_region=env_int("REPRO_ROWS_PER_REGION", 4),
        hcfirst_rows_per_region=env_int("REPRO_HCFIRST_ROWS", 2),
        experiment=ExperimentConfig(profile=name),
    )


def _run_family(name: str) -> dict:
    """One family's campaign on a freshly built station, timed
    steady-state after a warm-up round (program cache and schedule
    memos hot), telemetry counting the timed round only."""
    config = _family_config(name)
    board = make_paper_setup(seed=CHIP_SEED, device_profile=name)
    with use_metrics(MetricsRegistry()):
        run_sweep(config, board=board)  # warm-up round
    registry = MetricsRegistry()
    with use_metrics(registry):
        started = time.perf_counter()
        dataset = run_sweep(config, board=board)
        wall_s = time.perf_counter() - started

    uncensored = [record.hc_first
                  for record in dataset.hcfirst(include_censored=False)]
    ber_records = dataset.ber_records
    flipped = sum(1 for record in ber_records if record.flips)
    profile = get_profile(name)
    return {
        "family": profile.family,
        "sampler": profile.trr.sampler,
        "campaign": {
            "channels": len(config.channels),
            "rows_per_region": config.rows_per_region,
            "hcfirst_rows_per_region": config.hcfirst_rows_per_region,
            "patterns": len(config.patterns),
        },
        "elapsed_s": round(wall_s, 3),
        "fingerprint": dataset.fingerprint(),
        "ber_records": len(ber_records),
        "ber_rows_flipped_fraction": round(
            flipped / len(ber_records), 4) if ber_records else 0.0,
        "hcfirst_records": len(dataset.hcfirst_records),
        "hcfirst_uncensored": len(uncensored),
        "hcfirst_median": (int(median(uncensored))
                           if uncensored else None),
        "metrics": metrics_summary(registry, wall_s),
    }


def test_profile_matrix(benchmark, results_dir):
    families = [name for name in list_profiles()
                if name in ("hbm2", "ddr4", "ddr5")]
    results = {}

    def matrix():
        for name in families:
            results[name] = _run_family(name)
        return results

    benchmark.pedantic(matrix, rounds=1, iterations=1)

    lines = [f"{'family':8} {'sampler':14} {'rows/s':>9} "
             f"{'HC_first med':>13} {'flipped':>8}  fingerprint"]
    for name in families:
        record = results[name]
        lines.append(
            f"{name:8} {record['sampler']:14} "
            f"{record['metrics'].get('rows_per_s', 0.0):>9} "
            f"{str(record['hcfirst_median']):>13} "
            f"{record['ber_rows_flipped_fraction']:>8} "
            f" {record['fingerprint']}")
    emit(results_dir, "profile_matrix", "\n".join(lines))

    write_bench_json(results_dir, "profile_matrix", {
        "chip_seed": CHIP_SEED,
        "profiles": results,
    })

    fingerprints = {record["fingerprint"] for record in results.values()}
    assert len(fingerprints) == len(families)
    for record in results.values():
        fastpath = record["metrics"].get("fastpath", {})
        assert fastpath.get("hits", 0) > 0
        assert fastpath.get("fallbacks", 0) == 0
        assert record["ber_records"] > 0

"""S5 — §5: uncovering the in-DRAM RowHammer mitigation with U-TRR.

Regenerates the paper's §5 experiment: profile a canary row's retention
time, then run the six-step U-TRR loop (refresh R, wait T/2, activate
R+1, issue one REF, wait T/2, check R) for 100 iterations and infer how
often a hidden TRR mechanism preventively refreshed R.  Expected result:
a refresh once every 17 REF commands (the paper's "Vendor C"-like
mechanism).
"""

from repro.core.utrr import UTrrExperiment
from repro.dram.address import DramAddress

from benchmarks.conftest import emit, env_int


def test_sec5_utrr_discovery(benchmark, board, results_dir):
    board.host.set_ecc_enabled(False)
    experiment = UTrrExperiment(board.host, board.device.mapper)
    canary = DramAddress(0, 0, 0, env_int("REPRO_UTRR_ROW", 6000))
    iterations = env_int("REPRO_UTRR_ITERATIONS", 100)

    result = benchmark.pedantic(
        lambda: experiment.run(canary, iterations=iterations),
        rounds=1, iterations=1)

    timeline = "".join("R" if flag else "." for flag in result.refreshed)
    lines = [
        f"canary row: {canary} "
        f"(retention onset {result.profile.retention_time_s * 1e3:.0f} ms, "
        f"{result.profile.probes} profiling probes)",
        f"iterations: {result.iterations}",
        f"refresh timeline (R = TRR refreshed the canary's victim row):",
        f"  {timeline}",
        f"refresh iterations: {result.refresh_iterations}",
        f"inferred TRR period (paper: every 17 REFs): "
        f"{result.inferred_period}",
    ]
    emit(results_dir, "sec5_utrr", "\n".join(lines))

    assert result.inferred_period == 17

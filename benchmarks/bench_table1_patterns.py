"""T1 — Table 1: the data patterns used in the RowHammer tests.

Regenerates the paper's Table 1 from the pattern definitions and
benchmarks the neighbourhood-fill step those patterns drive (writing a
victim's +-8 physical neighbourhood through the host interface).
"""

from repro.core.hammer import prepare_neighborhood
from repro.core.patterns import STANDARD_PATTERNS
from repro.dram.address import DramAddress

from benchmarks.conftest import emit


def render_table1() -> str:
    header = f"{'Row addresses':<18}" + "".join(
        f"{pattern.name:>12}" for pattern in STANDARD_PATTERNS)
    rows = [
        ("Victim (V)", "victim_byte"),
        ("Aggressors (V+-1)", "aggressor_byte"),
        ("V +- [2:8]", "surround_byte"),
    ]
    lines = [header, "-" * len(header)]
    for label, field in rows:
        lines.append(f"{label:<18}" + "".join(
            f"{getattr(pattern, field):>#12x}"
            for pattern in STANDARD_PATTERNS))
    return "\n".join(lines)


def test_table1_patterns(benchmark, board, results_dir):
    victim = DramAddress(0, 0, 0, 5000)

    def fill_neighborhood():
        for pattern in STANDARD_PATTERNS:
            prepare_neighborhood(board.host, board.device.mapper, victim,
                                 pattern)

    benchmark.pedantic(fill_neighborhood, rounds=3, iterations=1)
    emit(results_dir, "table1_patterns", render_table1())

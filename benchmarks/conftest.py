"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact (table/figure/claim) on
the simulated chip and prints it (run with ``-s`` to see the rendering);
machine-readable outputs land in ``benchmarks/results/``.

Sampling density mirrors the library defaults and scales through the
same environment variables the sweeps honour (``REPRO_ROWS_PER_REGION``,
``REPRO_HCFIRST_ROWS``, ``REPRO_REPETITIONS``); the paper's full density
is rows_per_region=3072, repetitions=5.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bender.board import BoardSpec, make_paper_setup

RESULTS_DIR = Path(__file__).parent / "results"

#: One chip specimen for the whole benchmark campaign (as in the paper).
CHIP_SEED = int(os.environ.get("REPRO_CHIP_SEED", "2023"))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def board():
    """The paper's testing station: calibrated chip at 85 degC."""
    return make_paper_setup(seed=CHIP_SEED)


@pytest.fixture(scope="session")
def board_spec() -> BoardSpec:
    """Picklable recipe for the same station, for parallel sweep workers
    (``REPRO_JOBS`` > 1 runs the sweep benchmarks across processes)."""
    return BoardSpec(seed=CHIP_SEED)


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated artifact and archive it."""
    print()
    print(f"=== {name} ===")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")

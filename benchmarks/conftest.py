"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact (table/figure/claim) on
the simulated chip and prints it (run with ``-s`` to see the rendering);
machine-readable outputs land in ``benchmarks/results/``.

Sampling density mirrors the library defaults and scales through the
same environment variables the sweeps honour (``REPRO_ROWS_PER_REGION``,
``REPRO_HCFIRST_ROWS``, ``REPRO_REPETITIONS``); the paper's full density
is rows_per_region=3072, repetitions=5.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.bender.board import BoardSpec, make_paper_setup
from repro.envutil import env_int
from repro.obs import MetricsRegistry, use_metrics

RESULTS_DIR = Path(__file__).parent / "results"

#: One chip specimen for the whole benchmark campaign (as in the paper).
CHIP_SEED = env_int("REPRO_CHIP_SEED", 2023)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def board():
    """The paper's testing station: calibrated chip at 85 degC."""
    return make_paper_setup(seed=CHIP_SEED)


@pytest.fixture(scope="session")
def board_spec() -> BoardSpec:
    """Picklable recipe for the same station, for parallel sweep workers
    (``REPRO_JOBS`` > 1 runs the sweep benchmarks across processes)."""
    return BoardSpec(seed=CHIP_SEED)


def effective_parallelism() -> int:
    """CPUs actually available to this process, not just installed.

    ``os.cpu_count()`` reports the machine; a container or a
    ``taskset``-restricted process may be pinned to far fewer cores.
    Scaling benchmarks must interpret speedups against *this* number —
    a jobs=4 run on one available core measures sharding overhead, not
    parallelism.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a regenerated artifact and archive it."""
    print()
    print(f"=== {name} ===")
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture()
def campaign_metrics():
    """A live metrics registry installed for the duration of one
    benchmark, so its campaign runs under command-stream accounting
    (summarize with :func:`metrics_summary`, archive with
    :func:`write_bench_json`)."""
    registry = MetricsRegistry()
    with use_metrics(registry):
        yield registry


def metrics_summary(registry: MetricsRegistry,
                    wall_s: Optional[float] = None) -> Dict[str, object]:
    """Condense a registry into the BENCH_*.json telemetry block:
    commands issued by type, hammer/bitflip totals, and throughput."""
    counters = registry.snapshot()["counters"]
    commands = {name.rsplit(".", 1)[-1]: int(value)
                for name, value in counters.items()
                if name.startswith("dram.commands.")}
    rows = int(counters.get("sweep.ber_records", 0) +
               counters.get("sweep.hcfirst_records", 0))
    summary: Dict[str, object] = {
        "dram_commands": commands,
        "dram_commands_total": sum(commands.values()),
        "hammer_pairs": int(counters.get("hammer.pairs", 0)),
        "bitflips_observed": int(counters.get("bitflips.observed", 0)),
        "rows_measured": rows,
    }
    fastpath = {name.rsplit(".", 1)[-1]: int(value)
                for name, value in counters.items()
                if name.startswith("engine.fastpath.")}
    if fastpath:
        summary["fastpath"] = fastpath
    if wall_s:
        summary["rows_per_s"] = round(rows / wall_s, 3)
        summary["commands_per_s"] = round(
            sum(commands.values()) / wall_s, 3)
    return summary


def write_bench_json(results_dir: Path, name: str, payload: Dict) -> None:
    """Archive one benchmark's machine-readable record (with its
    telemetry block) as ``BENCH_<name>.json``."""
    (results_dir / f"BENCH_{name}.json").write_text(
        json.dumps(payload, indent=1) + "\n")

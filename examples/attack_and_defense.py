#!/usr/bin/env python3
"""Attack and defense implications of the spatial variation (paper Sec 4).

The paper's takeaways cut both ways:

* **Attack**: an attacker templating for exploitable bitflips should use
  the most vulnerable channel — it yields templates roughly 2x faster.
* **Defense**: a mitigation can exploit the same heterogeneity — a
  PARA-style defense that provisions its refresh probability per channel
  (from characterization data) matches the uniform defense's protection
  with fewer preventive refreshes.

Run:  python examples/attack_and_defense.py
"""

from repro import DramAddress, SpatialSweep, SweepConfig, make_paper_setup
from repro.attacks.templating import MemoryTemplater
from repro.defenses.evaluation import compare_defenses


def main() -> None:
    print("Setting up the testing station ...")
    board = make_paper_setup(seed=1)
    board.host.set_ecc_enabled(False)

    print("\n--- Attack: memory templating throughput per channel ---")
    from repro.core.patterns import ROWSTRIPE1
    # Template with Rowstripe1 — the most vulnerable die's worst-case
    # pattern (an attacker picks the channel's WCDP).
    templater = MemoryTemplater(board.host, board.device.mapper,
                                hammer_count=128 * 1024,
                                pattern=ROWSTRIPE1)
    results = templater.compare_channels(
        [0, 7], rows=range(4000, 4240, 4), target_templates=200)
    for channel, result in sorted(results.items()):
        print(f"  ch{channel}: {result.templates_found} templates from "
              f"{result.rows_scanned} rows in {result.dram_time_s:.3f} s "
              f"of DRAM time")
    speedup = (results[0].seconds_per_template /
               results[7].seconds_per_template)
    print(f"  => templating the most vulnerable channel is "
          f"{speedup:.2f}x faster")

    print("\n--- Defense: adaptive vs uniform PARA ---")
    print("Characterizing per-channel HC_first (the defense's input) ...")
    from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
    characterization = SpatialSweep(board, SweepConfig(
        channels=(0, 7), rows_per_region=4, hcfirst_rows_per_region=4,
        patterns=(ROWSTRIPE0, ROWSTRIPE1), include_ber=False)).run()
    minima = {}
    for record in characterization.hcfirst(include_censored=False):
        minima[record.channel] = min(
            minima.get(record.channel, float("inf")), record.hc_first)
    print(f"  per-channel minimum HC_first: {minima}")

    base_probability = 6.0 / min(minima.values())
    victims = [DramAddress(channel, 0, 0, row)
               for channel in (0, 7) for row in range(5200, 5216, 4)]
    comparisons = compare_defenses(board, characterization, victims,
                                   base_probability=base_probability)
    for name in ("none", "uniform", "adaptive"):
        print(f"  {comparisons[name].summary()}")
    saved = 1 - (comparisons["adaptive"].total_refreshes /
                 comparisons["uniform"].total_refreshes)
    print(f"  => the characterization-guided policy saves {saved:.0%} of "
          f"the preventive refreshes at equal protection")


if __name__ == "__main__":
    main()

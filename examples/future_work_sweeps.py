#!/usr/bin/env python3
"""Future-work sensitivity sweeps (paper Sec 6, item 2).

The paper plans to characterize RowHammer's sensitivity to (a) the time
an aggressor row remains active (RowPress), (b) richer data patterns,
and (c) voltage and temperature.  All three studies run below on one
victim row, each through the same public API the headline experiments
use.

Run:  python examples/future_work_sweeps.py
"""

from repro import DramAddress, make_paper_setup
from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.patterns import EXTENDED_PATTERNS, ROWSTRIPE0
from repro.core.rowpress import RowPressExperiment


def main() -> None:
    print("Setting up the testing station ...")
    board = make_paper_setup(seed=1)
    board.host.set_ecc_enabled(False)
    victim = DramAddress(channel=7, pseudo_channel=0, bank=0, row=5000)
    period_ns = 1e9 / board.device.timing.frequency_hz

    print(f"\n--- (a) Aggressor-on time (RowPress) on {victim} ---")
    rowpress = RowPressExperiment(board.host, board.device.mapper)
    for extra_cycles in (0, 1024, 4096):
        hc = rowpress.first_flip_hammers(victim, extra_cycles)
        on_ns = (board.device.timing.ras_cycles + extra_cycles) * period_ns
        print(f"  tAggON {on_ns:8.0f} ns: first flip at {hc:,} hammers")

    print("\n--- (b) Richer data patterns (Table 1 + control groups) ---")
    ber = BerExperiment(board.host, board.device.mapper,
                        ExperimentConfig())
    for pattern in EXTENDED_PATTERNS:
        record = ber.run_row(victim, pattern)
        bar = "#" * int(record.ber * 3000)
        print(f"  {pattern.name:<11} BER {record.ber:8.4%}  {bar}")
    print("  (solid/colstripe aggressors share the victim's charge "
          "state: almost no coupling — the data-dependence control)")

    print("\n--- (c) Temperature and voltage ---")
    for temperature in (55.0, 85.0):
        board.set_target_temperature(temperature)
        record = ber.run_row(victim, ROWSTRIPE0)
        print(f"  {temperature:5.1f} degC, 2.5 V: BER {record.ber:.4%}")
    for voltage in (2.3, 2.1):
        board.device.set_wordline_voltage(voltage)
        record = ber.run_row(victim, ROWSTRIPE0)
        print(f"   85.0 degC, {voltage:.1f} V: BER {record.ber:.4%}")
    board.device.set_wordline_voltage(2.5)

    print("\nShapes: longer aggressor-on time -> first flip sooner; "
          "opposing-charge patterns dominate; hotter and "
          "higher-voltage -> more flips.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-chip study (paper Sec 6, future work 1).

The paper tests a single HBM2 chip and plans to "repeat our experiments
on a larger number of HBM2 chips to improve the statistical significance
of our observations."  In this library a chip specimen is a device seed
(same design, different per-cell ground truth), so the study is one loop:
characterize several specimens and check which observations hold across
all of them and which vary chip-to-chip.

Run:  python examples/multi_chip_study.py
"""

from repro import SpatialSweep, SweepConfig, UTrrExperiment, make_paper_setup
from repro.analysis.tables import ber_channel_extremes
from repro.dram.address import DramAddress

CHIP_SEEDS = (101, 202, 303)


def characterize(seed):
    board = make_paper_setup(seed=seed)
    dataset = SpatialSweep(board, SweepConfig(
        channels=tuple(range(8)), rows_per_region=5,
        hcfirst_rows_per_region=2)).run()
    utrr = UTrrExperiment(board.host, board.device.mapper).run(
        DramAddress(0, 0, 0, 6000), iterations=60)
    return dataset, utrr


def main() -> None:
    print(f"Characterizing {len(CHIP_SEEDS)} chip specimens "
          f"(seeds {CHIP_SEEDS}) ...\n")
    header = (f"{'chip':>6} {'worst ch':>9} {'best ch':>8} "
              f"{'BER ratio':>10} {'min HC_first':>13} {'TRR period':>11}")
    print(header)
    print("-" * len(header))

    ratios = []
    for seed in CHIP_SEEDS:
        dataset, utrr = characterize(seed)
        worst, best, worst_ber, best_ber = ber_channel_extremes(dataset)
        min_hc = min(record.hc_first for record in
                     dataset.hcfirst(include_censored=False))
        ratios.append(worst_ber / best_ber)
        print(f"{seed:>6} {f'ch{worst}':>9} {f'ch{best}':>8} "
              f"{worst_ber / best_ber:>9.2f}x {min_hc:>13,} "
              f"{utrr.inferred_period:>11}")

    print("\nAcross specimens:")
    print(f"  - the worst channel is always on the weakest die "
          f"(channels 6/7) — a design-level property")
    print(f"  - BER ratios vary chip to chip "
          f"({min(ratios):.2f}x .. {max(ratios):.2f}x around the "
          f"paper's 2.03x) — process variation")
    print(f"  - the hidden TRR period is 17 on every chip — "
          f"a firmware/design constant, not a process effect")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: hammer one row of the simulated HBM2 chip.

Builds the paper's testing station (calibrated HBM2 stack behind a DRAM
Bender board, PID-held at 85 degC), applies the Sec 3.1 interference
controls, and runs the two basic measurements on a single victim row:

* BER at 256K double-sided hammers, for each Table 1 data pattern;
* HC_first — the exact hammer count at which the first bitflip appears.

Run:  python examples/quickstart.py
"""

from repro import (
    DramAddress,
    ExperimentConfig,
    STANDARD_PATTERNS,
    make_paper_setup,
)
from repro.core.ber import BerExperiment
from repro.core.experiment import apply_controls
from repro.core.hcfirst import HcFirstSearch


def main() -> None:
    print("Setting up the testing station (chip specimen seed=1) ...")
    board = make_paper_setup(seed=1)
    config = ExperimentConfig()
    apply_controls(board, config)  # 85 degC, ECC off, refresh off
    print(f"  chip temperature: {board.temperature_c:.2f} degC")

    mapper = board.device.mapper
    victim = DramAddress(channel=7, pseudo_channel=0, bank=0, row=5000)
    print(f"\nVictim: {victim}")
    aggressors = mapper.physical_neighbors(victim.row)
    print(f"Aggressor rows (physical neighbours of the victim): "
          f"{aggressors}")

    print(f"\nBER at {config.ber_hammer_count:,} double-sided hammers:")
    ber = BerExperiment(board.host, mapper, config)
    for pattern in STANDARD_PATTERNS:
        record = ber.run_row(victim, pattern)
        print(f"  {pattern.name:<11} {record.flips:>5} bitflips  "
              f"BER {record.ber:.4%}   (hammer phase "
              f"{record.duration_s * 1e3:.1f} ms, under the 27 ms budget)")

    print("\nHC_first search (exact first-flip hammer count):")
    search = HcFirstSearch(board.host, mapper, config)
    for pattern in STANDARD_PATTERNS[:2]:
        outcome = search.search(victim, pattern)
        print(f"  {pattern.name:<11} HC_first = {outcome.hc_first:,} "
              f"({outcome.probes} probes)")

    print("\nDone. Try examples/spatial_variation_survey.py next.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reverse engineer the chip's hidden physical layout (paper Sec 3.1).

RowHammer methodology needs two pieces of in-DRAM structure the vendor
does not document:

* the **logical-to-physical row mapping** — recovered by hammering probe
  rows single-sided and observing which logical rows collect flips
  (those are the probe's physical neighbours), then fitting a mapping
  consistent with every observation;
* the **subarray boundaries** — recovered from the footnote-3 signal: an
  aggressor at a subarray edge flips victims on only one side, because
  disturbance does not cross the sense-amplifier stripes.

Both procedures below operate purely on read-back data.

Run:  python examples/reverse_engineer_layout.py
"""

from repro import make_paper_setup
from repro.core.mapping_re import observe_adjacency, reverse_engineer_mapping
from repro.core.subarray_re import SubarrayReverseEngineer


def main() -> None:
    print("Setting up the testing station ...")
    board = make_paper_setup(seed=1)
    board.host.set_ecc_enabled(False)

    print("\n--- Row-mapping reverse engineering ---")
    print("Example probe: hammer logical row 8 and see who flips:")
    observation = observe_adjacency(board.host, 0, 0, 0, aggressor_row=8)
    print(f"  flipped logical rows: {list(observation.victims)} "
          f"(so they are physically adjacent to row 8)")

    print("Fitting a mapping against the full probe set ...")
    mapper = reverse_engineer_mapping(board.host)
    print("  discovered scheme (sample logical -> physical):")
    for row in (0, 7, 8, 9, 15, 24, 30):
        print(f"    {row:>4} -> {mapper.logical_to_physical(row)}")
    device_mapper = board.device.mapper
    agreement = all(
        sorted(mapper.physical_neighbors(row)) ==
        sorted(device_mapper.physical_neighbors(row))
        for row in range(0, board.device.geometry.rows, 997))
    print(f"  adjacency agrees with the device's hidden mapping: "
          f"{agreement}")

    print("\n--- Subarray-boundary reverse engineering ---")
    engineer = SubarrayReverseEngineer(board.host, mapper)
    print("Scanning physical rows 824..841 single-sided ...")
    result = engineer.scan(channel=7, start=824, end=841)
    for observation in result.observations:
        marker = {"interior": " ", "lower_edge": "<-- subarray starts",
                  "upper_edge": "<-- subarray ends"}[
                      observation.classification]
        print(f"  row {observation.physical_row:>5}: "
              f"below={observation.flips_below:>3} "
              f"above={observation.flips_above:>3}  {marker}")
    print(f"Discovered boundary rows: {result.boundaries()} "
          f"(the paper finds 832- and 768-row subarrays)")


if __name__ == "__main__":
    main()

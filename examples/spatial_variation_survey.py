#!/usr/bin/env python3
"""Spatial-variation survey: a miniature Figs. 3-6 campaign.

Reproduces the paper's Sec 4 analysis end-to-end at laptop scale: BER and
HC_first over sampled rows of the first/middle/last 3K-row regions in all
8 channels, WCDP selection, and the derived figure data — then prints the
text renderings and the paper-vs-measured scoreboard.

Scale it up with the same environment variables the benchmarks use:

    REPRO_ROWS_PER_REGION=64 REPRO_HCFIRST_ROWS=16 \
        python examples/spatial_variation_survey.py

Run:  python examples/spatial_variation_survey.py
"""

from repro import SpatialSweep, SweepConfig, make_paper_setup
from repro.analysis.figures import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    render_box_table,
)
from repro.analysis.tables import (
    channel_groups_by_ber,
    format_headline_table,
    headline_numbers,
)


def main() -> None:
    print("Setting up the testing station ...")
    board = make_paper_setup(seed=1)

    config = SweepConfig.from_env(channels=tuple(range(8)))
    print(f"Sweep: {len(config.channels)} channels x "
          f"{len(config.regions)} regions x {config.rows_per_region} "
          f"BER rows ({config.hcfirst_rows_per_region} HC_first rows), "
          f"patterns: {[p.name for p in config.patterns]}")

    dataset = SpatialSweep(board, config).run(
        progress=lambda message: print(f"  sweeping {message}"))

    print("\n--- Fig. 3: BER across rows/channels/patterns ---")
    print(render_box_table(fig3_ber_distributions(dataset),
                           value_format="{:.5f}"))

    print("\n--- Fig. 4: HC_first across rows/channels/patterns ---")
    print(render_box_table(fig4_hcfirst_distributions(dataset),
                           value_format="{:.0f}"))

    print("\n--- Channel grouping by BER (die pairs) ---")
    for index, group in enumerate(channel_groups_by_ber(dataset)):
        print(f"  group {index}: channels {group}")

    print("\n--- Headline numbers (paper vs measured) ---")
    print(format_headline_table(headline_numbers(dataset)))

    output = "survey_dataset.json"
    dataset.to_json(output)
    print(f"\nDataset archived to {output} "
          f"({len(dataset.ber_records)} BER records, "
          f"{len(dataset.hcfirst_records)} HC_first records).")


if __name__ == "__main__":
    main()

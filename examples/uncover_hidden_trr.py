#!/usr/bin/env python3
"""Uncover the chip's hidden TRR mechanism (paper Sec 5).

Walks through the U-TRR methodology step by step:

1. profile a canary row's retention time T through idle-and-read probes,
2. run 100 iterations of: rewrite R, wait T/2, activate R+1 once (bait
   the TRR sampler), issue one periodic REF (the TRR's only chance to
   act), wait T/2, and read R — no retention flips means something
   refreshed R mid-iteration,
3. infer the mechanism's activation period from the refresh timeline.

The paper finds the canary refreshed once every 17 REF commands and
concludes the HBM2 chip ships an undisclosed, Vendor-C-like TRR.

Run:  python examples/uncover_hidden_trr.py
"""

from repro import DramAddress, UTrrExperiment, make_paper_setup
from repro.core.retention_profiler import RetentionProfiler


def main() -> None:
    print("Setting up the testing station ...")
    board = make_paper_setup(seed=1)
    board.host.set_ecc_enabled(False)

    canary = DramAddress(channel=0, pseudo_channel=0, bank=0, row=6000)
    print(f"\nStep 1 - profiling retention of canary row {canary}")
    profiler = RetentionProfiler(board.host)
    profile = profiler.profile(canary)
    print(f"  retention-failure onset T = "
          f"{profile.retention_time_s * 1e3:.0f} ms "
          f"({profile.flips_at_time} flip(s) at T, "
          f"{profile.probes} probes)")

    print("\nStep 2 - running 100 U-TRR iterations "
          "(rewrite, T/2, ACT neighbour, REF, T/2, read) ...")
    experiment = UTrrExperiment(board.host, board.device.mapper)
    result = experiment.run(canary, iterations=100, profile=profile)

    timeline = "".join("R" if flag else "." for flag in result.refreshed)
    print("  refresh timeline (R = canary was refreshed mid-iteration):")
    for start in range(0, len(timeline), 50):
        print(f"    iter {start:>3}: {timeline[start:start + 50]}")

    print(f"\nStep 3 - inference")
    print(f"  refresh iterations: {result.refresh_iterations}")
    if result.trr_detected:
        print(f"  => the chip implements a hidden TRR that refreshes a "
              f"sampled aggressor's victims once every "
              f"{result.inferred_period} REF commands "
              f"(paper: every 17).")
    else:
        print("  => no periodic victim refresh observed "
              "(is the TRR engine disabled on this device?)")


if __name__ == "__main__":
    main()

"""Reproduction of "An Experimental Analysis of RowHammer in HBM2 DRAM
Chips" (Olgun et al., DSN 2023).

The paper characterizes the RowHammer vulnerability of a real HBM2 chip
on an FPGA testing platform.  Real HBM2 hardware being the one thing a
Python library cannot ship, this package substitutes a behavioural HBM2
device model (:mod:`repro.dram`) and a DRAM Bender infrastructure
simulator (:mod:`repro.bender`) underneath a faithful implementation of
the paper's methodology (:mod:`repro.core`) and analyses
(:mod:`repro.analysis`).  See DESIGN.md for the substitution argument
and the per-experiment index.

Quickstart::

    from repro import make_paper_setup, SpatialSweep, SweepConfig

    board = make_paper_setup(seed=0)        # the paper's testing station
    sweep = SpatialSweep(board, SweepConfig(rows_per_region=8))
    dataset = sweep.run()                   # BER + HC_first campaign
    print(dataset.ber(channel=7, pattern="WCDP")[0].ber)
"""

from repro.analysis import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    fig5_row_series,
    fig6_bank_scatter,
    headline_numbers,
)
from repro.bender import (
    BenderBoard,
    HostInterface,
    Interpreter,
    Program,
    ProgramBuilder,
    make_paper_setup,
)
from repro.core import (
    BerExperiment,
    BerRecord,
    CharacterizationDataset,
    DataPattern,
    DoubleSidedHammer,
    ExperimentConfig,
    HcFirstRecord,
    HcFirstSearch,
    InterferenceControls,
    STANDARD_PATTERNS,
    SingleSidedHammer,
    SpatialSweep,
    SweepConfig,
    UTrrExperiment,
    select_wcdp,
)
from repro.dram import (
    CalibrationProfile,
    Device,
    DeviceProfile,
    DramAddress,
    Geometry,
    HBM2Device,
    HBM2Geometry,
    RowAddressMapper,
    TimingParameters,
    TrrConfig,
    default_profile,
    get_profile,
    list_profiles,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BenderBoard",
    "BerExperiment",
    "BerRecord",
    "CalibrationProfile",
    "CharacterizationDataset",
    "DataPattern",
    "Device",
    "DeviceProfile",
    "DoubleSidedHammer",
    "DramAddress",
    "ExperimentConfig",
    "Geometry",
    "HBM2Device",
    "HBM2Geometry",
    "HcFirstRecord",
    "HcFirstSearch",
    "HostInterface",
    "InterferenceControls",
    "Interpreter",
    "Program",
    "ProgramBuilder",
    "ReproError",
    "RowAddressMapper",
    "STANDARD_PATTERNS",
    "SingleSidedHammer",
    "SpatialSweep",
    "SweepConfig",
    "TimingParameters",
    "TrrConfig",
    "UTrrExperiment",
    "__version__",
    "default_profile",
    "fig3_ber_distributions",
    "fig4_hcfirst_distributions",
    "fig5_row_series",
    "fig6_bank_scatter",
    "get_profile",
    "headline_numbers",
    "list_profiles",
    "make_paper_setup",
    "select_wcdp",
]

"""Statistics and figure/table regeneration.

Turns :class:`~repro.core.results.CharacterizationDataset` objects into
the paper's artifacts: the Fig. 3/4 box distributions, the Fig. 5 per-row
BER series with subarray annotations, the Fig. 6 bank scatter, and the
headline numbers quoted in the abstract and §4/§5.
"""

from repro.analysis.stats import (
    BoxStats,
    box_stats,
    coefficient_of_variation,
    quartiles,
)
from repro.analysis.figures import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    fig5_row_series,
    fig6_bank_scatter,
    render_box_table,
    render_row_series,
    render_scatter_table,
)
from repro.analysis.tables import headline_numbers

__all__ = [
    "BoxStats",
    "box_stats",
    "coefficient_of_variation",
    "fig3_ber_distributions",
    "fig4_hcfirst_distributions",
    "fig5_row_series",
    "fig6_bank_scatter",
    "headline_numbers",
    "quartiles",
    "render_box_table",
    "render_row_series",
    "render_scatter_table",
]

"""Censoring-aware statistics for HC_first distributions.

HC_first searches are capped at 256K hammers (paper §3.1): a row with no
flip at the cap yields a *right-censored* observation — we know only
that its HC_first exceeds 256K.  Dropping censored rows (as the plain
Fig. 4 distributions do, matching the paper's plots) biases summary
statistics downward, and the bias grows for robust regions like the last
subarray where most searches are censored.

This module provides the standard survival-analysis tools:

* :func:`kaplan_meier` — the product-limit estimate of
  ``S(h) = P(HC_first > h)`` from a mix of exact and censored searches;
* :func:`restricted_mean` — the mean HC_first restricted to the search
  cap, ``integral of S(h) dh`` over [0, cap], which uses the censored
  rows' information instead of discarding them;
* :func:`censoring_rate` — the fraction of searches that were censored
  (a data-quality indicator every campaign should report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.results import HcFirstRecord
from repro.errors import AnalysisError


@dataclass(frozen=True)
class SurvivalCurve:
    """A right-continuous step estimate of P(HC_first > h)."""

    #: Hammer counts at which the curve steps down (sorted, exact events).
    times: Tuple[int, ...]
    #: Survival probability just after each step.
    survival: Tuple[float, ...]
    #: Largest hammer count observed (event or censoring time).
    horizon: int

    def at(self, hammers: int) -> float:
        """S(hammers): probability a row survives ``hammers`` hammers."""
        if hammers < 0:
            raise AnalysisError("hammer count must be non-negative")
        value = 1.0
        for time, survival in zip(self.times, self.survival):
            if time > hammers:
                break
            value = survival
        return value


def _observations(records: Sequence[HcFirstRecord]
                  ) -> List[Tuple[int, bool]]:
    """(time, is_event) pairs: censored rows contribute their cap."""
    observations: List[Tuple[int, bool]] = []
    for record in records:
        if record.censored:
            observations.append((record.max_hammers, False))
        else:
            observations.append((record.hc_first, True))
    if not observations:
        raise AnalysisError("no HC_first records to analyse")
    return observations


def kaplan_meier(records: Sequence[HcFirstRecord]) -> SurvivalCurve:
    """Product-limit survival estimate over exact + censored searches."""
    observations = sorted(_observations(records))
    at_risk = len(observations)
    survival = 1.0
    times: List[int] = []
    values: List[float] = []
    index = 0
    while index < len(observations):
        time = observations[index][0]
        events = 0
        removed = 0
        while index < len(observations) and observations[index][0] == time:
            if observations[index][1]:
                events += 1
            removed += 1
            index += 1
        if events:
            survival *= 1.0 - events / at_risk
            times.append(time)
            values.append(survival)
        at_risk -= removed
    return SurvivalCurve(times=tuple(times), survival=tuple(values),
                         horizon=observations[-1][0])


def restricted_mean(records: Sequence[HcFirstRecord],
                    cap: int = None) -> float:
    """Mean HC_first restricted to ``cap`` (default: the largest cap
    present), computed as the area under the survival curve.

    With no censoring this equals the arithmetic mean (for values within
    the cap); with censoring it is the standard unbiased-within-horizon
    summary, strictly above the censored-rows-dropped mean.
    """
    curve = kaplan_meier(records)
    if cap is None:
        cap = max(record.max_hammers for record in records)
    if cap <= 0:
        raise AnalysisError("cap must be positive")
    area = 0.0
    previous_time = 0
    previous_survival = 1.0
    for time, survival in zip(curve.times, curve.survival):
        if time >= cap:
            break
        area += previous_survival * (time - previous_time)
        previous_time = time
        previous_survival = survival
    area += previous_survival * (cap - previous_time)
    return area


def censoring_rate(records: Sequence[HcFirstRecord]) -> float:
    """Fraction of searches that hit the cap without a flip."""
    if not records:
        raise AnalysisError("no HC_first records to analyse")
    return sum(1 for record in records if record.censored) / len(records)

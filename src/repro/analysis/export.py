"""CSV exporters for figure data.

The text renderings in :mod:`repro.analysis.figures` are terminal
artifacts; these exporters write the same series as CSV so the figures
can be replotted in any tool (matplotlib, gnuplot, a spreadsheet)
without re-running experiments.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.analysis.figures import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    fig5_row_series,
    fig6_bank_scatter,
)
from repro.core.results import CharacterizationDataset

PathLike = Union[str, Path]


def export_fig3_csv(dataset: CharacterizationDataset,
                    path: PathLike) -> None:
    """Fig. 3 box statistics: one row per (pattern, channel)."""
    distributions = fig3_ber_distributions(dataset)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pattern", "channel", "rows", "min", "q1",
                         "median", "q3", "max", "mean"])
        for pattern, per_channel in distributions.items():
            for channel, stats in sorted(per_channel.items()):
                writer.writerow([pattern, channel, stats.count,
                                 stats.minimum, stats.q1, stats.median,
                                 stats.q3, stats.maximum, stats.mean])


def export_fig4_csv(dataset: CharacterizationDataset,
                    path: PathLike) -> None:
    """Fig. 4 box statistics: one row per (pattern, channel)."""
    distributions = fig4_hcfirst_distributions(dataset)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["pattern", "channel", "rows", "min", "q1",
                         "median", "q3", "max", "mean"])
        for pattern, per_channel in distributions.items():
            for channel, stats in sorted(per_channel.items()):
                writer.writerow([pattern, channel, stats.count,
                                 stats.minimum, stats.q1, stats.median,
                                 stats.q3, stats.maximum, stats.mean])


def export_fig5_csv(dataset: CharacterizationDataset,
                    path: PathLike, pattern: str = "WCDP") -> None:
    """Fig. 5 per-row series: one row per (channel, region, row)."""
    series = fig5_row_series(dataset, pattern=pattern)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["channel", "region", "row", "ber"])
        for entry in series:
            for row, ber in zip(entry.rows, entry.ber):
                writer.writerow([entry.channel, entry.region, row, ber])


def export_fig6_csv(dataset: CharacterizationDataset,
                    path: PathLike, pattern: str = "WCDP") -> None:
    """Fig. 6 scatter points: one row per bank."""
    points = fig6_bank_scatter(dataset, pattern=pattern)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["channel", "pseudo_channel", "bank",
                         "rows_measured", "mean_ber", "cv"])
        for point in points:
            writer.writerow([point.channel, point.pseudo_channel,
                             point.bank, point.rows_measured,
                             point.mean_ber, point.cv])


def export_all(dataset: CharacterizationDataset,
               directory: PathLike, prefix: str = "fig") -> list:
    """Export every figure the dataset supports; returns written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, exporter in (("3", export_fig3_csv),
                           ("4", export_fig4_csv),
                           ("5", export_fig5_csv),
                           ("6", export_fig6_csv)):
        path = directory / f"{prefix}{name}.csv"
        try:
            exporter(dataset, path)
        except Exception:
            continue  # dataset lacks the records this figure needs
        written.append(path)
    return written

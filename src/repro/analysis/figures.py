"""Figure data series and terminal rendering.

Each ``figN_*`` function reduces a characterization dataset to exactly
the series the corresponding paper figure plots; the ``render_*``
functions draw them as aligned text tables/sparklines so benchmark runs
can display the figures without a plotting stack.

* Fig. 3 — BER distribution across rows, per channel, per data pattern
  (four Table 1 patterns + WCDP).
* Fig. 4 — HC_first distribution across rows, same axes.
* Fig. 5 — per-row WCDP BER across the first/middle/last 3K-row regions,
  with subarray-boundary annotations.
* Fig. 6 — per-bank (mean BER, CV of BER) scatter, colored by channel,
  shaped by pseudo channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import BoxStats, box_stats, coefficient_of_variation
from repro.core.patterns import WCDP_NAME
from repro.core.results import CharacterizationDataset, REGIONS
from repro.errors import AnalysisError

#: Figure 3/4 column order: the four Table 1 patterns plus WCDP.
PATTERN_ORDER = ("Rowstripe0", "Rowstripe1", "Checkered0", "Checkered1",
                 WCDP_NAME)


# ----------------------------------------------------------------------
# Fig. 3
# ----------------------------------------------------------------------
def fig3_ber_distributions(
        dataset: CharacterizationDataset
) -> Dict[str, Dict[int, BoxStats]]:
    """BER distribution across rows, keyed [pattern][channel].

    Repetitions of the same row are averaged first (the paper plots
    per-row values), then the distribution across rows is summarized.
    """
    result: Dict[str, Dict[int, BoxStats]] = {}
    for pattern in PATTERN_ORDER:
        per_channel: Dict[int, BoxStats] = {}
        for channel in dataset.channels():
            records = dataset.ber(channel=channel, pattern=pattern)
            if not records:
                continue
            per_row: Dict[tuple, List[float]] = {}
            for record in records:
                per_row.setdefault(record.row_key, []).append(record.ber)
            row_means = [sum(values) / len(values)
                         for values in per_row.values()]
            per_channel[channel] = box_stats(row_means)
        if per_channel:
            result[pattern] = per_channel
    if not result:
        raise AnalysisError("dataset contains no BER records")
    return result


# ----------------------------------------------------------------------
# Fig. 4
# ----------------------------------------------------------------------
def fig4_hcfirst_distributions(
        dataset: CharacterizationDataset
) -> Dict[str, Dict[int, BoxStats]]:
    """HC_first distribution across rows, keyed [pattern][channel].

    Right-censored searches (no flip at the 256K cap) are excluded from
    the distribution, as in the paper's figure.
    """
    result: Dict[str, Dict[int, BoxStats]] = {}
    for pattern in PATTERN_ORDER:
        per_channel: Dict[int, BoxStats] = {}
        for channel in dataset.channels():
            records = dataset.hcfirst(channel=channel, pattern=pattern,
                                      include_censored=False)
            if not records:
                continue
            per_row: Dict[tuple, List[int]] = {}
            for record in records:
                per_row.setdefault(record.row_key, []).append(record.hc_first)
            row_values = [min(values) for values in per_row.values()]
            per_channel[channel] = box_stats(row_values)
        if per_channel:
            result[pattern] = per_channel
    if not result:
        raise AnalysisError("dataset contains no uncensored HC_first records")
    return result


# ----------------------------------------------------------------------
# Fig. 5
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RowSeries:
    """One channel's per-row WCDP BER within one region."""

    channel: int
    region: str
    rows: Tuple[int, ...]
    ber: Tuple[float, ...]


def fig5_row_series(dataset: CharacterizationDataset,
                    pattern: str = WCDP_NAME) -> List[RowSeries]:
    """Per-row BER series per (channel, region), sorted by row."""
    series: List[RowSeries] = []
    for channel in dataset.channels():
        for region in REGIONS:
            records = dataset.ber(channel=channel, pattern=pattern,
                                  region=region)
            if not records:
                continue
            per_row: Dict[int, List[float]] = {}
            for record in records:
                per_row.setdefault(record.row, []).append(record.ber)
            rows = tuple(sorted(per_row))
            ber = tuple(sum(per_row[row]) / len(per_row[row])
                        for row in rows)
            series.append(RowSeries(channel=channel, region=region,
                                    rows=rows, ber=ber))
    if not series:
        raise AnalysisError(f"no {pattern} BER records for Fig. 5")
    return series


# ----------------------------------------------------------------------
# Fig. 6
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BankPoint:
    """One bank's position in the Fig. 6 scatter."""

    channel: int
    pseudo_channel: int
    bank: int
    mean_ber: float
    cv: float
    rows_measured: int


def fig6_bank_scatter(dataset: CharacterizationDataset,
                      pattern: str = WCDP_NAME) -> List[BankPoint]:
    """(mean BER, CV) per bank over its measured rows."""
    per_bank: Dict[Tuple[int, int, int], Dict[tuple, List[float]]] = {}
    for record in dataset.ber(pattern=pattern):
        bank_key = (record.channel, record.pseudo_channel, record.bank)
        per_bank.setdefault(bank_key, {}).setdefault(
            record.row_key, []).append(record.ber)
    points: List[BankPoint] = []
    for bank_key, rows in sorted(per_bank.items()):
        row_means = [sum(values) / len(values) for values in rows.values()]
        if len(row_means) < 2:
            continue
        mean = sum(row_means) / len(row_means)
        if mean == 0.0:
            continue
        points.append(BankPoint(
            channel=bank_key[0], pseudo_channel=bank_key[1],
            bank=bank_key[2], mean_ber=mean,
            cv=coefficient_of_variation(row_means),
            rows_measured=len(row_means)))
    if not points:
        raise AnalysisError(f"no per-bank {pattern} BER data for Fig. 6")
    return points


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def render_box_table(distributions: Dict[str, Dict[int, BoxStats]],
                     value_format: str = "{:.4f}",
                     title: str = "") -> str:
    """Aligned text table: one block per pattern, one row per channel."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = (f"{'pattern':<12} {'ch':>3} {'n':>5} {'min':>10} {'q1':>10} "
              f"{'median':>10} {'q3':>10} {'max':>10} {'mean':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for pattern, per_channel in distributions.items():
        for channel, stats in sorted(per_channel.items()):
            lines.append(
                f"{pattern:<12} {channel:>3} {stats.count:>5} "
                f"{value_format.format(stats.minimum):>10} "
                f"{value_format.format(stats.q1):>10} "
                f"{value_format.format(stats.median):>10} "
                f"{value_format.format(stats.q3):>10} "
                f"{value_format.format(stats.maximum):>10} "
                f"{value_format.format(stats.mean):>10}")
    return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def render_row_series(series: Sequence[RowSeries],
                      boundaries: Optional[Sequence[int]] = None,
                      width: int = 64) -> str:
    """Sparkline per (channel, region); '|' marks subarray boundaries."""
    if not series:
        raise AnalysisError("no series to render")
    peak = max(max(entry.ber) for entry in series if entry.ber)
    lines: List[str] = [f"peak BER = {peak:.4%}"]
    boundary_set = set(boundaries or ())
    for entry in series:
        marks: List[str] = []
        for row, ber in zip(entry.rows, entry.ber):
            level = 0
            if peak > 0:
                level = min(len(_SPARK_LEVELS) - 1,
                            int(round(ber / peak * (len(_SPARK_LEVELS) - 1))))
            symbol = _SPARK_LEVELS[level]
            if any(row <= boundary < (row + 64) for boundary in boundary_set):
                symbol = "|"
            marks.append(symbol)
        profile = "".join(marks[:width])
        lines.append(f"ch{entry.channel} {entry.region:<6} "
                     f"rows {entry.rows[0]:>5}-{entry.rows[-1]:<5} "
                     f"[{profile}]")
    return "\n".join(lines)


def render_scatter_table(points: Sequence[BankPoint]) -> str:
    """Fig. 6 as a table sorted by channel, then mean BER."""
    if not points:
        raise AnalysisError("no points to render")
    header = (f"{'ch':>3} {'pc':>3} {'bank':>4} {'rows':>5} "
              f"{'mean BER':>10} {'CV':>8}")
    lines = [header, "-" * len(header)]
    for point in sorted(points,
                        key=lambda p: (p.channel, p.pseudo_channel, p.bank)):
        lines.append(f"{point.channel:>3} {point.pseudo_channel:>3} "
                     f"{point.bank:>4} {point.rows_measured:>5} "
                     f"{point.mean_ber:>10.5f} {point.cv:>8.3f}")
    return "\n".join(lines)

"""Markdown report generation (the EXPERIMENTS.md format).

:func:`experiment_report` renders a full paper-vs-measured report from
characterization datasets and auxiliary results, so a benchmark campaign
can regenerate EXPERIMENTS.md in one call.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.figures import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    fig5_row_series,
    fig6_bank_scatter,
    render_box_table,
    render_row_series,
    render_scatter_table,
)
from repro.analysis.tables import (
    channel_groups_by_ber,
    format_headline_table,
    headline_numbers,
)
from repro.core.results import CharacterizationDataset


def experiment_report(dataset: CharacterizationDataset,
                      utrr_period: Optional[int] = None,
                      subarray_sizes: Optional[Sequence[int]] = None,
                      title: str = "Characterization report") -> str:
    """A self-contained markdown report of one campaign."""
    sections: List[str] = [f"# {title}", ""]

    sections.append("## Headline numbers (paper vs measured)")
    sections.append("```")
    sections.append(format_headline_table(
        headline_numbers(dataset, utrr_period=utrr_period)))
    sections.append("```")
    sections.append("")

    sections.append("## Channel grouping by BER (die pairs, observation O3)")
    groups = channel_groups_by_ber(dataset)
    for index, group in enumerate(groups):
        sections.append(f"- group {index}: channels {group}")
    sections.append("")

    sections.append("## Fig. 3 — BER across rows / channels / patterns")
    sections.append("```")
    sections.append(render_box_table(fig3_ber_distributions(dataset),
                                     value_format="{:.5f}"))
    sections.append("```")
    sections.append("")

    try:
        fig4 = fig4_hcfirst_distributions(dataset)
    except Exception:
        fig4 = None
    if fig4:
        sections.append("## Fig. 4 — HC_first across rows / channels / "
                        "patterns")
        sections.append("```")
        sections.append(render_box_table(fig4, value_format="{:.0f}"))
        sections.append("```")
        sections.append("")

    try:
        series = fig5_row_series(dataset)
    except Exception:
        series = None
    if series:
        sections.append("## Fig. 5 — per-row WCDP BER (subarray structure)")
        sections.append("```")
        sections.append(render_row_series(series))
        sections.append("```")
        sections.append("")

    try:
        points = fig6_bank_scatter(dataset)
    except Exception:
        points = None
    if points and len(points) > 1:
        sections.append("## Fig. 6 — per-bank mean BER vs CV")
        sections.append("```")
        sections.append(render_scatter_table(points))
        sections.append("```")
        sections.append("")

    if subarray_sizes:
        sections.append("## Subarray reverse engineering (footnote 3)")
        sections.append(f"- discovered subarray sizes: "
                        f"{sorted(set(subarray_sizes))} "
                        f"(paper: 832 and 768 rows)")
        sections.append("")

    if utrr_period is not None:
        sections.append("## §5 — hidden TRR")
        sections.append(f"- U-TRR infers a victim refresh once every "
                        f"**{utrr_period}** REF commands (paper: 17)")
        sections.append("")

    return "\n".join(sections)

"""Distribution statistics used throughout the evaluation.

The paper summarizes per-row metrics with box-and-whiskers plots (first
and third quartiles, min/max whiskers, mean marker — its footnote 2) and
compares bank distributions via the coefficient of variation (footnote 4:
standard deviation normalized to the mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class BoxStats:
    """Box-and-whiskers summary of one distribution (paper footnote 2)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) using the median-of-halves convention.

    The paper's footnote 2 defines Q1/Q3 as "the medians of the first and
    second half of the ordered set of data points", so we implement that
    convention rather than numpy's default interpolation.
    """
    if len(values) == 0:
        raise AnalysisError("quartiles of an empty sequence")
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    n = len(ordered)
    median = float(np.median(ordered))
    half = n // 2
    lower = ordered[:half]
    upper = ordered[half + (n % 2):]
    if len(lower) == 0:  # n == 1
        return median, median, median
    return float(np.median(lower)), median, float(np.median(upper))


def box_stats(values: Sequence[float]) -> BoxStats:
    """Full box-plot summary of ``values``."""
    if len(values) == 0:
        raise AnalysisError("box_stats of an empty sequence")
    array = np.asarray(values, dtype=np.float64)
    q1, median, q3 = quartiles(array)
    return BoxStats(count=len(array),
                    minimum=float(array.min()), q1=q1, median=median, q3=q3,
                    maximum=float(array.max()), mean=float(array.mean()))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation normalized to the mean (paper footnote 4).

    Uses the population standard deviation; raises on an all-zero mean
    (the CV is undefined there).
    """
    if len(values) == 0:
        raise AnalysisError("CV of an empty sequence")
    array = np.asarray(values, dtype=np.float64)
    mean = float(array.mean())
    if mean == 0.0:
        raise AnalysisError("CV undefined for zero-mean data")
    return float(array.std()) / mean


def relative_difference(larger: float, smaller: float) -> float:
    """(larger - smaller) / larger — the paper's "up to X%" convention.

    A 79% difference between the worst and best channel means the best
    channel's BER is 21% of the worst's, i.e. a 2.03x ratio the other way
    up — both numbers the abstract quotes come from this definition.
    """
    if larger == 0:
        raise AnalysisError("relative difference with zero reference")
    return (larger - smaller) / larger


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (summary across multiplicative effects)."""
    if len(values) == 0:
        raise AnalysisError("geometric mean of an empty sequence")
    array = np.asarray(values, dtype=np.float64)
    if np.any(array <= 0):
        raise AnalysisError("geometric mean needs positive values")
    return float(np.exp(np.log(array).mean()))

"""Distribution statistics used throughout the evaluation.

The paper summarizes per-row metrics with box-and-whiskers plots (first
and third quartiles, min/max whiskers, mean marker — its footnote 2) and
compares bank distributions via the coefficient of variation (footnote 4:
standard deviation normalized to the mean).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class BoxStats:
    """Box-and-whiskers summary of one distribution (paper footnote 2)."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def _validated(values: Sequence[float], what: str) -> np.ndarray:
    """``values`` as a 1-D float array, or a clear :class:`AnalysisError`.

    Every public function below funnels through this, so empty input,
    nested/scalar shapes, and NaN/inf contamination (e.g. a BER series
    divided by a zero denominator upstream) fail with the *metric name*
    instead of a ZeroDivisionError or a silent numpy warning.
    """
    try:
        array = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        raise AnalysisError(
            f"{what} needs a sequence of numbers, got {values!r}") from None
    if array.ndim != 1:
        raise AnalysisError(
            f"{what} needs a 1-D sequence, got shape {array.shape}")
    if array.size == 0:
        raise AnalysisError(f"{what} of an empty sequence")
    if not np.all(np.isfinite(array)):
        raise AnalysisError(f"{what} of non-finite values (NaN/inf present)")
    return array


def quartiles(values: Sequence[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) using the median-of-halves convention.

    The paper's footnote 2 defines Q1/Q3 as "the medians of the first and
    second half of the ordered set of data points", so we implement that
    convention rather than numpy's default interpolation.
    """
    ordered = np.sort(_validated(values, "quartiles"))
    n = len(ordered)
    median = float(np.median(ordered))
    half = n // 2
    lower = ordered[:half]
    upper = ordered[half + (n % 2):]
    if len(lower) == 0:  # n == 1
        return median, median, median
    return float(np.median(lower)), median, float(np.median(upper))


def box_stats(values: Sequence[float]) -> BoxStats:
    """Full box-plot summary of ``values``."""
    array = _validated(values, "box_stats")
    q1, median, q3 = quartiles(array)
    return BoxStats(count=len(array),
                    minimum=float(array.min()), q1=q1, median=median, q3=q3,
                    maximum=float(array.max()), mean=float(array.mean()))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation normalized to the mean (paper footnote 4).

    Uses the population standard deviation; raises on a zero mean — both
    the all-zero case (e.g. a flip-free bank) and a cancelling mixed-sign
    case — because the CV is undefined there.
    """
    array = _validated(values, "coefficient_of_variation")
    mean = float(array.mean())
    if mean == 0.0:
        detail = ("all zero" if not array.any()
                  else "mixed signs cancelling to zero mean")
        raise AnalysisError(
            "coefficient of variation undefined for zero-mean data "
            f"({array.size} values, {detail})")
    return float(array.std()) / mean


def relative_difference(larger: float, smaller: float) -> float:
    """(larger - smaller) / larger — the paper's "up to X%" convention.

    A 79% difference between the worst and best channel means the best
    channel's BER is 21% of the worst's, i.e. a 2.03x ratio the other way
    up — both numbers the abstract quotes come from this definition.
    """
    if not (np.isfinite(larger) and np.isfinite(smaller)):
        raise AnalysisError(
            f"relative difference of non-finite values "
            f"({larger!r}, {smaller!r})")
    if larger == 0:
        raise AnalysisError("relative difference with zero reference")
    return (larger - smaller) / larger


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (summary across multiplicative effects).

    Zero or negative entries (an all-zero BER series included) are
    rejected up front — ``log`` of them would emit numpy warnings and
    propagate ``-inf``/NaN into downstream summaries.
    """
    array = _validated(values, "geometric mean")
    if np.any(array <= 0):
        raise AnalysisError(
            f"geometric mean needs positive values; "
            f"{int(np.count_nonzero(array <= 0))} of {array.size} are <= 0")
    return float(np.exp(np.log(array).mean()))

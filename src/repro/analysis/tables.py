"""Headline numbers: the quantitative claims of the abstract and §4/§5.

:func:`headline_numbers` reduces a characterization dataset (plus an
optional U-TRR result) to the paper's quoted values, next to the paper's
own numbers, so EXPERIMENTS.md and the benches can print a paper-vs-
measured scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import relative_difference
from repro.core.patterns import WCDP_NAME
from repro.core.results import CharacterizationDataset
from repro.errors import AnalysisError


@dataclass(frozen=True)
class HeadlineNumber:
    """One paper claim with its measured counterpart."""

    key: str
    description: str
    paper_value: Optional[float]
    measured_value: float

    def format_row(self) -> str:
        paper = ("-" if self.paper_value is None
                 else f"{self.paper_value:g}")
        return (f"{self.key:<28} {paper:>12} {self.measured_value:>12.4g}  "
                f"{self.description}")


def _channel_mean_ber(dataset: CharacterizationDataset,
                      pattern: str) -> Dict[int, float]:
    means: Dict[int, float] = {}
    for channel in dataset.channels():
        records = dataset.ber(channel=channel, pattern=pattern)
        if records:
            means[channel] = sum(r.ber for r in records) / len(records)
    if not means:
        raise AnalysisError(f"no {pattern} BER records")
    return means


def _channel_mean_hcfirst(dataset: CharacterizationDataset,
                          pattern: str) -> Dict[int, float]:
    means: Dict[int, float] = {}
    for channel in dataset.channels():
        records = dataset.hcfirst(channel=channel, pattern=pattern,
                                  include_censored=False)
        if records:
            means[channel] = (sum(r.hc_first for r in records) /
                              len(records))
    return means


def ber_channel_extremes(dataset: CharacterizationDataset,
                         pattern: str = WCDP_NAME
                         ) -> Tuple[int, int, float, float]:
    """(worst channel, best channel, worst BER, best BER) for a pattern."""
    means = _channel_mean_ber(dataset, pattern)
    worst = max(means, key=means.get)
    best = min(means, key=means.get)
    return worst, best, means[worst], means[best]


def channel_groups_by_ber(dataset: CharacterizationDataset,
                          pattern: str = WCDP_NAME,
                          group_size: int = 2) -> List[List[int]]:
    """Channels grouped by BER similarity (the die-pair structure, O3).

    Sorts channels by mean BER and chunks them; the paper observes the
    chunks land on {0,1}-style die pairs.
    """
    means = _channel_mean_ber(dataset, pattern)
    ordered = sorted(means, key=means.get)
    return [sorted(ordered[index:index + group_size])
            for index in range(0, len(ordered), group_size)]


def headline_numbers(dataset: CharacterizationDataset,
                     utrr_period: Optional[int] = None
                     ) -> List[HeadlineNumber]:
    """The paper's quoted values against this dataset's measurements."""
    numbers: List[HeadlineNumber] = []

    worst, best, worst_ber, best_ber = ber_channel_extremes(dataset)
    numbers.append(HeadlineNumber(
        key="ber_channel_ratio",
        description=(f"WCDP BER ratio, worst channel (ch{worst}) over "
                     f"best (ch{best}); paper: ch7 / ch0 = 2.03x"),
        paper_value=2.03, measured_value=worst_ber / best_ber))
    # The abstract's "up to 79%" is the worst contrast over *any* data
    # pattern (a 79% difference is a 4.76x ratio — far above the WCDP
    # means' 2.03x): per-pattern channel means can diverge much more
    # because orientation effects align with density effects.
    worst_difference = 0.0
    for pattern in dataset.patterns():
        try:
            __, __, pattern_worst, pattern_best = ber_channel_extremes(
                dataset, pattern)
        except AnalysisError:
            continue
        if pattern_best > 0:
            worst_difference = max(
                worst_difference,
                relative_difference(pattern_worst, pattern_best))
    numbers.append(HeadlineNumber(
        key="ber_channel_difference",
        description="largest per-pattern channel BER difference "
                    "(worst - best) / worst; paper: up to 79%",
        paper_value=0.79, measured_value=worst_difference))

    hc_records = dataset.hcfirst(include_censored=False)
    if hc_records:
        numbers.append(HeadlineNumber(
            key="min_hcfirst",
            description="minimum HC_first across channels and patterns; "
                        "paper: 14,531",
            paper_value=14531,
            measured_value=min(r.hc_first for r in hc_records)))
        means = _channel_mean_hcfirst(dataset, WCDP_NAME)
        if len(means) >= 2:
            high = max(means.values())
            low = min(means.values())
            numbers.append(HeadlineNumber(
                key="hcfirst_channel_difference",
                description="WCDP mean HC_first channel difference; "
                            "paper: up to 20%",
                paper_value=0.20,
                measured_value=relative_difference(high, low)))

    for pattern, paper_value in (("Rowstripe0", 57925.0),
                                 ("Rowstripe1", 79179.0)):
        records = dataset.hcfirst(channel=0, pattern=pattern,
                                  include_censored=False)
        if records:
            numbers.append(HeadlineNumber(
                key=f"ch0_mean_hcfirst_{pattern.lower()}",
                description=f"channel-0 mean HC_first for {pattern}",
                paper_value=paper_value,
                measured_value=(sum(r.hc_first for r in records) /
                                len(records))))

    ch7_rs1 = dataset.ber(channel=7, pattern="Rowstripe1")
    if ch7_rs1:
        numbers.append(HeadlineNumber(
            key="ch7_max_ber_rowstripe1",
            description="channel-7 maximum BER for Rowstripe1; paper: 3.13%",
            paper_value=0.0313,
            measured_value=max(r.ber for r in ch7_rs1)))
    ch7_ck0 = dataset.ber(channel=7, pattern="Checkered0")
    if ch7_ck0:
        numbers.append(HeadlineNumber(
            key="ch7_max_ber_checkered0",
            description="channel-7 maximum BER for Checkered0; paper: 2.04%",
            paper_value=0.0204,
            measured_value=max(r.ber for r in ch7_ck0)))

    if utrr_period is not None:
        numbers.append(HeadlineNumber(
            key="trr_period_refs",
            description="hidden-TRR victim refresh period in REF commands; "
                        "paper: 17",
            paper_value=17, measured_value=float(utrr_period)))
    return numbers


def format_headline_table(numbers: List[HeadlineNumber]) -> str:
    """Paper-vs-measured scoreboard as aligned text."""
    header = f"{'metric':<28} {'paper':>12} {'measured':>12}  description"
    lines = [header, "-" * len(header)]
    lines.extend(number.format_row() for number in numbers)
    return "\n".join(lines)

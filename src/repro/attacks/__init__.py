"""Attack implications of the spatial-variation findings (§4 summary).

The paper's first implication: *"an RH attack can use the
most-RH-vulnerable HBM2 channel to reduce the time it spends on
preparing for an attack, by finding exploitable RH bitflips faster
(i.e., by accelerating memory templating), and performing the attack, by
benefiting from a small HC_first value."*

:mod:`repro.attacks.templating` quantifies exactly that trade-off on the
simulated chip, and :mod:`repro.attacks.trrespass` demonstrates why the
§5 finding matters: the uncovered sampler-based TRR is bypassable with
decoy activations.
"""

from repro.attacks.templating import MemoryTemplater, TemplatingResult
from repro.attacks.trrespass import BypassOutcome, TrrBypassAttack

__all__ = ["BypassOutcome", "MemoryTemplater", "TemplatingResult",
           "TrrBypassAttack"]

"""Memory templating: scanning for exploitable RowHammer bitflips.

Memory templating (Razavi+ "Flip Feng Shui") is the attack-preparation
phase: sweep victim rows, hammer each, and record which bit positions
flip and in which direction, building a library of *templates* the attack
later matches against target data structures.  Its cost is dominated by
hammering time, so the paper's observation that channels differ by ~2x in
BER translates directly into a ~2x templating-throughput difference —
the attacker should template the most vulnerable channel.

:class:`MemoryTemplater` implements the scan through the public host
interface and accounts time in *DRAM time* (the simulated clock), which
is the same budget a real attacker pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bender.host import HostInterface
from repro.core.hammer import DoubleSidedHammer
from repro.core.patterns import DataPattern, ROWSTRIPE0
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError


@dataclass(frozen=True)
class FlipTemplate:
    """One exploitable bitflip: where it is and which way it flips."""

    victim: DramAddress
    bit_offset: int
    #: True for a 0 -> 1 flip (with the scanned pattern's victim data).
    zero_to_one: bool
    pattern: str


@dataclass
class TemplatingResult:
    """Outcome of templating one channel region."""

    channel: int
    templates: List[FlipTemplate] = field(default_factory=list)
    rows_scanned: int = 0
    dram_time_s: float = 0.0

    @property
    def templates_found(self) -> int:
        return len(self.templates)

    @property
    def templates_per_second(self) -> float:
        if self.dram_time_s == 0.0:
            return 0.0
        return self.templates_found / self.dram_time_s

    @property
    def seconds_per_template(self) -> float:
        if not self.templates:
            return float("inf")
        return self.dram_time_s / self.templates_found


class MemoryTemplater:
    """Sweeps rows of a channel collecting flip templates."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 hammer_count: int = 128 * 1024,
                 pattern: DataPattern = ROWSTRIPE0) -> None:
        if hammer_count <= 0:
            raise ExperimentError("hammer_count must be positive")
        self._host = host
        self._mapper = mapper
        self._hammer = DoubleSidedHammer(host, mapper)
        self._hammer_count = hammer_count
        self._pattern = pattern

    def template_channel(self, channel: int, rows: Sequence[int],
                         pseudo_channel: int = 0, bank: int = 0,
                         target_templates: Optional[int] = None
                         ) -> TemplatingResult:
        """Scan ``rows`` of one channel; stop early at the target count.

        Args:
            channel: channel to template.
            rows: candidate victim rows to hammer.
            target_templates: stop once this many templates were found
                (None scans every row) — "time to N exploitable flips"
                is the attacker-facing metric.
        """
        device = self._host.device
        result = TemplatingResult(channel=channel)
        start_cycle = device.now
        for row in rows:
            victim = DramAddress(channel, pseudo_channel, bank, row)
            if len(self._mapper.physical_neighbors(row)) < 2:
                continue
            outcome = self._hammer.run(victim, self._pattern,
                                       self._hammer_count)
            result.rows_scanned += 1
            for position, upward in zip(outcome.report.positions,
                                        outcome.report.zero_to_one):
                result.templates.append(FlipTemplate(
                    victim=victim, bit_offset=int(position),
                    zero_to_one=bool(upward), pattern=self._pattern.name))
            if (target_templates is not None and
                    result.templates_found >= target_templates):
                break
        result.dram_time_s = device.timing.seconds(device.now - start_cycle)
        return result

    def compare_channels(self, channels: Sequence[int], rows: Sequence[int],
                         target_templates: int,
                         pseudo_channel: int = 0, bank: int = 0
                         ) -> Dict[int, TemplatingResult]:
        """Time-to-N-templates per channel (the §4 implication)."""
        return {
            channel: self.template_channel(
                channel, rows, pseudo_channel, bank,
                target_templates=target_templates)
            for channel in channels
        }

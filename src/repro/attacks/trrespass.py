"""TRRespass-style bypass of the hidden TRR mechanism.

§5 shows the chip's undisclosed TRR refreshes a *sampled* aggressor's
victims every 17 REFs.  Samplers with few entries are a known weakness
(Frigo+ S&P'20, "TRRespass"): an attacker who controls which activation
the sampler sees last can feed it **decoys**, so the preventive refresh
lands on rows the attack does not target while the true victim keeps
accumulating disturbance.

:class:`TrrBypassAttack` demonstrates this against the simulated chip's
last-activation-wins sampler under *system-realistic* conditions —
periodic refresh running at the nominal tREFI rate:

* the **naive** attack hammers the victim's two neighbours in bursts
  between REFs; the sampler therefore always holds a true aggressor and
  TRR keeps rescuing the victim (zero flips);
* the **decoy** attack appends one activation of a far-away decoy row to
  each burst; the sampler holds the decoy at every REF, TRR refreshes
  the decoy's (irrelevant) neighbours, and the victim flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import HostInterface
from repro.bender.program import ProgramBuilder
from repro.core.hammer import prepare_neighborhood
from repro.core.patterns import DataPattern, ROWSTRIPE0
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError
from repro.verify.program import VerifyContext, assert_verified


@dataclass(frozen=True)
class BypassOutcome:
    """Result of one refresh-enabled attack run."""

    victim: DramAddress
    hammer_count: int
    used_decoy: bool
    flips: int
    refs_issued: int
    duration_s: float

    @property
    def bypassed_trr(self) -> bool:
        return self.used_decoy and self.flips > 0


class TrrBypassAttack:
    """Hammering under live refresh, with or without sampler decoys."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 pattern: DataPattern = ROWSTRIPE0,
                 decoy_distance: int = 512, verify: bool = True) -> None:
        """
        Args:
            decoy_distance: physical rows between the victim and the
                decoy aggressor (far enough that the decoy's neighbours
                are not the attack's victims).
        """
        if decoy_distance < 16:
            raise ExperimentError(
                "decoy must be well outside the victim's neighbourhood")
        self._host = host
        self._mapper = mapper
        self._pattern = pattern
        self._decoy_distance = decoy_distance
        self._verify = verify

    def run(self, victim: DramAddress, hammer_count: int,
            use_decoy: bool) -> BypassOutcome:
        """Attack one victim with periodic refresh interleaved.

        Hammers are issued in bursts sized to the nominal tREFI; each
        burst is followed (optionally) by one decoy activation, then one
        REF — the cadence a real memory controller enforces.
        """
        host = self._host
        device = host.device
        timing = device.timing
        mapper = self._mapper

        prepare_neighborhood(host, mapper, victim, self._pattern)
        aggressors = list(mapper.physical_neighbors(victim.row))
        if len(aggressors) < 2:
            raise ExperimentError(
                f"victim {victim} lacks two physical neighbours")
        physical_victim = mapper.logical_to_physical(victim.row)
        decoy_physical = physical_victim + self._decoy_distance
        if decoy_physical >= device.geometry.rows:
            decoy_physical = physical_victim - self._decoy_distance
        decoy_logical = mapper.physical_to_logical(decoy_physical)

        hammer_cycles = len(aggressors) * timing.rc_cycles
        hammers_per_burst = max(1, (timing.refi_cycles - timing.rfc_cycles -
                                    timing.rc_cycles) // hammer_cycles)
        bursts, remainder = divmod(hammer_count, hammers_per_burst)

        builder = ProgramBuilder()
        start_cycle = device.now

        def emit_burst(count: int) -> None:
            with builder.loop(count):
                for row in aggressors:
                    builder.act(victim.channel, victim.pseudo_channel,
                                victim.bank, row)
                    builder.pre(victim.channel, victim.pseudo_channel,
                                victim.bank)

        with builder.loop(bursts):
            emit_burst(hammers_per_burst)
            if use_decoy:
                builder.act(victim.channel, victim.pseudo_channel,
                            victim.bank, decoy_logical)
                builder.pre(victim.channel, victim.pseudo_channel,
                            victim.bank)
            builder.ref(victim.channel, victim.pseudo_channel)
        if remainder:
            emit_burst(remainder)
        program = builder.build()
        if self._verify:
            expected = {(victim.channel, victim.pseudo_channel,
                         victim.bank, row): hammer_count
                        for row in aggressors}
            if use_decoy:
                expected[(victim.channel, victim.pseudo_channel,
                          victim.bank, decoy_logical)] = bursts
            # Deliberately NOT assume_trr_escaped: the attack runs with
            # TRR live and either loses to it (naive) or decoys it.
            assert_verified(
                program,
                VerifyContext.for_host(host, expected_hammers=expected),
                what=f"TRR bypass program for {victim}")
        execution = host.run(program)

        read_bits = host.read_row(victim)
        expected = byte_fill_bits(self._pattern.victim_byte,
                                  device.geometry.row_bytes)
        return BypassOutcome(
            victim=victim, hammer_count=hammer_count, used_decoy=use_decoy,
            flips=count_flips(read_bits, expected),
            refs_issued=bursts,
            duration_s=timing.seconds(device.now - start_cycle))

    def compare(self, victim: DramAddress,
                hammer_count: int) -> dict:
        """Naive vs decoy attack on the same victim."""
        return {
            "naive": self.run(victim, hammer_count, use_decoy=False),
            "decoy": self.run(victim, hammer_count, use_decoy=True),
        }

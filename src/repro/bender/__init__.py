"""Simulated DRAM Bender testing infrastructure.

The paper drives its HBM2 chip through DRAM Bender [Olgun+ 2022], an
FPGA-based platform that executes small *test programs* — sequences of
DRAM commands with precise, software-controlled timing — and streams read
data back to a host over PCIe.  This subpackage reproduces that stack in
software:

* :mod:`repro.bender.isa` / :mod:`repro.bender.program` — the test-program
  instruction set and a builder API,
* :mod:`repro.bender.assembler` — a textual assembly format,
* :mod:`repro.bender.interpreter` — a cycle-accounting executor with a
  vectorised fast path for hot ACT/PRE hammering loops,
* :mod:`repro.bender.host` — the host-side interface (program upload,
  data readback, mode-register access),
* :mod:`repro.bender.temperature` — the heater/fan thermal plant and the
  Arduino-style PID controller,
* :mod:`repro.bender.board` — the FPGA board tying it all together.
"""

from repro.bender.board import BenderBoard, make_paper_setup
from repro.bender.host import HostInterface
from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.bender.program import Program, ProgramBuilder
from repro.bender.temperature import PidController, ThermalPlant

__all__ = [
    "BenderBoard",
    "ExecutionResult",
    "HostInterface",
    "Interpreter",
    "PidController",
    "Program",
    "ProgramBuilder",
    "ThermalPlant",
    "make_paper_setup",
]

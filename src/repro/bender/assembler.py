"""Textual assembly for DRAM Bender test programs.

DRAM Bender ships a small program format; we provide an equivalent
human-readable one, mainly for documentation, debugging dumps, and tests
that want to state programs declaratively.  Grammar (one instruction per
line, ``#`` comments, case-insensitive mnemonics)::

    ACT   <ch> <pc> <bank> <row>
    PRE   <ch> <pc> <bank>
    PREA  <ch> <pc>
    RD    <ch> <pc> <bank> <column>
    WR    <ch> <pc> <bank> <column> <data>
    RDROW <ch> <pc> <bank>
    WRROW <ch> <pc> <bank> <data>
    REF   <ch> <pc>
    WAIT  <cycles>
    LOOP  <count>
    ENDLOOP

``<data>`` is either hex bytes (``0xDEADBEEF...``) or a repeated byte in
the form ``0xAA*32`` (32 bytes of 0xAA).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.bender import isa
from repro.bender.program import Program
from repro.errors import AssemblyError

_REPEAT_RE = re.compile(r"^0[xX]([0-9a-fA-F]{2})\*(\d+)$")
# Zero digits allowed: WR/WRROW with empty payloads disassemble to a
# bare "0x", which must round-trip back to b"".
_HEX_RE = re.compile(r"^0[xX]([0-9a-fA-F]*)$")


def _parse_data(token: str) -> bytes:
    repeat = _REPEAT_RE.match(token)
    if repeat:
        return bytes([int(repeat.group(1), 16)]) * int(repeat.group(2))
    plain = _HEX_RE.match(token)
    if plain:
        digits = plain.group(1)
        if len(digits) % 2 != 0:
            raise AssemblyError(f"odd hex digit count in data: {token}")
        return bytes.fromhex(digits)
    raise AssemblyError(f"cannot parse data operand: {token}")


def _format_data(data: bytes) -> str:
    if len(data) > 1 and len(set(data)) == 1:
        return f"0x{data[0]:02X}*{len(data)}"
    return "0x" + data.hex().upper()


def _ints(tokens: List[str], count: int, line_number: int) -> List[int]:
    if len(tokens) != count:
        raise AssemblyError(
            f"line {line_number}: expected {count} operands, "
            f"got {len(tokens)}")
    try:
        return [int(token, 0) for token in tokens]
    except ValueError as error:
        raise AssemblyError(f"line {line_number}: {error}") from error


def assemble(text: str) -> Program:
    """Parse assembly ``text`` into a :class:`Program`."""
    stack: List[Tuple[int, List[isa.Instruction]]] = [(0, [])]
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        mnemonic = tokens[0].upper()
        operands = tokens[1:]

        if mnemonic == "LOOP":
            (count,) = _ints(operands, 1, line_number)
            if count < 0:
                raise AssemblyError(
                    f"line {line_number}: loop count must be >= 0")
            stack.append((count, []))
            continue
        if mnemonic == "ENDLOOP":
            if len(stack) == 1:
                raise AssemblyError(
                    f"line {line_number}: ENDLOOP without LOOP")
            count, body = stack.pop()
            stack[-1][1].append(isa.Loop(count, tuple(body)))
            continue

        if mnemonic == "ACT":
            channel, pc, bank, row = _ints(operands, 4, line_number)
            instruction: isa.Instruction = isa.Act(channel, pc, bank, row)
        elif mnemonic == "PRE":
            channel, pc, bank = _ints(operands, 3, line_number)
            instruction = isa.Pre(channel, pc, bank)
        elif mnemonic == "PREA":
            channel, pc = _ints(operands, 2, line_number)
            instruction = isa.PreA(channel, pc)
        elif mnemonic == "RD":
            channel, pc, bank, column = _ints(operands, 4, line_number)
            instruction = isa.Rd(channel, pc, bank, column)
        elif mnemonic == "WR":
            if len(operands) != 5:
                raise AssemblyError(
                    f"line {line_number}: WR needs 5 operands")
            channel, pc, bank, column = _ints(operands[:4], 4, line_number)
            instruction = isa.Wr(channel, pc, bank, column,
                                 _parse_data(operands[4]))
        elif mnemonic == "RDROW":
            channel, pc, bank = _ints(operands, 3, line_number)
            instruction = isa.RdRow(channel, pc, bank)
        elif mnemonic == "WRROW":
            if len(operands) != 4:
                raise AssemblyError(
                    f"line {line_number}: WRROW needs 4 operands")
            channel, pc, bank = _ints(operands[:3], 3, line_number)
            instruction = isa.WrRow(channel, pc, bank,
                                    _parse_data(operands[3]))
        elif mnemonic == "REF":
            channel, pc = _ints(operands, 2, line_number)
            instruction = isa.Ref(channel, pc)
        elif mnemonic == "WAIT":
            (cycles,) = _ints(operands, 1, line_number)
            if cycles < 0:
                raise AssemblyError(
                    f"line {line_number}: WAIT cycles must be >= 0")
            instruction = isa.Wait(cycles)
        else:
            raise AssemblyError(
                f"line {line_number}: unknown mnemonic {mnemonic!r}")
        stack[-1][1].append(instruction)

    if len(stack) != 1:
        raise AssemblyError(f"{len(stack) - 1} unclosed LOOP block(s)")
    return Program(tuple(stack[0][1]))


def disassemble(program: Program) -> str:
    """Render a :class:`Program` back to assembly text."""
    lines: List[str] = []

    def emit(instructions, depth: int) -> None:
        indent = "  " * depth
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                lines.append(f"{indent}LOOP {instruction.count}")
                emit(instruction.body, depth + 1)
                lines.append(f"{indent}ENDLOOP")
            elif isinstance(instruction, isa.Act):
                lines.append(f"{indent}ACT {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank} {instruction.row}")
            elif isinstance(instruction, isa.Pre):
                lines.append(f"{indent}PRE {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank}")
            elif isinstance(instruction, isa.PreA):
                lines.append(f"{indent}PREA {instruction.channel} "
                             f"{instruction.pseudo_channel}")
            elif isinstance(instruction, isa.Rd):
                lines.append(f"{indent}RD {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank} {instruction.column}")
            elif isinstance(instruction, isa.Wr):
                lines.append(f"{indent}WR {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank} {instruction.column} "
                             f"{_format_data(instruction.data)}")
            elif isinstance(instruction, isa.RdRow):
                lines.append(f"{indent}RDROW {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank}")
            elif isinstance(instruction, isa.WrRow):
                lines.append(f"{indent}WRROW {instruction.channel} "
                             f"{instruction.pseudo_channel} "
                             f"{instruction.bank} "
                             f"{_format_data(instruction.data)}")
            elif isinstance(instruction, isa.Ref):
                lines.append(f"{indent}REF {instruction.channel} "
                             f"{instruction.pseudo_channel}")
            elif isinstance(instruction, isa.Wait):
                lines.append(f"{indent}WAIT {instruction.cycles}")
            else:
                raise AssemblyError(
                    f"cannot disassemble: {instruction!r}")

    emit(program.instructions, 0)
    return "\n".join(lines) + "\n"

"""The FPGA board model: device + host interface + temperature control.

:class:`BenderBoard` stands in for the Bittware XUPVVH board of the
paper's setup (Fig. 2): an FPGA whose memory controller fronts one DRAM
device, a PCIe link to the host, and the heating-pad/fan assembly driven
by the Arduino PID controller.

:func:`make_paper_setup` builds the exact configuration of the paper's
experiments: default geometry and timing, the calibrated ground truth,
the hidden TRR engine, and the chip held at 85 degC.  Passing
``device_profile`` (a :mod:`repro.dram.profiles` registry name) swaps
the whole family — geometry, timing, TRR policy, calibration, and
row-mapping defaults — while explicit keyword overrides still win over
the profile's bundled values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.faults.plan import FaultSpec

from repro.bender.host import HostInterface
from repro.bender.interpreter import Interpreter
from repro.bender.temperature import (
    PidController,
    TemperatureController,
    ThermalPlant,
)
from repro.dram.address import RowAddressMapper
from repro.dram.calibration import CalibrationProfile
from repro.dram.device import Device
from repro.dram.geometry import Geometry
from repro.dram.profiles import resolve_profile
from repro.dram.timing import TimingParameters
from repro.dram.trr import TrrConfig


class BenderBoard:
    """One testing station: simulated FPGA board + thermal rig."""

    def __init__(self, device: Device,
                 thermal: Optional[TemperatureController] = None,
                 transport=None) -> None:
        self.device = device
        self.host = HostInterface(device, Interpreter(device),
                                  transport=transport)
        if thermal is None:
            plant = ThermalPlant(temperature_c=device.temperature_c)
            thermal = TemperatureController(plant, PidController())
        self.thermal = thermal

    def set_target_temperature(self, celsius: float) -> int:
        """Drive the thermal rig to ``celsius`` and hold; returns the
        number of control steps the PID loop needed to settle.

        The chip's temperature (which the fault model consults) tracks
        the plant, exactly as the real chip tracks the pad/fan rig.
        """
        self.thermal.set_target(celsius)
        steps = self.thermal.settle()
        self.device.set_temperature(self.thermal.plant.temperature_c)
        return steps

    @property
    def temperature_c(self) -> float:
        return self.device.temperature_c


@dataclass(frozen=True)
class BoardSpec:
    """A serializable recipe for (re)constructing one testing station.

    A :class:`BenderBoard` holds live simulator state and cannot cross a
    process boundary; a spec is a plain frozen dataclass of picklable
    configuration, so parallel sweep workers can carry it into their own
    process and rebuild an *identical* board there (the device seed keys
    every cell property — see :mod:`repro.rng` — so two boards built from
    the same spec are the same chip specimen).

    ``device_profile`` names a family in the :mod:`repro.dram.profiles`
    registry (``hbm2``/``ddr4``/``ddr5``); ``profile`` remains the
    calibration-ground-truth override it always was.  Explicit
    ``geometry``/``timing``/``profile``/``trr_config`` fields override
    the named family's bundled values.

    ``build()`` reproduces exactly what the CLI's station setup does:
    :func:`make_paper_setup` plus the ECC mode-register write and the
    optional wordline-voltage override.
    """

    seed: int = 0
    temperature_c: float = 85.0
    ecc_enabled: bool = False
    wordline_voltage_v: Optional[float] = None
    settle_thermals: bool = True
    geometry: Optional[Geometry] = None
    timing: Optional[TimingParameters] = None
    profile: Optional[CalibrationProfile] = None
    trr_config: Optional[TrrConfig] = None
    device_profile: Optional[str] = None
    #: Fault plan for the station's PCIe link: when it carries link-fault
    #: rates, ``build()`` routes programs through a fault-injecting
    #: transport wrapped in the retrying :class:`~repro.bender.transport.
    #: ResilientTransport` (execution/thermal rates are handled by the
    #: sweep layer, not here).
    faults: Optional["FaultSpec"] = None

    def build(self) -> BenderBoard:
        """Construct the board this spec describes."""
        board = make_paper_setup(
            seed=self.seed, geometry=self.geometry, timing=self.timing,
            profile=self.profile, trr_config=self.trr_config,
            device_profile=self.device_profile,
            temperature_c=self.temperature_c,
            settle_thermals=self.settle_thermals)
        if self.faults is not None and self.faults.has_link_faults:
            from repro.faults.inject import build_link
            board.host.set_transport(build_link(board.device, self.faults))
        board.host.set_ecc_enabled(self.ecc_enabled)
        if self.wordline_voltage_v is not None:
            board.device.set_wordline_voltage(self.wordline_voltage_v)
        return board


def make_paper_setup(seed: int = 0,
                     geometry: Optional[Geometry] = None,
                     timing: Optional[TimingParameters] = None,
                     profile: Optional[CalibrationProfile] = None,
                     trr_config: Optional[TrrConfig] = None,
                     temperature_c: float = 85.0,
                     settle_thermals: bool = True,
                     device_profile: Optional[str] = None) -> BenderBoard:
    """The paper's testing station, ready to run experiments.

    Args:
        seed: device seed — think of each seed as a different physical
            chip specimen with the same design.
        geometry / timing / profile / trr_config: overrides for studies
            that need them; defaults are the paper's configuration, or
            the named family's bundle when ``device_profile`` is given.
        temperature_c: target chip temperature (85 degC in the paper).
        settle_thermals: run the PID loop to the target before returning
            (disable for tests that manage temperature themselves).
        device_profile: :mod:`repro.dram.profiles` registry name
            (``hbm2``/``ddr4``/``ddr5``); ``None`` keeps the historical
            HBM2 defaults, which the ``hbm2`` profile matches exactly.
    """
    family = resolve_profile(device_profile)
    mapper = None
    if family is not None:
        geometry = geometry if geometry is not None else family.geometry
        timing = timing if timing is not None else family.timing
        profile = profile if profile is not None else family.calibration
        trr_config = (trr_config if trr_config is not None
                      else family.trr)
        mapper = RowAddressMapper(
            geometry, control_bit=family.mapper_control_bit,
            swizzle_mask=family.mapper_swizzle_mask)
    device = Device(geometry=geometry, timing=timing, profile=profile,
                    seed=seed, mapper=mapper, trr_config=trr_config,
                    profile_name=family.name if family else None)
    board = BenderBoard(device)
    if settle_thermals:
        board.set_target_temperature(temperature_c)
    else:
        device.set_temperature(temperature_c)
    return board

"""Host-side interface to the (simulated) DRAM Bender board.

The host machine in the paper's setup talks to the FPGA over PCIe: it
uploads test programs, streams back read data, and pokes mode registers.
:class:`HostInterface` is that API.  Characterization code in
:mod:`repro.core` is written exclusively against this interface — the same
separation the real infrastructure enforces — so swapping the simulated
device for real hardware would only replace this module's backend.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.bender.program import Program, ProgramBuilder
from repro.dram.address import DramAddress
from repro.dram.device import HBM2Device
from repro.errors import ProgramError


class HostInterface:
    """Program upload, data readback, and device management."""

    def __init__(self, device: HBM2Device,
                 interpreter: Optional[Interpreter] = None,
                 transport=None) -> None:
        """
        Args:
            device: the board-side device model.
            interpreter: board-side executor (default: a fresh one).
            transport: optional :class:`repro.bender.transport.
                PcieTransport`; when given, every program round-trips
                through the serialized wire format and the link's
                statistics accumulate.
        """
        self.device = device
        self._interpreter = interpreter or Interpreter(device)
        self._transport = transport
        #: Engine services, installed by :class:`repro.engine.session.
        #: EngineSession` when it adopts the board.  ``engine_backend``
        #: is the station's :class:`~repro.engine.backend.LocalBackend`;
        #: ``program_cache`` the shape cache (None while the cache is
        #: disabled, in which case every helper below builds and runs
        #: its program per call exactly as before the engine existed).
        self.engine_backend = None
        self.program_cache = None

    @property
    def interpreter(self) -> Interpreter:
        """The board-side executor (the engine lowers payloads on it)."""
        return self._interpreter

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run(self, program: Program) -> ExecutionResult:
        """Execute a test program and return its readback stream."""
        if self._transport is not None:
            return self._transport.run(program)
        return self._interpreter.run(program)

    def set_transport(self, transport) -> None:
        """Route subsequent programs through ``transport`` (None = direct)."""
        self._transport = transport

    @property
    def transport(self):
        """The link programs round-trip through (None = direct)."""
        return self._transport

    def builder(self) -> ProgramBuilder:
        """A fresh program builder (pure convenience)."""
        return ProgramBuilder()

    def cached_run(self, key, rows, build, verify=None) -> ExecutionResult:
        """Run the program ``build()`` would produce, through the shape
        cache when one is installed.

        ``key`` identifies the program *shape* (everything but the ACT
        row operands); ``rows`` is the row binding, in first-ACT order.
        ``verify`` runs on the built program before it executes: once
        per shape when the cache is installed (insert time), once per
        call without it — exactly the pre-engine behavior.
        """
        if self.program_cache is None:
            program = build()
            if verify is not None:
                verify(program)
            return self.run(program)
        return self.program_cache.execute(key, rows, build, verify=verify)

    # ------------------------------------------------------------------
    # Row-granularity convenience wrappers (each is a tiny test program)
    # ------------------------------------------------------------------
    def write_row(self, address: DramAddress, data: bytes) -> None:
        """ACT + WRROW + PRE."""
        address.validate(self.device.geometry)
        if len(data) != self.device.geometry.row_bytes:
            raise ProgramError(
                f"row data must be {self.device.geometry.row_bytes} bytes, "
                f"got {len(data)}")
        def build() -> Program:
            builder = ProgramBuilder()
            builder.act(address.channel, address.pseudo_channel,
                        address.bank, address.row)
            builder.wr_row(address.channel, address.pseudo_channel,
                           address.bank, data)
            builder.pre(address.channel, address.pseudo_channel, address.bank)
            return builder.build()

        self.cached_run(("write_row", address.channel, address.pseudo_channel,
                         address.bank, data), (address.row,), build)

    def write_rows(self, channel: int, pseudo_channel: int, bank: int,
                   items: Sequence[Tuple[int, bytes]]) -> None:
        """Fill several rows of one bank in a single test program.

        ``items`` is a sequence of (logical row, row payload) pairs;
        the program is the same ACT + WRROW + PRE triad per row that
        :meth:`write_row` issues, in order, so the command stream is
        identical to one ``write_row`` call per item — but the shape
        caches once and executes as one program (and the engine's
        analytic fast path can batch the whole run).  Rows must be
        distinct; duplicate rows fall back to per-row ``write_row``
        calls (the shape cache requires distinct rows per bank).
        """
        geometry = self.device.geometry
        row_list = tuple(row for row, _ in items)
        if len(set(row_list)) != len(row_list):
            for row, data in items:
                self.write_row(DramAddress(channel, pseudo_channel,
                                           bank, row), data)
            return
        geometry.check_channel(channel)
        geometry.check_pseudo_channel(pseudo_channel)
        geometry.check_bank(bank)
        row_bytes = geometry.row_bytes
        payloads = []
        for row, data in items:
            geometry.check_row(row)
            if len(data) != row_bytes:
                raise ProgramError(
                    f"row data must be {row_bytes} bytes, "
                    f"got {len(data)}")
            payloads.append(data)

        def build() -> Program:
            builder = ProgramBuilder()
            for row, data in items:
                builder.act(channel, pseudo_channel, bank, row)
                builder.wr_row(channel, pseudo_channel, bank, data)
                builder.pre(channel, pseudo_channel, bank)
            return builder.build()

        self.cached_run(("write_rows", channel, pseudo_channel, bank,
                         tuple(payloads)), row_list, build)

    def read_row(self, address: DramAddress) -> np.ndarray:
        """ACT + RDROW + PRE; returns the row as an unpacked bit array."""
        address.validate(self.device.geometry)

        def build() -> Program:
            builder = ProgramBuilder()
            builder.act(address.channel, address.pseudo_channel,
                        address.bank, address.row)
            builder.rd_row(address.channel, address.pseudo_channel,
                           address.bank)
            builder.pre(address.channel, address.pseudo_channel, address.bank)
            return builder.build()

        result = self.cached_run(
            ("read_row", address.channel, address.pseudo_channel,
             address.bank), (address.row,), build)
        return result.row_reads[0]

    def read_row_bytes(self, address: DramAddress) -> bytes:
        """Like :meth:`read_row` but packed to bytes."""
        return np.packbits(self.read_row(address)).tobytes()

    def activate_precharge(self, address: DramAddress,
                           count: int = 1) -> None:
        """``count`` ACT/PRE cycles on one row (e.g. a manual refresh)."""
        address.validate(self.device.geometry)

        def build() -> Program:
            builder = ProgramBuilder()
            if count > 1:
                with builder.loop(count):
                    builder.act(address.channel, address.pseudo_channel,
                                address.bank, address.row)
                    builder.pre(address.channel, address.pseudo_channel,
                                address.bank)
            else:
                builder.act(address.channel, address.pseudo_channel,
                            address.bank, address.row)
                builder.pre(address.channel, address.pseudo_channel,
                            address.bank)
            return builder.build()

        self.cached_run(("act_pre", address.channel, address.pseudo_channel,
                         address.bank, count), (address.row,), build)

    def refresh(self, channel: int, pseudo_channel: int,
                count: int = 1) -> None:
        """Issue ``count`` periodic REF commands."""
        def build() -> Program:
            builder = ProgramBuilder()
            if count > 1:
                with builder.loop(count):
                    builder.ref(channel, pseudo_channel)
            else:
                builder.ref(channel, pseudo_channel)
            return builder.build()

        self.cached_run(("refresh", channel, pseudo_channel, count), (),
                        build)

    def wait_seconds(self, seconds: float) -> None:
        """Idle the command bus for a wall-clock duration."""
        def build() -> Program:
            builder = ProgramBuilder()
            builder.wait_time(seconds, self.device.timing.frequency_hz)
            return builder.build()

        self.cached_run(("wait", seconds), (), build)

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------
    def set_ecc_enabled(self, enabled: bool) -> None:
        """Mode-register write toggling on-die ECC on every channel."""
        self.device.set_ecc_enabled(enabled)

    def elapsed_seconds_since(self, start_cycle: int) -> float:
        """In-DRAM seconds elapsed since a recorded device cycle."""
        return self.device.timing.seconds(self.device.now - start_cycle)

"""Host-side interface to the (simulated) DRAM Bender board.

The host machine in the paper's setup talks to the FPGA over PCIe: it
uploads test programs, streams back read data, and pokes mode registers.
:class:`HostInterface` is that API.  Characterization code in
:mod:`repro.core` is written exclusively against this interface — the same
separation the real infrastructure enforces — so swapping the simulated
device for real hardware would only replace this module's backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.bender.program import Program, ProgramBuilder
from repro.dram.address import DramAddress
from repro.dram.device import HBM2Device
from repro.errors import ProgramError


class HostInterface:
    """Program upload, data readback, and device management."""

    def __init__(self, device: HBM2Device,
                 interpreter: Optional[Interpreter] = None,
                 transport=None) -> None:
        """
        Args:
            device: the board-side device model.
            interpreter: board-side executor (default: a fresh one).
            transport: optional :class:`repro.bender.transport.
                PcieTransport`; when given, every program round-trips
                through the serialized wire format and the link's
                statistics accumulate.
        """
        self.device = device
        self._interpreter = interpreter or Interpreter(device)
        self._transport = transport

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def run(self, program: Program) -> ExecutionResult:
        """Execute a test program and return its readback stream."""
        if self._transport is not None:
            return self._transport.run(program)
        return self._interpreter.run(program)

    def set_transport(self, transport) -> None:
        """Route subsequent programs through ``transport`` (None = direct)."""
        self._transport = transport

    @property
    def transport(self):
        """The link programs round-trip through (None = direct)."""
        return self._transport

    def builder(self) -> ProgramBuilder:
        """A fresh program builder (pure convenience)."""
        return ProgramBuilder()

    # ------------------------------------------------------------------
    # Row-granularity convenience wrappers (each is a tiny test program)
    # ------------------------------------------------------------------
    def write_row(self, address: DramAddress, data: bytes) -> None:
        """ACT + WRROW + PRE."""
        address.validate(self.device.geometry)
        if len(data) != self.device.geometry.row_bytes:
            raise ProgramError(
                f"row data must be {self.device.geometry.row_bytes} bytes, "
                f"got {len(data)}")
        builder = ProgramBuilder()
        builder.act(address.channel, address.pseudo_channel, address.bank,
                    address.row)
        builder.wr_row(address.channel, address.pseudo_channel, address.bank,
                       data)
        builder.pre(address.channel, address.pseudo_channel, address.bank)
        self.run(builder.build())

    def read_row(self, address: DramAddress) -> np.ndarray:
        """ACT + RDROW + PRE; returns the row as an unpacked bit array."""
        address.validate(self.device.geometry)
        builder = ProgramBuilder()
        builder.act(address.channel, address.pseudo_channel, address.bank,
                    address.row)
        builder.rd_row(address.channel, address.pseudo_channel, address.bank)
        builder.pre(address.channel, address.pseudo_channel, address.bank)
        result = self.run(builder.build())
        return result.row_reads[0]

    def read_row_bytes(self, address: DramAddress) -> bytes:
        """Like :meth:`read_row` but packed to bytes."""
        return np.packbits(self.read_row(address)).tobytes()

    def activate_precharge(self, address: DramAddress,
                           count: int = 1) -> None:
        """``count`` ACT/PRE cycles on one row (e.g. a manual refresh)."""
        address.validate(self.device.geometry)
        builder = ProgramBuilder()
        if count > 1:
            with builder.loop(count):
                builder.act(address.channel, address.pseudo_channel,
                            address.bank, address.row)
                builder.pre(address.channel, address.pseudo_channel,
                            address.bank)
        else:
            builder.act(address.channel, address.pseudo_channel,
                        address.bank, address.row)
            builder.pre(address.channel, address.pseudo_channel, address.bank)
        self.run(builder.build())

    def refresh(self, channel: int, pseudo_channel: int,
                count: int = 1) -> None:
        """Issue ``count`` periodic REF commands."""
        builder = ProgramBuilder()
        if count > 1:
            with builder.loop(count):
                builder.ref(channel, pseudo_channel)
        else:
            builder.ref(channel, pseudo_channel)
        self.run(builder.build())

    def wait_seconds(self, seconds: float) -> None:
        """Idle the command bus for a wall-clock duration."""
        builder = ProgramBuilder()
        builder.wait_time(seconds, self.device.timing.frequency_hz)
        self.run(builder.build())

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------
    def set_ecc_enabled(self, enabled: bool) -> None:
        """Mode-register write toggling on-die ECC on every channel."""
        self.device.set_ecc_enabled(enabled)

    def elapsed_seconds_since(self, start_cycle: int) -> float:
        """In-DRAM seconds elapsed since a recorded device cycle."""
        return self.device.timing.seconds(self.device.now - start_cycle)

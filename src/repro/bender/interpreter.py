"""Test-program interpreter with a vectorised hammering fast path.

The interpreter executes a :class:`~repro.bender.program.Program` against
an :class:`~repro.dram.device.HBM2Device`, scheduling every command at its
earliest timing-legal cycle (the device enforces constraints) and
collecting read data.

**Fast path.**  RowHammer programs spend nearly all their dynamic
instructions inside one loop: ``LOOP N { ACT a1; PRE; ACT a2; PRE }`` with
N in the hundreds of thousands.  For loops whose body contains only
ACT/PRE/PREA/WAIT, the interpreter executes the first two iterations
instruction-by-instruction (the second iteration runs at the pipeline's
steady-state rate), measures the steady-state iteration period, and
applies the remaining ``N - 2`` iterations in one call to
:meth:`~repro.dram.device.HBM2Device.bulk_activations` — whose semantics
are defined to match the unrolled loop.  A property test in
``tests/bender/test_interpreter.py`` checks slow/fast equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bender import isa
from repro.bender.program import Program
from repro.dram.device import HBM2Device
from repro.dram.ecc import encode_words
from repro.errors import ProgramError
from repro.obs import get_metrics


@dataclass
class ExecutionResult:
    """Everything a test program sends back to the host.

    Attributes:
        column_reads: data of each RD, in program order.
        row_reads: unpacked bit arrays of each RDROW, in program order.
        start_cycle / end_cycle: device clock at program entry and exit.
        trace: per-instruction log lines when tracing is enabled
            (bulk-applied loop iterations appear as one summary line).
    """

    column_reads: List[bytes] = field(default_factory=list)
    row_reads: List[np.ndarray] = field(default_factory=list)
    start_cycle: int = 0
    end_cycle: int = 0
    trace: List[str] = field(default_factory=list)

    @property
    def duration_cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class Interpreter:
    """Executes test programs on a device."""

    def __init__(self, device: HBM2Device, fast_loop_threshold: int = 8,
                 enable_fast_loops: bool = True,
                 trace: bool = False) -> None:
        """
        Args:
            device: target device model.
            fast_loop_threshold: minimum iteration count before a loop is
                eligible for the bulk fast path (tiny loops are cheaper to
                just run, and the fast path needs 2 warm-up iterations).
            enable_fast_loops: disable to force instruction-by-instruction
                execution (used by the equivalence tests).
            trace: record one log line per executed instruction into
                ``ExecutionResult.trace`` (bulk-applied iterations are
                summarized).  For debugging; materially slows hot loops
                when combined with ``enable_fast_loops=False``.
        """
        self._device = device
        self._fast_loop_threshold = max(3, fast_loop_threshold)
        self._enable_fast_loops = enable_fast_loops
        self._trace = trace
        #: Row-payload lowering cache (None = disabled).  Enabled by the
        #: execution engine's session: maps WRROW payload bytes to their
        #: (unpacked bits, ECC parity) — both pure functions of the
        #: payload — so repeated data fills skip the unpack and encode.
        self.payload_cache: Optional[
            Dict[bytes, Tuple[np.ndarray, np.ndarray]]] = None

    @property
    def fast_loop_threshold(self) -> int:
        """Minimum iteration count for the bulk loop fast path.

        Exposed so the engine's analytic fast path can mirror this
        interpreter's loop policy exactly (same slow/bulk split, same
        warm-up iterations) and stay cycle-identical to it.
        """
        return self._fast_loop_threshold

    @property
    def fast_loops_enabled(self) -> bool:
        return self._enable_fast_loops

    @property
    def trace_enabled(self) -> bool:
        return self._trace

    def enable_payload_cache(self) -> None:
        """Memoize WRROW payload lowering (engine sessions call this)."""
        if self.payload_cache is None:
            self.payload_cache = {}

    def lower_payload(self, data: bytes) -> Tuple[np.ndarray, np.ndarray]:
        """The cached (bits, parity) lowering of one WRROW payload."""
        cache = self.payload_cache
        if cache is None:
            bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
            return bits, encode_words(bits)
        lowered = cache.get(data)
        if lowered is None:
            bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
            lowered = (bits, encode_words(bits))
            cache[data] = lowered
        return lowered

    def run(self, program: Program) -> ExecutionResult:
        """Execute ``program``; returns the readback stream."""
        get_metrics().counter("bender.programs").inc()
        result = ExecutionResult(start_cycle=self._device.now)
        self._run_sequence(program.instructions, result)
        result.end_cycle = self._device.now
        return result

    # ------------------------------------------------------------------
    def _run_sequence(self, instructions, result: ExecutionResult) -> None:
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                self._run_loop(instruction, result)
            else:
                self._run_one(instruction, result)

    def _run_one(self, instruction, result: ExecutionResult) -> None:
        device = self._device
        if self._trace:
            result.trace.append(
                f"{device.now:>12} {isa.mnemonic(instruction)} "
                f"{self._operands(instruction)}")
        if isinstance(instruction, isa.Act):
            device.activate(instruction.channel, instruction.pseudo_channel,
                            instruction.bank, instruction.row)
        elif isinstance(instruction, isa.Pre):
            device.precharge(instruction.channel, instruction.pseudo_channel,
                             instruction.bank)
        elif isinstance(instruction, isa.PreA):
            device.precharge_all(instruction.channel,
                                 instruction.pseudo_channel)
        elif isinstance(instruction, isa.Rd):
            result.column_reads.append(
                device.read(instruction.channel, instruction.pseudo_channel,
                            instruction.bank, instruction.column))
        elif isinstance(instruction, isa.Wr):
            device.write(instruction.channel, instruction.pseudo_channel,
                         instruction.bank, instruction.column,
                         instruction.data)
        elif isinstance(instruction, isa.RdRow):
            result.row_reads.append(
                device.read_open_row(instruction.channel,
                                     instruction.pseudo_channel,
                                     instruction.bank))
        elif isinstance(instruction, isa.WrRow):
            if self.payload_cache is not None:
                bits, parity = self.lower_payload(instruction.data)
                device.write_open_row(instruction.channel,
                                      instruction.pseudo_channel,
                                      instruction.bank, bits, parity=parity)
            else:
                bits = np.unpackbits(
                    np.frombuffer(instruction.data, dtype=np.uint8))
                device.write_open_row(instruction.channel,
                                      instruction.pseudo_channel,
                                      instruction.bank, bits)
        elif isinstance(instruction, isa.Ref):
            device.refresh(instruction.channel, instruction.pseudo_channel)
        elif isinstance(instruction, isa.Wait):
            device.wait(instruction.cycles)
        else:
            raise ProgramError(f"unknown instruction: {instruction!r}")

    # ------------------------------------------------------------------
    def _run_loop(self, loop: isa.Loop, result: ExecutionResult) -> None:
        if not self._loop_is_fast_eligible(loop):
            get_metrics().counter("bender.loop_iterations.slow").inc(
                loop.count)
            for _ in range(loop.count):
                self._run_sequence(loop.body, result)
            return

        get_metrics().counter("bender.loop_iterations.fast").inc(loop.count)
        device = self._device
        # Warm-up: first iteration may pay cold timing (e.g. a pending
        # tRP); the second runs at steady state.
        self._run_sequence(loop.body, result)
        before_second = device.now
        self._run_sequence(loop.body, result)
        period = device.now - before_second

        # Bulk-apply all but the final iteration, then run that final
        # iteration instruction-by-instruction so the bank timing state
        # (e.g. the trailing tRC window) is exactly what the unrolled
        # loop would leave behind.
        remaining = loop.count - 3
        body_acts = [
            (instruction.channel, instruction.pseudo_channel,
             instruction.bank, instruction.row)
            for instruction in loop.body if isinstance(instruction, isa.Act)
        ]
        if self._trace:
            result.trace.append(
                f"{device.now:>12} LOOP x{remaining} (bulk, "
                f"{len(loop.body)} instrs/iter, {period} cycles/iter)")
        device.bulk_activations(body_acts, remaining, remaining * period)
        self._run_sequence(loop.body, result)

    @staticmethod
    def _operands(instruction) -> str:
        if isinstance(instruction, isa.Act):
            return (f"ch{instruction.channel} pc{instruction.pseudo_channel} "
                    f"ba{instruction.bank} row{instruction.row}")
        if isinstance(instruction, (isa.Pre, isa.RdRow)):
            return (f"ch{instruction.channel} pc{instruction.pseudo_channel} "
                    f"ba{instruction.bank}")
        if isinstance(instruction, (isa.Rd, isa.Wr)):
            return (f"ch{instruction.channel} pc{instruction.pseudo_channel} "
                    f"ba{instruction.bank} col{instruction.column}")
        if isinstance(instruction, isa.WrRow):
            return (f"ch{instruction.channel} pc{instruction.pseudo_channel} "
                    f"ba{instruction.bank} ({len(instruction.data)} bytes)")
        if isinstance(instruction, (isa.Ref, isa.PreA)):
            return f"ch{instruction.channel} pc{instruction.pseudo_channel}"
        if isinstance(instruction, isa.Wait):
            return f"{instruction.cycles} cycles"
        return ""

    def _loop_is_fast_eligible(self, loop: isa.Loop) -> bool:
        if not self._enable_fast_loops:
            return False
        if loop.count < self._fast_loop_threshold:
            return False
        return all(isinstance(instruction, isa.FAST_LOOP_TYPES)
                   for instruction in loop.body)

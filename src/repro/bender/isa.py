"""Instruction set of the simulated DRAM Bender.

Programs are trees: a flat instruction sequence where one node type,
:class:`Loop`, carries a nested body.  Structured loops (rather than
labels and jumps) mirror how DRAM Bender programs are written in practice
and make the interpreter's hammering fast path a simple pattern match.

``WrRow``/``RdRow`` are the batched whole-row transfers the real
infrastructure performs as pipelined bursts of column commands; they exist
so a Python-level program is not 32x slower than its FPGA counterpart
while keeping identical DRAM-state semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class Act:
    """Activate (open) a row."""

    channel: int
    pseudo_channel: int
    bank: int
    row: int


@dataclass(frozen=True)
class Pre:
    """Precharge (close) a bank."""

    channel: int
    pseudo_channel: int
    bank: int


@dataclass(frozen=True)
class PreA:
    """Precharge every bank of a pseudo channel."""

    channel: int
    pseudo_channel: int


@dataclass(frozen=True)
class Rd:
    """Read one column of the open row into the readback stream."""

    channel: int
    pseudo_channel: int
    bank: int
    column: int


@dataclass(frozen=True)
class Wr:
    """Write one column of the open row."""

    channel: int
    pseudo_channel: int
    bank: int
    column: int
    data: bytes


@dataclass(frozen=True)
class RdRow:
    """Batched read of the entire open row into the readback stream."""

    channel: int
    pseudo_channel: int
    bank: int


@dataclass(frozen=True)
class WrRow:
    """Batched write of the entire open row.

    ``data`` holds the full row (row_bytes long).
    """

    channel: int
    pseudo_channel: int
    bank: int
    data: bytes


@dataclass(frozen=True)
class Ref:
    """Periodic refresh command to a pseudo channel."""

    channel: int
    pseudo_channel: int


@dataclass(frozen=True)
class Wait:
    """Idle the command bus for a number of interface cycles."""

    cycles: int


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` ``count`` times."""

    count: int
    body: Tuple["Instruction", ...]


Instruction = Union[Act, Pre, PreA, Rd, Wr, RdRow, WrRow, Ref, Wait, Loop]

#: Instruction types eligible for the interpreter's bulk fast path: pure
#: command traffic with no data movement, no refresh, and no nesting.
FAST_LOOP_TYPES = (Act, Pre, PreA, Wait)


def mnemonic(instruction: Instruction) -> str:
    """Assembly mnemonic of one instruction."""
    return {
        Act: "ACT",
        Pre: "PRE",
        PreA: "PREA",
        Rd: "RD",
        Wr: "WR",
        RdRow: "RDROW",
        WrRow: "WRROW",
        Ref: "REF",
        Wait: "WAIT",
        Loop: "LOOP",
    }[type(instruction)]


def instruction_count(instructions: Tuple[Instruction, ...]) -> int:
    """Total dynamic instruction count, expanding loops."""
    total = 0
    for instruction in instructions:
        if isinstance(instruction, Loop):
            total += instruction.count * instruction_count(instruction.body)
        else:
            total += 1
    return total

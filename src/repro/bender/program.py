"""Test-program container and builder.

The builder is the primary authoring API::

    builder = ProgramBuilder()
    builder.act(0, 0, 0, row=41)
    builder.wr_row(0, 0, 0, pattern_bytes)
    builder.pre(0, 0, 0)
    with builder.loop(256 * 1024):
        builder.act(0, 0, 0, row=40)
        builder.pre(0, 0, 0)
        builder.act(0, 0, 0, row=42)
        builder.pre(0, 0, 0)
    program = builder.build()

Loops may nest; ``build()`` raises on unbalanced nesting.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.bender import isa
from repro.errors import ProgramError


@dataclass(frozen=True)
class Program:
    """An immutable DRAM Bender test program."""

    instructions: Tuple[isa.Instruction, ...]

    def dynamic_length(self) -> int:
        """Commands executed when run (loops expanded)."""
        return isa.instruction_count(self.instructions)

    def static_length(self) -> int:
        """Instruction slots occupied (loops counted once)."""
        def count(body: Tuple[isa.Instruction, ...]) -> int:
            total = 0
            for instruction in body:
                total += 1
                if isinstance(instruction, isa.Loop):
                    total += count(instruction.body)
            return total
        return count(self.instructions)


class ProgramBuilder:
    """Incrementally constructs a :class:`Program`."""

    def __init__(self) -> None:
        self._stack: List[List[isa.Instruction]] = [[]]
        self._loop_counts: List[int] = []

    # -- emission helpers ------------------------------------------------
    def _emit(self, instruction: isa.Instruction) -> None:
        self._stack[-1].append(instruction)

    def act(self, channel: int, pseudo_channel: int, bank: int,
            row: int) -> "ProgramBuilder":
        self._emit(isa.Act(channel, pseudo_channel, bank, row))
        return self

    def pre(self, channel: int, pseudo_channel: int,
            bank: int) -> "ProgramBuilder":
        self._emit(isa.Pre(channel, pseudo_channel, bank))
        return self

    def pre_all(self, channel: int, pseudo_channel: int) -> "ProgramBuilder":
        self._emit(isa.PreA(channel, pseudo_channel))
        return self

    def rd(self, channel: int, pseudo_channel: int, bank: int,
           column: int) -> "ProgramBuilder":
        self._emit(isa.Rd(channel, pseudo_channel, bank, column))
        return self

    def wr(self, channel: int, pseudo_channel: int, bank: int, column: int,
           data: bytes) -> "ProgramBuilder":
        self._emit(isa.Wr(channel, pseudo_channel, bank, column, bytes(data)))
        return self

    def rd_row(self, channel: int, pseudo_channel: int,
               bank: int) -> "ProgramBuilder":
        self._emit(isa.RdRow(channel, pseudo_channel, bank))
        return self

    def wr_row(self, channel: int, pseudo_channel: int, bank: int,
               data: bytes) -> "ProgramBuilder":
        self._emit(isa.WrRow(channel, pseudo_channel, bank, bytes(data)))
        return self

    def ref(self, channel: int, pseudo_channel: int) -> "ProgramBuilder":
        self._emit(isa.Ref(channel, pseudo_channel))
        return self

    def wait(self, cycles: int) -> "ProgramBuilder":
        if cycles < 0:
            raise ProgramError(f"WAIT cycles must be >= 0, got {cycles}")
        self._emit(isa.Wait(cycles))
        return self

    def wait_time(self, seconds: float, frequency_hz: float) -> "ProgramBuilder":
        """WAIT for a wall-clock duration at the interface frequency."""
        if seconds < 0:
            raise ProgramError(f"wait time must be >= 0, got {seconds}")
        self._emit(isa.Wait(int(round(seconds * frequency_hz))))
        return self

    # -- structured loops --------------------------------------------------
    @contextmanager
    def loop(self, count: int) -> Iterator[None]:
        """Repeat the instructions emitted inside the block ``count`` times."""
        if count < 0:
            raise ProgramError(f"loop count must be >= 0, got {count}")
        self._stack.append([])
        self._loop_counts.append(count)
        try:
            yield
        finally:
            body = self._stack.pop()
            loop_count = self._loop_counts.pop()
            self._emit(isa.Loop(loop_count, tuple(body)))

    # -- finalization -------------------------------------------------------
    def build(self, verify: bool = True) -> Program:
        """Finalize the program.

        With ``verify`` (the default) the instruction stream passes the
        timing-free protocol check from :mod:`repro.verify.program`
        (bank open/close discipline: no ACT on an open bank, no RD/WR
        against a closed row, no REF with a bank open); a violation
        raises :class:`~repro.errors.VerificationError`.  Timing-aware
        verification is a separate, explicit step
        (:func:`repro.verify.verify_program`) because it needs context —
        timing parameters, declared hammer counts — the builder does
        not have.
        """
        if len(self._stack) != 1:
            raise ProgramError(
                f"unbalanced loop nesting: {len(self._stack) - 1} loop(s) "
                "still open")
        program = Program(tuple(self._stack[0]))
        if verify:
            # Imported lazily: repro.verify.program imports this module.
            from repro.verify.program import verify_protocol

            report = verify_protocol(program)
            if report.violations:
                from repro.errors import VerificationError

                raise VerificationError(
                    "program violates DRAM protocol: "
                    + "; ".join(diagnostic.render()
                                for diagnostic in report.violations[:3]),
                    diagnostics=report.violations)
        return program

"""Thermal plant and PID temperature controller.

The paper's setup (Fig. 2) clamps the HBM2 chip to a target temperature —
85 degC for all headline experiments — using a heating pad and a cooling
fan driven by an Arduino MEGA running a closed-loop PID controller.  The
characterization results depend on temperature (both RowHammer thresholds
and retention times are temperature sensitive), so we model the loop
rather than teleporting the chip to the target:

* :class:`ThermalPlant` — first-order thermal model of the chip + pad +
  fan assembly: the chip relaxes toward ambient and is pushed by heater
  power and pulled by fan airflow.
* :class:`PidController` — discrete PID with anti-windup producing one
  actuation value in [-1, 1]: positive drives the heater, negative the fan.
* :class:`TemperatureController` — the Arduino: steps the loop until the
  plant settles at the target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs import get_metrics


@dataclass
class ThermalPlant:
    """First-order thermal model of the chip under pad and fan.

    ``dT/dt = (ambient - T) / tau + heater * heater_gain - fan * fan_gain``

    Attributes:
        temperature_c: current chip temperature.
        ambient_c: lab ambient temperature.
        tau_s: passive relaxation time constant.
        heater_gain: degC/s at full heater duty.
        fan_gain: degC/s at full fan duty.
    """

    temperature_c: float = 35.0
    ambient_c: float = 25.0
    tau_s: float = 60.0
    heater_gain: float = 2.0
    fan_gain: float = 1.5

    def __post_init__(self) -> None:
        if self.tau_s <= 0:
            raise ConfigurationError("tau_s must be positive")
        if self.heater_gain <= 0 or self.fan_gain <= 0:
            raise ConfigurationError("actuator gains must be positive")

    def step(self, heater_duty: float, fan_duty: float, dt_s: float) -> float:
        """Advance the plant by ``dt_s`` seconds; returns the temperature."""
        if not 0.0 <= heater_duty <= 1.0:
            raise ConfigurationError(
                f"heater duty must be in [0, 1], got {heater_duty}")
        if not 0.0 <= fan_duty <= 1.0:
            raise ConfigurationError(
                f"fan duty must be in [0, 1], got {fan_duty}")
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        drift = (self.ambient_c - self.temperature_c) / self.tau_s
        forced = heater_duty * self.heater_gain - fan_duty * self.fan_gain
        self.temperature_c += (drift + forced) * dt_s
        return self.temperature_c


class PidController:
    """Discrete PID controller with output clamping and anti-windup."""

    def __init__(self, kp: float = 0.35, ki: float = 0.02,
                 kd: float = 0.1, output_limit: float = 1.0) -> None:
        if output_limit <= 0:
            raise ConfigurationError("output_limit must be positive")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.output_limit = output_limit
        self._integral = 0.0
        self._previous_error: float = 0.0
        self._primed = False

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = 0.0
        self._primed = False

    def update(self, setpoint: float, measurement: float, dt_s: float) -> float:
        """One control step; returns actuation in [-limit, +limit]."""
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        error = setpoint - measurement
        derivative = 0.0
        if self._primed:
            derivative = (error - self._previous_error) / dt_s
        self._previous_error = error
        self._primed = True

        candidate_integral = self._integral + error * dt_s
        output = (self.kp * error + self.ki * candidate_integral +
                  self.kd * derivative)
        if abs(output) <= self.output_limit:
            # Only integrate while unsaturated (anti-windup).
            self._integral = candidate_integral
            return output
        return max(-self.output_limit, min(self.output_limit, output))


class TemperatureController:
    """The Arduino MEGA of the testing setup: PID loop + settling logic."""

    def __init__(self, plant: ThermalPlant,
                 controller: PidController = None,
                 step_s: float = 1.0,
                 tolerance_c: float = 0.25,
                 settle_steps: int = 10) -> None:
        if step_s <= 0:
            raise ConfigurationError("step_s must be positive")
        if tolerance_c <= 0:
            raise ConfigurationError("tolerance_c must be positive")
        self.plant = plant
        self.controller = controller or PidController()
        self.step_s = step_s
        self.tolerance_c = tolerance_c
        self.settle_steps = settle_steps
        self.target_c: float = plant.temperature_c

    def set_target(self, target_c: float) -> None:
        self.target_c = target_c
        self.controller.reset()

    def inject_disturbance(self, delta_c: float) -> float:
        """Shift the plant by ``delta_c`` degC; returns the new temperature.

        Models an exogenous thermal excursion (lab HVAC cycling, a pad
        adhesion hiccup) hitting the rig between control periods — the
        fault-injection entry point for :class:`~repro.faults.thermal.
        ThermalGuard`.
        """
        self.plant.temperature_c += delta_c
        return self.plant.temperature_c

    def in_envelope(self, envelope_c: float) -> bool:
        """Whether the plant currently holds the target within ±envelope."""
        return abs(self.plant.temperature_c - self.target_c) <= envelope_c

    def resettle(self, max_steps: int = 100_000) -> int:
        """Re-run the loop back to the current target; returns steps.

        Resets the PID state first (integral windup from the excursion
        would otherwise fight the recovery).
        """
        self.controller.reset()
        return self.settle(max_steps)

    def step(self) -> float:
        """One control period; returns the new plant temperature."""
        actuation = self.controller.update(
            self.target_c, self.plant.temperature_c, self.step_s)
        heater = max(0.0, actuation)
        fan = max(0.0, -actuation)
        return self.plant.step(heater, fan, self.step_s)

    def settle(self, max_steps: int = 100_000) -> int:
        """Run the loop until the plant holds the target; returns steps.

        Raises :class:`~repro.errors.ConfigurationError` if the plant
        cannot reach the target within ``max_steps`` control periods
        (e.g. a target beyond the actuators' authority).
        """
        consecutive = 0
        for step_index in range(max_steps):
            temperature = self.step()
            if abs(temperature - self.target_c) <= self.tolerance_c:
                consecutive += 1
                if consecutive >= self.settle_steps:
                    get_metrics().histogram("thermal.settle_steps").observe(
                        step_index + 1)
                    return step_index + 1
            else:
                consecutive = 0
        raise ConfigurationError(
            f"temperature did not settle at {self.target_c} degC within "
            f"{max_steps} steps (reached {self.plant.temperature_c:.2f})")

"""Host-to-board transport: the PCIe link of the testing setup.

The paper's host machine uploads test programs to the FPGA and streams
read data back over PCIe (Fig. 2, item 5).  :class:`PcieTransport`
models that hop: programs are serialized to the assembly wire format,
"sent" across a bandwidth-limited link, deserialized board-side, and
executed; readback data pays the return trip.  The link accounts
transfer *host time*, which is separate from (and overlaps with) DRAM
time — exactly why the real infrastructure batches row reads.

The transport is optional — `HostInterface` drives the interpreter
directly by default — but running through it buys two things:

* the assembler becomes load-bearing (every program round-trips through
  its text format, so the wire encoding is exercised by any test that
  uses the transport), and
* campaigns can report how much host-side I/O a methodology costs, a
  real bottleneck when characterizing thousands of rows.

Resilience: real links flake.  :class:`ResilientTransport` wraps any
transport with bounded retries under exponential backoff (with
deterministic jitter, so a retried campaign is reproducible), and
verifies every readback against the board-side digest — a corrupted or
truncated readback is re-requested from the board's buffer *without
re-executing the program* (re-execution would re-hammer the rows and
corrupt the measurement).  Fault injection for all of this lives in
:mod:`repro.faults.inject`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.bender.assembler import assemble, disassemble
from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.bender.program import Program
from repro.dram.device import HBM2Device
from repro.errors import AssemblyError, ConfigurationError, TransportFault
from repro.obs import get_metrics
from repro.rng import uniform_hash01

__all__ = [
    "LinkStatistics",
    "PcieTransport",
    "ResilientTransport",
    "execution_digest",
]


def execution_digest(result: ExecutionResult) -> str:
    """Stable digest of a result's readback payload.

    The board computes this before the return trip and the host after
    it, so a downlink corruption (or truncation) is detectable without
    shipping the data twice — the CRC handshake of real DMA engines.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(len(result.column_reads).to_bytes(4, "little"))
    for data in result.column_reads:
        hasher.update(len(data).to_bytes(4, "little"))
        hasher.update(bytes(data))
    hasher.update(len(result.row_reads).to_bytes(4, "little"))
    for bits in result.row_reads:
        hasher.update(int(bits.size).to_bytes(4, "little"))
        hasher.update(bits.tobytes())
    return hasher.hexdigest()


@dataclass
class LinkStatistics:
    """Byte and time accounting for one PCIe link."""

    programs_sent: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    transfer_time_s: float = 0.0
    #: Readback re-requests served from the board-side buffer.
    rerequests: int = 0

    def merge_transfer(self, up: int, down: int,
                       bandwidth_bytes_per_s: float) -> None:
        self.programs_sent += 1
        self.bytes_up += up
        self.bytes_down += down
        self.transfer_time_s += (up + down) / bandwidth_bytes_per_s

    def merge_rerequest(self, down: int,
                        bandwidth_bytes_per_s: float) -> None:
        self.rerequests += 1
        self.bytes_down += down
        self.transfer_time_s += down / bandwidth_bytes_per_s


class PcieTransport:
    """Executes programs through a serialized, bandwidth-limited hop."""

    #: Per-transfer protocol overhead (descriptors, doorbells), bytes.
    TRANSFER_OVERHEAD_BYTES = 128

    def __init__(self, device: HBM2Device,
                 bandwidth_bytes_per_s: float = 3.0e9,
                 interpreter: Optional[Interpreter] = None) -> None:
        """
        Args:
            device: the board-side device model.
            bandwidth_bytes_per_s: usable link bandwidth (default ~PCIe
                gen3 x4 after protocol overhead).
            interpreter: board-side executor (default: a fresh one).
        """
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self._device = device
        self._bandwidth = bandwidth_bytes_per_s
        self._interpreter = interpreter or Interpreter(device)
        self.statistics = LinkStatistics()
        #: Physical transfers attempted (including failed and re-requested
        #: ones).  Fault plans key link faults on this, so a *retried*
        #: transfer is a fresh draw — exactly like a real wire, where a
        #: resend is a new shot at the same noisy channel.
        self._transfer_counter = 0
        #: Board-side readback buffer + digest of the last execution;
        #: lets a resilient caller re-request a mangled readback
        #: without re-running the program.
        self._buffered: Optional[ExecutionResult] = None
        self.last_digest: Optional[str] = None

    # ------------------------------------------------------------------
    # Stage hooks — overridden by the fault-injecting transport.
    # ------------------------------------------------------------------
    def _transmit(self, wire_text: str, transfer_index: int) -> str:
        """Uplink hop: returns the wire text as received board-side."""
        return wire_text

    def _deliver(self, result: ExecutionResult,
                 transfer_index: int) -> ExecutionResult:
        """Downlink hop: returns the readback as received host-side."""
        return result

    # ------------------------------------------------------------------
    def run(self, program: Program) -> ExecutionResult:
        """Serialize, ship, deserialize, execute, and bill the readback.

        Uplink integrity is checked *before* execution: wire text that
        no longer assembles raises a retryable
        :class:`~repro.errors.TransportFault` (nothing ran, so a resend
        is safe), while text that assembles to a *different* program is
        an assembler bug worth failing loudly on.  The executed result
        is buffered board-side with its digest so
        :meth:`rerequest_readback` can re-serve it.
        """
        transfer_index = self._transfer_counter
        self._transfer_counter += 1
        wire_text = disassemble(program)
        received_text = self._transmit(wire_text, transfer_index)
        try:
            board_side_program = assemble(received_text)
        except AssemblyError as error:
            raise TransportFault(
                f"upload corrupted in flight: {error}") from error
        if board_side_program != program:
            raise ConfigurationError(
                "wire format corrupted the program (assembler bug)")

        result = self._interpreter.run(board_side_program)
        self._buffered = result
        self.last_digest = execution_digest(result)
        delivered = self._deliver(result, transfer_index)

        up = len(wire_text.encode()) + self.TRANSFER_OVERHEAD_BYTES
        down = self._readback_bytes(delivered)
        self.statistics.merge_transfer(up, down, self._bandwidth)
        return delivered

    def rerequest_readback(self) -> ExecutionResult:
        """Re-serve the buffered readback of the last execution.

        Pays the downlink again (statistics) but does not touch the
        device — the recovery path for a corrupted or truncated
        readback, where re-running the program would re-hammer rows.
        """
        if self._buffered is None:
            raise TransportFault("no readback buffered to re-request")
        transfer_index = self._transfer_counter
        self._transfer_counter += 1
        delivered = self._deliver(self._buffered, transfer_index)
        self.statistics.merge_rerequest(self._readback_bytes(delivered),
                                        self._bandwidth)
        return delivered

    def _readback_bytes(self, result: ExecutionResult) -> int:
        down = sum(len(data) for data in result.column_reads)
        # Round up: a row whose bit count is not byte-aligned still
        # occupies whole bytes on the wire.
        down += sum((bits.size + 7) // 8 for bits in result.row_reads)
        return down + self.TRANSFER_OVERHEAD_BYTES


class ResilientTransport:
    """Retry/verify wrapper making any transport safe to campaign over.

    * **Uplink faults** (:class:`~repro.errors.TransportFault` from
      ``run``) are retried up to ``max_retries`` times under
      exponential backoff with deterministic jitter — nothing executed,
      so a resend cannot perturb the experiment.
    * **Downlink faults** are caught by comparing the delivered
      readback's digest against the transport's board-side digest; a
      mismatch triggers a readback re-request from the board buffer
      (never a re-execution).

    All events flow through :mod:`repro.obs`: ``transport.retries``,
    ``transport.backoff_s``, ``transport.rereads``,
    ``transport.faults``.
    """

    def __init__(self, transport: PcieTransport, *, max_retries: int = 4,
                 backoff_base_s: float = 0.001, seed: int = 0,
                 sleep: Optional[Callable[[float], None]] = None) -> None:
        """
        Args:
            transport: the wrapped link (typically a
                :class:`~repro.faults.inject.FaultyTransport`).
            max_retries: extra attempts per stage (send and readback
                verify each get their own budget).
            backoff_base_s: first-retry backoff; doubles per attempt.
            seed: keys the deterministic backoff jitter.
            sleep: override for :func:`time.sleep` (tests pass a spy).
        """
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if backoff_base_s < 0:
            raise ConfigurationError("backoff_base_s must be >= 0")
        self._transport = transport
        self._max_retries = max_retries
        self._backoff_base_s = backoff_base_s
        self._seed = seed
        self._sleep = sleep or time.sleep
        self._operations = 0

    @property
    def statistics(self) -> LinkStatistics:
        return self._transport.statistics

    @property
    def transport(self) -> PcieTransport:
        """The wrapped transport (for statistics or buffer inspection)."""
        return self._transport

    # ------------------------------------------------------------------
    def run(self, program: Program) -> ExecutionResult:
        metrics = get_metrics()
        operation = self._operations
        self._operations += 1
        last_fault: Optional[TransportFault] = None
        for attempt in range(1 + self._max_retries):
            if attempt:
                metrics.counter("transport.retries").inc()
                self._backoff(operation, attempt)
            try:
                result = self._transport.run(program)
            except TransportFault as fault:
                metrics.counter("transport.faults").inc()
                last_fault = fault
                continue
            return self._verified(result, metrics)
        raise TransportFault(
            f"link failed after {1 + self._max_retries} attempts: "
            f"{last_fault}") from last_fault

    def _verified(self, result: ExecutionResult,
                  metrics) -> ExecutionResult:
        """Digest-check the readback; re-request from the buffer until
        it arrives clean or the retry budget is exhausted."""
        expected = self._transport.last_digest
        if expected is None:
            return result
        for attempt in range(1 + self._max_retries):
            if execution_digest(result) == expected:
                return result
            metrics.counter("transport.faults").inc()
            if attempt == self._max_retries:
                break
            metrics.counter("transport.rereads").inc()
            result = self._transport.rerequest_readback()
        raise TransportFault(
            f"readback failed digest verification after "
            f"{1 + self._max_retries} attempts")

    def _backoff(self, operation: int, attempt: int) -> None:
        if self._backoff_base_s <= 0:
            return
        jitter = uniform_hash01(self._seed,
                                ("transport.backoff", operation, attempt))
        delay = self._backoff_base_s * (2 ** (attempt - 1)) * (0.5 + jitter)
        get_metrics().histogram("transport.backoff_s").observe(delay)
        self._sleep(delay)

"""Host-to-board transport: the PCIe link of the testing setup.

The paper's host machine uploads test programs to the FPGA and streams
read data back over PCIe (Fig. 2, item 5).  :class:`PcieTransport`
models that hop: programs are serialized to the assembly wire format,
"sent" across a bandwidth-limited link, deserialized board-side, and
executed; readback data pays the return trip.  The link accounts
transfer *host time*, which is separate from (and overlaps with) DRAM
time — exactly why the real infrastructure batches row reads.

The transport is optional — `HostInterface` drives the interpreter
directly by default — but running through it buys two things:

* the assembler becomes load-bearing (every program round-trips through
  its text format, so the wire encoding is exercised by any test that
  uses the transport), and
* campaigns can report how much host-side I/O a methodology costs, a
  real bottleneck when characterizing thousands of rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.assembler import assemble, disassemble
from repro.bender.interpreter import ExecutionResult, Interpreter
from repro.bender.program import Program
from repro.dram.device import HBM2Device
from repro.errors import ConfigurationError


@dataclass
class LinkStatistics:
    """Byte and time accounting for one PCIe link."""

    programs_sent: int = 0
    bytes_up: int = 0
    bytes_down: int = 0
    transfer_time_s: float = 0.0

    def merge_transfer(self, up: int, down: int,
                       bandwidth_bytes_per_s: float) -> None:
        self.programs_sent += 1
        self.bytes_up += up
        self.bytes_down += down
        self.transfer_time_s += (up + down) / bandwidth_bytes_per_s


class PcieTransport:
    """Executes programs through a serialized, bandwidth-limited hop."""

    #: Per-transfer protocol overhead (descriptors, doorbells), bytes.
    TRANSFER_OVERHEAD_BYTES = 128

    def __init__(self, device: HBM2Device,
                 bandwidth_bytes_per_s: float = 3.0e9,
                 interpreter: Interpreter = None) -> None:
        """
        Args:
            device: the board-side device model.
            bandwidth_bytes_per_s: usable link bandwidth (default ~PCIe
                gen3 x4 after protocol overhead).
        """
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self._device = device
        self._bandwidth = bandwidth_bytes_per_s
        self._interpreter = interpreter or Interpreter(device)
        self.statistics = LinkStatistics()

    def run(self, program: Program) -> ExecutionResult:
        """Serialize, ship, deserialize, execute, and bill the readback.

        The deserialized program is checked equal to the submitted one —
        a wire-format corruption is an infrastructure bug worth failing
        loudly on.
        """
        wire_text = disassemble(program)
        board_side_program = assemble(wire_text)
        if board_side_program != program:
            raise ConfigurationError(
                "wire format corrupted the program (assembler bug)")

        result = self._interpreter.run(board_side_program)

        up = len(wire_text.encode()) + self.TRANSFER_OVERHEAD_BYTES
        down = sum(len(data) for data in result.column_reads)
        down += sum(bits.size // 8 for bits in result.row_reads)
        down += self.TRANSFER_OVERHEAD_BYTES
        self.statistics.merge_transfer(up, down, self._bandwidth)
        return result

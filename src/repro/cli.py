"""Command-line interface: run the paper's experiments from a shell.

Exposed as ``python -m repro`` (or the ``repro`` console script when
installed).  Each subcommand wraps one methodology entry point::

    python -m repro ber --channel 7 --row 5000
    python -m repro hcfirst --channel 0 --row 5000 --pattern Rowstripe0
    python -m repro sweep --channels 0 7 --rows-per-region 8 -o out.json
    python -m repro fleet run --devices 100 --jobs 4 -o population.json
    python -m repro utrr --row 6000 --iterations 100
    python -m repro devices list
    python -m repro devices show ddr4
    python -m repro mapping
    python -m repro subarrays --start 800 --end 870
    python -m repro report out.json
    python -m repro obs summarize trace.jsonl --metrics metrics.json
    python -m repro obs tail events.jsonl --follow
    python -m repro obs export --format prometheus --metrics metrics.json

All subcommands share the station options ``--seed`` (chip specimen),
``--profile`` (device family: ``hbm2``/``ddr4``/``ddr5``),
``--temperature`` (degC) and ``--voltage`` (wordline rail), plus the
observability options ``--trace PATH`` (span trace as JSON Lines),
``--metrics PATH`` (metric snapshot as JSON) and ``--events PATH``
(live campaign event log as JSONL); ``repro obs summarize`` renders
trace/metrics into a profile table, ``repro obs tail`` replays or
follows an event log, and ``repro obs export`` converts artifacts to
Prometheus / flamegraph formats.  The campaign commands (``sweep``,
``fleet run``) additionally take ``--progress`` for a live status line
driven by the event stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.figures import (
    fig3_ber_distributions,
    fig4_hcfirst_distributions,
    render_box_table,
)
from repro.analysis.report import experiment_report
from repro.analysis.tables import format_headline_table, headline_numbers
from repro.bender.board import BenderBoard, BoardSpec
from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.hcfirst import HcFirstSearch
from repro.engine import EngineSession
from repro.core.mapping_re import reverse_engineer_mapping
from repro.core.parallel import ParallelSweepRunner
from repro.core.patterns import (
    STANDARD_PATTERNS,
    pattern_by_name,
)
from repro.core.results import CharacterizationDataset
from repro.core.subarray_re import SubarrayReverseEngineer
from repro.core.sweeps import SweepConfig
from repro.core.utrr import UTrrExperiment
from repro.dram.address import DramAddress
from repro.errors import ReproError
from repro.faults import FaultSpec
from repro.obs import ObsSession
from repro.obs.summarize import summarize_trace


def _add_station_options(parser: argparse.ArgumentParser) -> None:
    from repro.dram.profiles import list_profiles
    parser.add_argument("--seed", type=int, default=0,
                        help="chip specimen seed (default: 0)")
    parser.add_argument("--profile", choices=list_profiles(), default=None,
                        help="device-family profile to build the station "
                             "as (default: the paper's HBM2 stack; see "
                             "'repro devices list')")
    parser.add_argument("--temperature", type=float, default=85.0,
                        help="chip temperature in degC (default: 85)")
    parser.add_argument("--voltage", type=float, default=None,
                        help="wordline voltage in V (default: nominal)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="deterministic fault plan: 'key=value,...' "
                             "(e.g. 'seed=1,link_corrupt=0.01,"
                             "shard_error=0.05') or @file / a JSON file "
                             "path; see 'repro faults demo'")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record a span trace to PATH (JSON Lines); "
                             "inspect with 'repro obs summarize PATH'")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write a metric snapshot (commands by type, "
                             "hammers, bitflips, ...) to PATH as JSON")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="record the live campaign event log to PATH "
                             "(JSONL); watch it from another terminal "
                             "with 'repro obs tail PATH --follow'")


def _fault_spec(args: argparse.Namespace) -> Optional[FaultSpec]:
    raw = getattr(args, "faults", None)
    return FaultSpec.parse(raw) if raw else None


def _make_spec(args: argparse.Namespace) -> BoardSpec:
    return BoardSpec(seed=args.seed, temperature_c=args.temperature,
                     ecc_enabled=False, wordline_voltage_v=args.voltage,
                     device_profile=getattr(args, "profile", None),
                     faults=_fault_spec(args))


def _session(args: argparse.Namespace,
             experiment: Optional[ExperimentConfig] = None) -> EngineSession:
    """The engine session every subcommand builds its station through."""
    return EngineSession(spec=_make_spec(args), experiment=experiment)


def _make_station(args: argparse.Namespace) -> BenderBoard:
    """An engine-managed station with no interference controls applied
    (the mapping/subarray/U-TRR tooling never applied them)."""
    return _session(args).board


def _address(args: argparse.Namespace) -> DramAddress:
    return DramAddress(args.channel, args.pseudo_channel, args.bank,
                       args.row)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_ber(args: argparse.Namespace) -> int:
    config = ExperimentConfig(ber_hammer_count=args.hammers,
                              profile=args.profile)
    board = _session(args, config).station()
    experiment = BerExperiment(board.host, board.device.mapper, config)
    victim = _address(args)
    patterns = ([pattern_by_name(args.pattern)] if args.pattern
                else list(STANDARD_PATTERNS))
    for pattern in patterns:
        record = experiment.run_row(victim, pattern)
        print(f"{victim}  {pattern.name:<11} flips={record.flips:<6} "
              f"BER={record.ber:.4%}  "
              f"(hammer phase {record.duration_s * 1e3:.1f} ms)")
    return 0


def cmd_hcfirst(args: argparse.Namespace) -> int:
    config = ExperimentConfig(hcfirst_max_hammers=args.max_hammers,
                              profile=args.profile)
    board = _session(args, config).station()
    search = HcFirstSearch(board.host, board.device.mapper, config)
    victim = _address(args)
    patterns = ([pattern_by_name(args.pattern)] if args.pattern
                else list(STANDARD_PATTERNS))
    for pattern in patterns:
        outcome = search.search(victim, pattern)
        result = ("censored (no flip at "
                  f"{outcome.max_hammers:,})" if outcome.censored
                  else f"{outcome.hc_first:,}")
        print(f"{victim}  {pattern.name:<11} HC_first={result}  "
              f"({outcome.probes} probes)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    channels = args.channels
    if channels is None:
        # Default to every channel the station's family has.
        if args.profile is not None:
            from repro.dram.profiles import get_profile
            channels = range(get_profile(args.profile).geometry.channels)
        else:
            channels = range(8)
    overrides = dict(
        channels=tuple(channels),
        rows_per_region=args.rows_per_region,
        hcfirst_rows_per_region=args.hcfirst_rows,
        repetitions=args.repetitions,
        faults=_fault_spec(args),
    )
    if args.profile is not None:
        overrides["experiment"] = ExperimentConfig(profile=args.profile)
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    config = SweepConfig.from_env(**overrides)
    runner = ParallelSweepRunner(_make_spec(args), config,
                                 max_retries=args.max_retries,
                                 retry_backoff_s=args.retry_backoff,
                                 campaign_dir=args.resume,
                                 degrade=args.degrade)
    dataset = runner.run(progress=lambda message: print(f"  {message}",
                                                        file=sys.stderr))
    for error in runner.errors:
        print(f"warning: shard {error.index} "
              f"(ch{error.channel} pc{error.pseudo_channel} "
              f"ba{error.bank} region={error.region}) quarantined "
              f"[{error.fault_category}] after {error.attempts} attempts "
              f"(+{error.backoff_s:.3f}s backoff): "
              f"{error.error_type}: {error.message}", file=sys.stderr)
    coverage = runner.coverage
    if coverage is not None and not coverage["complete"]:
        shards, rows = coverage["shards"], coverage["rows"]
        print(f"warning: partial coverage — "
              f"{shards['completed']}/{shards['total']} shards, "
              f"{rows['completed']}/{rows['attempted']} rows "
              f"({shards['quarantined']} shard(s) quarantined)",
              file=sys.stderr)
    print(render_box_table(fig3_ber_distributions(dataset),
                           value_format="{:.5f}",
                           title="BER across rows (Fig. 3 axes)"))
    try:
        print()
        print(render_box_table(fig4_hcfirst_distributions(dataset),
                               value_format="{:.0f}",
                               title="HC_first across rows (Fig. 4 axes)"))
    except ReproError:
        pass
    print()
    print(format_headline_table(headline_numbers(dataset)))
    if args.output:
        dataset.to_json(args.output)
        print(f"\ndataset written to {args.output}", file=sys.stderr)
    if args.export_dir:
        from repro.analysis.export import export_all
        written = export_all(dataset, args.export_dir)
        print(f"figure CSVs written: "
              f"{', '.join(str(path) for path in written)}",
              file=sys.stderr)
    return 0


def cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.core.fleet import (
        FleetConfig,
        FleetRunner,
        default_fleet_sweep,
    )
    from repro.core.experiment import ExperimentConfig as _ExperimentConfig

    sweep = default_fleet_sweep(
        rows_per_region=args.rows_per_region,
        hcfirst_rows_per_region=args.hcfirst_rows,
        faults=_fault_spec(args),
        experiment=_ExperimentConfig(
            ber_hammer_count=args.hammers,
            hcfirst_max_hammers=args.max_hammers,
            profile=args.profile))
    config = FleetConfig(devices=args.devices, base_seed=args.seed,
                         jobs=args.jobs, max_retries=args.max_retries,
                         spec=_make_spec(args), sweep=sweep,
                         device_timeout_s=args.device_timeout,
                         profiles=tuple(args.profiles or ()))
    runner = FleetRunner(config, campaign_dir=args.resume,
                         degrade=args.degrade)
    progress = ((lambda message: print(f"  {message}", file=sys.stderr))
                if args.verbose else None)
    result = runner.run(progress=progress)
    for error in runner.errors:
        print(f"warning: device {error.index} (seed {error.seed}) "
              f"failed after {error.attempts} attempt(s): "
              f"{error.error_type}: {error.message}", file=sys.stderr)
    population = result.population
    print(f"fleet: {population['devices']}/{config.devices} device(s) "
          f"completed (seeds {config.base_seed}.."
          f"{config.base_seed + config.devices - 1}, jobs={config.jobs})")

    def show(title, summary, value_format):
        print(title)
        if summary is None:
            print("  (no uncensored measurements)")
            return
        cells = "  ".join(
            f"{label}={value_format.format(summary[label])}"
            for label in ("min", "p10", "p25", "p50", "p75", "p90",
                          "max", "mean"))
        print(f"  {cells}")

    show("population HC_first (per-device minimum):",
         population["hc_first_min"], "{:.0f}")
    show("population BER (per-device mean):",
         population["ber_mean"], "{:.6f}")
    print(f"bitflips total: {population['bitflips_total']}; "
          f"fully censored devices: "
          f"{population['fully_censored_devices']}")
    if args.output:
        result.to_json(args.output)
        print(f"population summary written to {args.output}",
              file=sys.stderr)
    if args.dataset:
        result.dataset.to_json(args.dataset)
        print(f"merged dataset written to {args.dataset}",
              file=sys.stderr)
    return 1 if runner.errors else 0


def cmd_devices_list(args: argparse.Namespace) -> int:
    from repro.dram.profiles import get_profile, list_profiles

    for name in list_profiles():
        profile = get_profile(name)
        print(f"{name:<8} {profile.family:<6} {profile.description}")
    return 0


def cmd_devices_show(args: argparse.Namespace) -> int:
    from repro.dram.profiles import get_profile

    profile = get_profile(args.name)
    geometry = profile.geometry
    timing = profile.timing
    trr = profile.trr
    print(f"profile: {profile.name} ({profile.family})")
    print(f"  {profile.description}")
    print(f"geometry: {geometry.channels} channel(s) x "
          f"{geometry.pseudo_channels} pseudo channel(s) x "
          f"{geometry.banks} bank(s) x {geometry.rows} row(s); "
          f"{geometry.columns} column(s) x {geometry.column_bytes} B "
          f"({geometry.row_bytes} B/row, "
          f"{geometry.stack_bytes // 2**20} MiB total)")
    print(f"timing: {timing.frequency_hz / 1e6:.0f} MHz; "
          f"tRCD={timing.t_rcd} tRAS={timing.t_ras} tRP={timing.t_rp} "
          f"tRRD={timing.t_rrd} tFAW={timing.t_faw} ns; "
          f"tREFI={timing.t_refi / 1e3:.2f} us "
          f"tREFW={timing.t_refw / 1e6:.0f} ms tRFC={timing.t_rfc} ns")
    sampler_details = {
        "last": "1-entry last-ACT table per bank",
        "counter": f"{trr.table_size}-entry activation-count table "
                   "per bank",
        "probabilistic": f"p={trr.sample_probability} per-ACT capture "
                         "per bank",
    }[trr.sampler]
    print(f"trr: {trr.sampler} sampler ({sampler_details}), "
          f"fires every {trr.refresh_period} REF(s), "
          f"radius {trr.refresh_radius}")
    print(f"mapper: control_bit={profile.mapper_control_bit:#x} "
          f"swizzle_mask={profile.mapper_swizzle_mask:#x}")
    print(f"identity: {profile.identity()}")
    return 0


def cmd_utrr(args: argparse.Namespace) -> int:
    board = _make_station(args)
    experiment = UTrrExperiment(board.host, board.device.mapper)
    result = experiment.run(_address(args), iterations=args.iterations)
    timeline = "".join("R" if flag else "." for flag in result.refreshed)
    print(f"retention onset: "
          f"{result.profile.retention_time_s * 1e3:.0f} ms")
    print(f"timeline: {timeline}")
    print(f"refresh iterations: {result.refresh_iterations}")
    if result.trr_detected:
        print(f"hidden TRR detected: victim refresh every "
              f"{result.inferred_period} REFs")
        return 0
    print("no periodic victim refresh observed")
    return 1


def cmd_mapping(args: argparse.Namespace) -> int:
    board = _make_station(args)
    mapper = reverse_engineer_mapping(board.host, channel=args.channel)
    print("discovered logical -> physical mapping (sample):")
    for row in range(args.sample_start, args.sample_start + 16):
        print(f"  {row:>6} -> {mapper.logical_to_physical(row)}")
    return 0


def cmd_subarrays(args: argparse.Namespace) -> int:
    board = _make_station(args)
    engineer = SubarrayReverseEngineer(board.host, board.device.mapper)
    result = engineer.scan(channel=args.channel, start=args.start,
                           end=args.end, stride=args.stride)
    for observation in result.observations:
        if observation.classification != "interior" or args.verbose:
            print(f"  row {observation.physical_row:>6}: "
                  f"below={observation.flips_below} "
                  f"above={observation.flips_above} "
                  f"[{observation.classification}]")
    print(f"subarray boundaries in [{args.start}, {args.end}): "
          f"{result.boundaries()}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    dataset = CharacterizationDataset.from_json(args.dataset)
    print(experiment_report(dataset, utrr_period=args.utrr_period,
                            title=f"Report for {args.dataset}"))
    return 0


def cmd_obs_summarize(args: argparse.Namespace) -> int:
    print(summarize_trace(args.trace, metrics_path=args.metrics,
                          top=args.top))
    return 0


def cmd_obs_tail(args: argparse.Namespace) -> int:
    from repro.obs.progress import tail_events

    tail_events(args.path, follow=args.follow,
                stale_after=args.stale_after)
    return 0


def cmd_obs_export(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.obs.export import collapsed_stacks, prometheus_text
    from repro.obs.trace import read_jsonl

    if args.format == "prometheus":
        if not args.metrics:
            raise ConfigurationError(
                "--format prometheus exports a metrics snapshot; "
                "pass one with --metrics PATH")
        snapshot = json.loads(Path(args.metrics).read_text())
        text = prometheus_text(snapshot)
    else:
        if not args.trace:
            raise ConfigurationError(
                "--format flamegraph exports a span trace; "
                "pass one with --trace PATH")
        text = collapsed_stacks(read_jsonl(args.trace))
        if text:
            text += "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"{args.format} export written to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _print_report(report, output_format: str) -> int:
    """Render a verification report; returns the 0/1/2 exit code."""
    if output_format == "json":
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return report.exit_code


def cmd_lint_program(args: argparse.Namespace) -> int:
    from repro.bender.assembler import assemble
    from repro.dram.timing import TimingParameters
    from repro.verify import (
        VerifyContext,
        count_activations,
        verify_program,
    )

    if args.program == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.program, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"error: cannot read program {args.program}: "
                  f"{error.strerror or error}", file=sys.stderr)
            return 2
    program = assemble(text)
    expected = None
    if args.expect_hammers is not None:
        # Every activated row must be activated exactly N times.
        expected = {key: args.expect_hammers
                    for key in count_activations(program)}
        if not expected:
            print("error: --expect-hammers given but the program "
                  "contains no ACT", file=sys.stderr)
            return 2
    context = VerifyContext(
        timing=TimingParameters(),
        expected_hammers=expected,
        assume_scheduler=not args.strict,
        allow_retention_decay=args.allow_retention_decay,
        assume_trr_escaped=args.assume_trr_escaped,
    )
    report = verify_program(program, context)
    if not args.summary:
        return _print_report(report, args.format)

    from repro.verify import EffectSummary, summarize_program

    outcome = summarize_program(program, context, report=report)
    summarized = isinstance(outcome, EffectSummary)
    if args.format == "json":
        import json

        print(json.dumps({"report": report.to_dict(),
                          "summary": outcome.to_dict() if summarized
                          else None,
                          "unsummarizable": None if summarized
                          else outcome.to_dict()},
                         indent=2))
    else:
        print(report.render())
        print(outcome.render())
    # An unsummarizable program is lint-degraded even when the
    # verifier itself is clean: the fast path will fall back on it.
    code = report.exit_code
    if not summarized and code < 1:
        code = 1
    return code


def cmd_lint_source(args: argparse.Namespace) -> int:
    from repro.verify import lint_source

    return _print_report(lint_source(args.paths or None), args.format)


def cmd_faults_demo(args: argparse.Namespace) -> int:
    """Run a tiny campaign under a fault plan, twice, and show that the
    fault schedule is deterministic and the resilience layer recovers a
    byte-identical dataset."""
    from repro.core.patterns import ROWSTRIPE0
    from repro.dram.geometry import HBM2Geometry
    from repro.faults import FaultPlan
    from repro.obs import MetricsRegistry, use_metrics

    spec_text = args.faults or ("seed=7,link_corrupt=0.01,link_stall=0.02,"
                                "shard_error=0.1,thermal_drift=0.1")
    fault_spec = FaultSpec.parse(spec_text)
    plan = FaultPlan(fault_spec)
    print(f"fault plan: {fault_spec.describe()}")

    geometry = HBM2Geometry(channels=2, pseudo_channels=1, banks=2,
                            rows=256, columns=4, column_bytes=8,
                            channels_per_die=2)
    board_spec = BoardSpec(seed=args.seed, temperature_c=args.temperature,
                           settle_thermals=False, geometry=geometry,
                           faults=fault_spec)
    config = SweepConfig(
        channels=(0, 1), banks=(0, 1), region_size=64, rows_per_region=2,
        hcfirst_rows_per_region=0, include_hcfirst=False,
        patterns=(ROWSTRIPE0,), jobs=2, faults=fault_spec,
        experiment=ExperimentConfig(ber_hammer_count=30_000))

    shards = [(channel, 0, bank, region)
              for channel in (0, 1) for bank in (0, 1)
              for region in ("first", "middle", "last")]
    schedule = {f"ch{c} ba{b} {r}": plan.shard_fault(c, pc, b, r, 0)
                for c, pc, b, r in shards
                if plan.shard_fault(c, pc, b, r, 0)}
    print(f"shard-fault schedule (attempt 0): {schedule or 'clean'}")
    excursions = [f"ch{c} ba{b} row{row}"
                  for c, pc, b, _ in shards for row in range(geometry.rows)
                  if plan.thermal_excursion(c, pc, b, row)]
    print(f"thermal excursions scheduled: {len(excursions)}")

    def campaign():
        registry = MetricsRegistry()
        with use_metrics(registry):
            runner = ParallelSweepRunner(board_spec, config,
                                         max_retries=args.max_retries,
                                         retry_backoff_s=0.001)
            dataset = runner.run()
        return dataset, runner, registry.snapshot()["counters"]

    results = []
    for attempt in (1, 2):
        dataset, runner, counters = campaign()
        results.append(dataset)
        coverage = runner.coverage
        print(f"run {attempt}: "
              f"{coverage['shards']['completed']}/"
              f"{coverage['shards']['total']} shards, "
              f"retries={counters.get('sweep.shard_retries', 0)}, "
              f"thermal.excursions="
              f"{counters.get('thermal.excursions', 0)}, "
              f"transport.faults={counters.get('transport.faults', 0)}, "
              f"quarantined={len(runner.errors)}")
    first, second = results
    identical = (first.ber_records == second.ber_records
                 and first.hcfirst_records == second.hcfirst_records)
    print(f"datasets identical across runs: {identical}")
    from dataclasses import replace
    clean = ParallelSweepRunner(
        BoardSpec(seed=args.seed, temperature_c=args.temperature,
                  settle_thermals=False, geometry=geometry),
        replace(config, faults=None)).run()
    matches_clean = first.ber_records == clean.ber_records
    print(f"dataset identical to fault-free campaign: {matches_clean}")
    return 0 if identical else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HBM2 RowHammer characterization (DSN 2023 "
                    "reproduction) on the simulated testing station.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def row_options(sub, default_channel=0):
        sub.add_argument("--channel", type=int, default=default_channel)
        sub.add_argument("--pseudo-channel", type=int, default=0)
        sub.add_argument("--bank", type=int, default=0)
        sub.add_argument("--row", type=int, default=5000)

    ber = subparsers.add_parser(
        "ber", help="BER of one victim row (256K hammers)")
    _add_station_options(ber)
    row_options(ber)
    ber.add_argument("--pattern", help="one Table 1 / extended pattern "
                                       "(default: all four Table 1)")
    ber.add_argument("--hammers", type=int, default=256 * 1024)
    ber.set_defaults(handler=cmd_ber)

    hcfirst = subparsers.add_parser(
        "hcfirst", help="exact HC_first of one victim row")
    _add_station_options(hcfirst)
    row_options(hcfirst)
    hcfirst.add_argument("--pattern")
    hcfirst.add_argument("--max-hammers", type=int, default=256 * 1024)
    hcfirst.set_defaults(handler=cmd_hcfirst)

    sweep = subparsers.add_parser(
        "sweep", help="spatial characterization campaign (Figs. 3/4)")
    _add_station_options(sweep)
    sweep.add_argument("--channels", type=int, nargs="+", default=None,
                       help="channels to sweep (default: every channel "
                            "of the station's device family)")
    sweep.add_argument("--rows-per-region", type=int, default=8)
    sweep.add_argument("--hcfirst-rows", type=int, default=3)
    sweep.add_argument("--repetitions", type=int, default=1)
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the sweep (default: "
                            "$REPRO_JOBS or 1 = serial); results are "
                            "identical at any jobs level")
    sweep.add_argument("--resume", metavar="DIR", default=None,
                       help="campaign directory: checkpoint completed "
                            "shards there and resume a killed campaign "
                            "from it (byte-identical to an uninterrupted "
                            "run)")
    sweep.add_argument("--max-retries", type=int, default=1,
                       help="extra attempts per failed shard (default: 1)")
    sweep.add_argument("--retry-backoff", type=float, default=0.0,
                       metavar="S",
                       help="base backoff before retry rounds, seconds "
                            "(doubles per round, deterministic jitter; "
                            "default: 0)")
    sweep.add_argument("--degrade", choices=("auto", "never"),
                       default="auto",
                       help="when the worker pool crash-loops past its "
                            "budget: 'auto' (default) finishes the "
                            "campaign serially in-process with identical "
                            "output; 'never' fails loudly instead")
    sweep.add_argument("--progress", action="store_true",
                       help="render a live status line (items done, "
                            "rows/s, ETA, worker liveness) to stderr, "
                            "driven by the campaign event stream")
    sweep.add_argument("-o", "--output", help="archive dataset as JSON")
    sweep.add_argument("--export-dir",
                       help="also write figure CSVs into this directory")
    sweep.set_defaults(handler=cmd_sweep)

    fleet = subparsers.add_parser(
        "fleet", help="population runs over many simulated specimens")
    fleet_subparsers = fleet.add_subparsers(dest="fleet_command",
                                            required=True)
    fleet_run = fleet_subparsers.add_parser(
        "run", help="characterize N re-seeded devices on the warm "
                    "worker pool and report population HC_first/BER "
                    "distributions")
    _add_station_options(fleet_run)
    fleet_run.add_argument("--devices", type=int, default=100,
                           help="simulated specimens; device i uses seed "
                                "--seed + i (default: 100)")
    fleet_run.add_argument("--profiles", nargs="+", metavar="NAME",
                           default=None,
                           help="heterogeneous population: device-family "
                                "profiles assigned round-robin across "
                                "device indices (see 'repro devices "
                                "list'; default: homogeneous)")
    fleet_run.add_argument("--jobs", type=int, default=1,
                           help="worker processes (default: 1 = inline); "
                                "results are identical at any jobs level")
    fleet_run.add_argument("--rows-per-region", type=int, default=2,
                           help="BER victims per device (default: 2)")
    fleet_run.add_argument("--hcfirst-rows", type=int, default=2,
                           help="HC_first victims per device (default: 2)")
    fleet_run.add_argument("--hammers", type=int, default=48 * 1024,
                           help="hammers per BER test (default: 48K)")
    fleet_run.add_argument("--max-hammers", type=int, default=96 * 1024,
                           help="HC_first search bound (default: 96K)")
    fleet_run.add_argument("--max-retries", type=int, default=1,
                           help="extra attempts per failed device "
                                "(default: 1)")
    fleet_run.add_argument("--device-timeout", type=float, default=None,
                           metavar="S",
                           help="per-device wall-clock limit for pooled "
                                "runs (default: unlimited)")
    fleet_run.add_argument("--resume", metavar="DIR", default=None,
                           help="fleet campaign directory: checkpoint "
                                "completed devices there and resume a "
                                "killed fleet from it")
    fleet_run.add_argument("--degrade", choices=("auto", "never"),
                           default="auto",
                           help="when the worker pool crash-loops past "
                                "its budget: 'auto' (default) finishes "
                                "serially in-process; 'never' fails "
                                "loudly instead")
    fleet_run.add_argument("-o", "--output",
                           help="write the population summary as JSON")
    fleet_run.add_argument("--dataset",
                           help="also archive the merged dataset as JSON")
    fleet_run.add_argument("--progress", action="store_true",
                           help="render a live status line (devices "
                                "done, rows/s, ETA, worker liveness) to "
                                "stderr from the campaign event stream")
    fleet_run.add_argument("--verbose", action="store_true",
                           help="print per-device progress to stderr")
    fleet_run.set_defaults(handler=cmd_fleet_run)

    devices = subparsers.add_parser(
        "devices", help="inspect the device-family profile registry")
    devices_subparsers = devices.add_subparsers(dest="devices_command",
                                                required=True)
    devices_list = devices_subparsers.add_parser(
        "list", help="registered device-family profiles")
    devices_list.set_defaults(handler=cmd_devices_list)
    devices_show = devices_subparsers.add_parser(
        "show", help="geometry/timing/TRR details of one profile")
    devices_show.add_argument("name", help="profile name (see list)")
    devices_show.set_defaults(handler=cmd_devices_show)

    utrr = subparsers.add_parser(
        "utrr", help="uncover the hidden TRR (paper Sec 5)")
    _add_station_options(utrr)
    row_options(utrr)
    utrr.add_argument("--iterations", type=int, default=100)
    utrr.set_defaults(handler=cmd_utrr)

    mapping = subparsers.add_parser(
        "mapping", help="reverse engineer the row address mapping")
    _add_station_options(mapping)
    mapping.add_argument("--channel", type=int, default=0)
    mapping.add_argument("--sample-start", type=int, default=0)
    mapping.set_defaults(handler=cmd_mapping)

    subarrays = subparsers.add_parser(
        "subarrays", help="single-sided subarray-boundary scan")
    _add_station_options(subarrays)
    subarrays.add_argument("--channel", type=int, default=7)
    subarrays.add_argument("--start", type=int, default=800)
    subarrays.add_argument("--end", type=int, default=870)
    subarrays.add_argument("--stride", type=int, default=1)
    subarrays.add_argument("--verbose", action="store_true")
    subarrays.set_defaults(handler=cmd_subarrays)

    report = subparsers.add_parser(
        "report", help="render a markdown report from a dataset JSON")
    report.add_argument("dataset")
    report.add_argument("--utrr-period", type=int, default=None)
    report.set_defaults(handler=cmd_report)

    faults = subparsers.add_parser(
        "faults", help="fault-injection and resilience tooling")
    faults_subparsers = faults.add_subparsers(dest="faults_command",
                                              required=True)
    demo = faults_subparsers.add_parser(
        "demo", help="run a tiny campaign under a fault plan, twice, "
                     "to show deterministic injection and recovery")
    _add_station_options(demo)
    demo.add_argument("--max-retries", type=int, default=2,
                      help="extra attempts per failed shard (default: 2)")
    demo.set_defaults(handler=cmd_faults_demo)

    lint = subparsers.add_parser(
        "lint", help="static analyzers (exit codes: 0 clean, 1 warnings, "
                     "2 violations)")
    lint_subparsers = lint.add_subparsers(dest="lint_command",
                                          required=True)
    lint_program = lint_subparsers.add_parser(
        "program", help="statically verify a DRAM Bender program "
                        "(assembly text; see 'repro lint program -' "
                        "for stdin)")
    lint_program.add_argument(
        "program", help="assembly file, or '-' to read stdin")
    lint_program.add_argument(
        "--strict", action="store_true",
        help="as-written timing: commands issue exactly one bus cycle "
             "apart (plus WAITs) instead of at their earliest legal "
             "cycle; reports TimingViolation diagnostics")
    lint_program.add_argument(
        "--expect-hammers", type=int, default=None, metavar="N",
        help="require every activated row to be ACTed exactly N times")
    lint_program.add_argument(
        "--allow-retention-decay", action="store_true",
        help="suppress RefreshStarvation (for deliberate-decay "
             "experiments such as RowPress or retention profiling)")
    lint_program.add_argument(
        "--assume-trr-escaped", action="store_true",
        help="warn when the REF cadence would let the device's N-REF "
             "TRR sampler fire in a program assuming TRR escape "
             "(N = 17 for the paper's HBM2 chip)")
    lint_program.add_argument(
        "--summary", action="store_true",
        help="also infer the program's effect summary (the analytic "
             "fast path's contract); an unsummarizable program exits "
             "1 even when the verifier is clean")
    lint_program.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)")
    lint_program.set_defaults(handler=cmd_lint_program)
    lint_source = lint_subparsers.add_parser(
        "source", help="determinism lint over Python sources "
                       "(default: the installed repro package)")
    lint_source.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the repro package)")
    lint_source.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)")
    lint_source.set_defaults(handler=cmd_lint_source)

    obs = subparsers.add_parser(
        "obs", help="inspect recorded observability artifacts")
    obs_subparsers = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_subparsers.add_parser(
        "summarize", help="render a profile table from a --trace file")
    summarize.add_argument("trace", help="trace written by --trace PATH")
    summarize.add_argument("--metrics", default=None,
                           help="metric snapshot written by --metrics PATH")
    summarize.add_argument("--top", type=int, default=5,
                           help="slowest shards to list (default: 5)")
    summarize.set_defaults(handler=cmd_obs_summarize)
    tail = obs_subparsers.add_parser(
        "tail", help="replay or follow a campaign event log "
                     "(written by --events PATH)")
    tail.add_argument("path", help="event log written by --events PATH")
    tail.add_argument("--follow", action="store_true",
                      help="poll the log, printing status lines, until "
                           "campaign_finished arrives")
    tail.add_argument("--stale-after", type=float, default=5.0,
                      metavar="S",
                      help="flag a worker stale after S seconds without "
                           "a heartbeat or completion (default: 5)")
    tail.set_defaults(handler=cmd_obs_tail)
    export = obs_subparsers.add_parser(
        "export", help="convert recorded artifacts to external tool "
                       "formats")
    export.add_argument("--format", required=True,
                        choices=("prometheus", "flamegraph"),
                        help="prometheus: text exposition format from a "
                             "--metrics snapshot; flamegraph: collapsed "
                             "stacks from a --trace file")
    export.add_argument("--metrics", default=None, metavar="PATH",
                        help="metrics snapshot (prometheus input)")
    export.add_argument("--trace", default=None, metavar="PATH",
                        help="span trace (flamegraph input)")
    export.add_argument("-o", "--output", default=None,
                        help="write the export here instead of stdout")
    export.set_defaults(handler=cmd_obs_export)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    events_path = getattr(args, "events", None)
    progress = getattr(args, "progress", False)
    if args.handler in (cmd_obs_summarize, cmd_obs_export):
        trace_path = metrics_path = None  # inputs, not collection targets
    try:
        if trace_path or metrics_path or events_path or progress:
            return _run_observed(args, trace_path, metrics_path,
                                 events_path, progress)
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _run_observed(args: argparse.Namespace, trace_path, metrics_path,
                  events_path, progress: bool) -> int:
    """Run a subcommand inside an ObsSession collecting the asked-for
    artifacts; ``--progress`` without ``--events`` records the event
    stream to a throwaway file just to drive the live renderer."""
    import os
    import tempfile

    scratch = None
    if progress and not events_path:
        handle = tempfile.NamedTemporaryFile(
            prefix="repro-events-", suffix=".jsonl", delete=False)
        handle.close()
        scratch = events_path = handle.name
    session = ObsSession(trace_path=trace_path, metrics_path=metrics_path,
                         events_path=events_path)
    if progress and session.bus is not None:
        from repro.obs.progress import CampaignView, ProgressRenderer

        view = CampaignView()
        session.bus.subscribe(view.on_event)
        session.bus.subscribe(
            ProgressRenderer(view, epoch=session.bus.epoch).on_event)
    try:
        with session:
            code = args.handler(args)
    finally:
        if scratch is not None:
            os.unlink(scratch)
    if trace_path:
        print(f"trace written to {trace_path} "
              f"(see: repro obs summarize {trace_path})", file=sys.stderr)
    if metrics_path:
        print(f"metrics written to {metrics_path}", file=sys.stderr)
    if events_path and scratch is None:
        print(f"events written to {events_path} "
              f"(see: repro obs tail {events_path})", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())

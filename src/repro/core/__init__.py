"""The paper's characterization methodology.

Everything in this subpackage observes the device exclusively through the
DRAM Bender host interface — write data patterns, issue command programs,
read data back — mirroring how the paper's experiments ran on hardware.

Modules:

* :mod:`repro.core.patterns` — Table 1 data patterns.
* :mod:`repro.core.rowdata` — row-data generation and flip counting.
* :mod:`repro.core.hammer` — single-/double-sided hammering primitives.
* :mod:`repro.core.ber` — BER experiments (256K hammers).
* :mod:`repro.core.hcfirst` — HC_first search.
* :mod:`repro.core.wcdp` — per-row worst-case data pattern selection.
* :mod:`repro.core.mapping_re` — logical->physical mapping reverse
  engineering.
* :mod:`repro.core.subarray_re` — subarray-boundary reverse engineering.
* :mod:`repro.core.retention_profiler` — per-row retention profiling.
* :mod:`repro.core.utrr` — the U-TRR experiment uncovering the hidden TRR.
* :mod:`repro.core.sweeps` — spatial sweep orchestration (Figs. 3-6).
* :mod:`repro.core.results` — result records and dataset (de)serialization.
* :mod:`repro.core.experiment` — interference controls and budgets.
"""

from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig, InterferenceControls
from repro.core.hammer import DoubleSidedHammer, SingleSidedHammer
from repro.core.hcfirst import HcFirstSearch
from repro.core.patterns import (
    CHECKERED0,
    CHECKERED1,
    ROWSTRIPE0,
    ROWSTRIPE1,
    STANDARD_PATTERNS,
    DataPattern,
)
from repro.core.results import (
    BerRecord,
    CharacterizationDataset,
    HcFirstRecord,
)
from repro.core.sweeps import SpatialSweep, SweepConfig
from repro.core.utrr import UTrrExperiment
from repro.core.wcdp import select_wcdp

__all__ = [
    "BerExperiment",
    "BerRecord",
    "CHECKERED0",
    "CHECKERED1",
    "CharacterizationDataset",
    "DataPattern",
    "DoubleSidedHammer",
    "ExperimentConfig",
    "HcFirstRecord",
    "HcFirstSearch",
    "InterferenceControls",
    "ROWSTRIPE0",
    "ROWSTRIPE1",
    "STANDARD_PATTERNS",
    "SingleSidedHammer",
    "SpatialSweep",
    "SweepConfig",
    "UTrrExperiment",
    "select_wcdp",
]

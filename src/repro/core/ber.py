"""Bit Error Rate experiments.

A BER experiment (paper §3.1) hammers a victim row with 256K double-sided
hammers (512K activations) for each data pattern and reports the fraction
of the victim's cells that flipped.  With periodic refresh disabled the
hammer phase fits the 27 ms budget; the optional refresh-enabled mode
(ablation A2) interleaves REF commands at the nominal tREFI rate, which
lets the hidden TRR engine fire — demonstrating why the paper's
methodology must disable refresh.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bender.host import HostInterface
from repro.bender.program import ProgramBuilder
from repro.core.experiment import ExperimentConfig, check_time_budget
from repro.core.hammer import (
    DoubleSidedHammer,
    prepare_neighborhood,
    verify_hammer_program,
)
from repro.core.patterns import DataPattern, STANDARD_PATTERNS
from repro.core.results import BerRecord
from repro.core.rowdata import byte_fill_bits, flip_report
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError


class BerExperiment:
    """Runs BER measurements for victim rows."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 config: Optional[ExperimentConfig] = None) -> None:
        self._host = host
        self._mapper = mapper
        self._config = config or ExperimentConfig()
        self._hammer = DoubleSidedHammer(
            host, mapper, verify=self._config.verify_programs)

    @property
    def config(self) -> ExperimentConfig:
        return self._config

    def run_row(self, victim: DramAddress, pattern: DataPattern,
                region: str = "", repetition: int = 0) -> BerRecord:
        """One BER measurement of one victim row with one pattern."""
        config = self._config
        if config.controls.issue_periodic_refresh:
            outcome = self._run_with_refresh(victim, pattern)
        else:
            outcome = self._hammer.run(victim, pattern,
                                       config.ber_hammer_count)
            check_time_budget(outcome.duration_s, config.controls,
                              what=f"BER hammering of {victim}")
        return BerRecord(
            channel=victim.channel, pseudo_channel=victim.pseudo_channel,
            bank=victim.bank, row=victim.row, region=region,
            pattern=pattern.name, repetition=repetition,
            hammer_count=config.ber_hammer_count, flips=outcome.report.flips,
            row_bits=self._host.device.geometry.row_bits,
            duration_s=outcome.duration_s)

    def run_patterns(self, victim: DramAddress,
                     patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
                     region: str = "", repetition: int = 0
                     ) -> List[BerRecord]:
        """BER of one victim under each pattern (Table 1 column sweep)."""
        return [self.run_row(victim, pattern, region, repetition)
                for pattern in patterns]

    # ------------------------------------------------------------------
    def _run_with_refresh(self, victim: DramAddress, pattern: DataPattern):
        """Hammer with REFs interleaved at the nominal tREFI rate.

        Models a system whose memory controller keeps refreshing during
        the attack: hammers are issued in bursts that fit one tREFI, each
        followed by one REF — giving the hidden TRR engine its firing
        opportunities.
        """
        host = self._host
        config = self._config
        timing = host.device.timing
        prepare_neighborhood(host, self._mapper, victim, pattern)
        aggressors = self._hammer.aggressors_of(victim)
        if len(aggressors) < 2:
            raise ExperimentError(
                f"victim {victim} lacks two physical neighbours")

        hammer_cycles = len(aggressors) * timing.rc_cycles
        hammers_per_refi = max(1, (timing.refi_cycles - timing.rfc_cycles)
                               // hammer_cycles)
        full_bursts, remainder = divmod(config.ber_hammer_count,
                                        hammers_per_refi)

        def build():
            builder = ProgramBuilder()
            with builder.loop(full_bursts):
                with builder.loop(hammers_per_refi):
                    for row in aggressors:
                        builder.act(victim.channel, victim.pseudo_channel,
                                    victim.bank, row)
                        builder.pre(victim.channel, victim.pseudo_channel,
                                    victim.bank)
                builder.ref(victim.channel, victim.pseudo_channel)
            if remainder:
                with builder.loop(remainder):
                    for row in aggressors:
                        builder.act(victim.channel, victim.pseudo_channel,
                                    victim.bank, row)
                        builder.pre(victim.channel, victim.pseudo_channel,
                                    victim.bank)
            return builder.build()

        verify = None
        if config.verify_programs:
            def verify(program) -> None:
                verify_hammer_program(program, host, victim, aggressors,
                                      config.ber_hammer_count)
        execution = host.cached_run(
            ("ber_refresh", victim.channel, victim.pseudo_channel,
             victim.bank, len(aggressors), full_bursts, hammers_per_refi,
             remainder),
            tuple(aggressors), build, verify=verify)
        duration_s = timing.seconds(execution.duration_cycles)

        read_bits = host.read_row(victim)
        expected = byte_fill_bits(pattern.victim_byte,
                                  host.device.geometry.row_bytes)
        report = flip_report(read_bits, expected)

        # Package into the same outcome shape the refresh-free path uses.
        from repro.core.hammer import HammerOutcome
        return HammerOutcome(victim=victim, pattern=pattern,
                             hammer_count=config.ber_hammer_count,
                             report=report, duration_s=duration_s)

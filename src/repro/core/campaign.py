"""Campaign checkpointing: spool completed shards, resume killed runs.

A characterization campaign over thousands of rows is hours of work; a
parent process killed at 95% must not cost 95% of the campaign.  A
:class:`CampaignCheckpoint` binds a campaign to a directory:

* ``campaign.json`` — a manifest carrying a fingerprint of everything
  that determines the measured data (board spec + sweep axes/density),
  so a resume against a different configuration fails loudly instead
  of merging datasets from two different experiments;
* ``shard_NNNNN.json`` — each shard's dataset, written atomically
  (temp file + rename) the moment the shard first completes.

Because shard datasets round-trip exactly through the JSON archive
format and the merge runs in plan order from whatever source (live
worker or checkpoint), a campaign killed mid-run and resumed produces
a byte-identical merged dataset to an uninterrupted run — at any jobs
level, before or after the kill.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.core.results import CharacterizationDataset
from repro.errors import CampaignStateError

__all__ = ["CampaignCheckpoint", "campaign_fingerprint",
           "checkpoint_events", "fleet_fingerprint"]

_MANIFEST_NAME = "campaign.json"
_MANIFEST_VERSION = 1


def campaign_fingerprint(spec, config, shards_total: int) -> str:
    """Digest of everything that determines a campaign's measured data.

    Execution details (jobs, observability, timeouts) are normalized
    away — resuming with a different worker count is explicitly
    supported and still byte-identical.  The board spec and the full
    sweep config (including the fault plan: a ``flag``-policy thermal
    plan changes measured values) are included via their dataclass
    reprs, which are deterministic for the plain-scalar configuration
    types used throughout.
    """
    from dataclasses import replace

    normalized = replace(config, jobs=1, obs=None, shard_timeout_s=None)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(repr(spec).encode())
    hasher.update(repr(normalized).encode())
    hasher.update(str(shards_total).encode())
    return hasher.hexdigest()


def fleet_fingerprint(spec, config, devices: int, base_seed: int) -> str:
    """Digest of everything that determines a fleet run's measured data.

    The fleet analogue of :func:`campaign_fingerprint`: the spec here
    is the *template* (each device re-seeds it), so the device count
    and base seed join the digest — resuming a 100-device fleet
    against a 200-device checkpoint directory, or against a different
    seed range, must fail loudly.  Execution details (jobs, timeouts)
    are normalized away exactly as for campaigns.
    """
    from dataclasses import replace

    normalized = replace(config, jobs=1, obs=None, shard_timeout_s=None)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(b"fleet|")
    hasher.update(repr(spec).encode())
    hasher.update(repr(normalized).encode())
    hasher.update(f"{devices}|{base_seed}".encode())
    return hasher.hexdigest()


def checkpoint_events(bus, items, loaded) -> None:
    """Synthesize the event stream of checkpoint-loaded items.

    A resumed item did no work this run, so its worker can't emit the
    dispatched/heartbeat/completed sequence — the parent synthesizes it
    from the stored archive instead, keeping a resumed campaign's event
    log identical (modulo ``timing``) to an uninterrupted one.  The
    wall-clock-free ``timing.source = "checkpoint"`` marks the synthetic
    events for consumers that care.  ``item_completed``'s metrics delta
    is dataset-derivable by design (see
    :func:`repro.obs.events.dataset_delta`), which is exactly what makes
    this synthesis possible.  Limitation: the archive doesn't record
    which attempt succeeded, so synthetic events always say attempt 0.
    """
    from repro.engine.plan import item_coords
    from repro.obs.events import dataset_delta

    if not bus.enabled:
        return
    source = {"source": "checkpoint"}
    for item in items:
        dataset = loaded.get(item.index)
        if dataset is None:
            continue
        coords = item_coords(item)
        bus.emit("shard_dispatched", item=item.index, attempt=0,
                 timing=source, **coords)
        bus.emit("worker_heartbeat", item=item.index, attempt=0,
                 timing=source, **coords)
        bus.emit("item_completed", item=item.index, attempt=0,
                 timing=source, **coords, **dataset_delta(dataset))


class CampaignCheckpoint:
    """Shard-granular persistence for one campaign directory."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard_{index:05d}.json"

    # ------------------------------------------------------------------
    def prepare(self, fingerprint: str, shards_total: int) -> bool:
        """Create or validate the campaign directory; True if resuming.

        A fresh directory gets a manifest; an existing one must carry a
        matching fingerprint or the resume is refused
        (:class:`~repro.errors.CampaignStateError`) — checkpoints from
        a different spec/config describe a different experiment.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise CampaignStateError(
                    f"unreadable campaign manifest "
                    f"{self.manifest_path}: {error}") from error
            if manifest.get("fingerprint") != fingerprint:
                raise CampaignStateError(
                    f"campaign directory {self.directory} was created "
                    f"for a different spec/config (fingerprint "
                    f"{manifest.get('fingerprint')!r} != "
                    f"{fingerprint!r}); refusing to merge datasets "
                    f"from two different experiments")
            return True
        self.manifest_path.write_text(json.dumps({
            "version": _MANIFEST_VERSION,
            "fingerprint": fingerprint,
            "shards_total": shards_total,
        }, indent=1) + "\n")
        return False

    # ------------------------------------------------------------------
    def load(self, indices: Iterable[int]
             ) -> Dict[int, CharacterizationDataset]:
        """Checkpointed datasets for ``indices``, keyed by shard index."""
        loaded: Dict[int, CharacterizationDataset] = {}
        for index in indices:
            path = self.shard_path(index)
            if not path.exists():
                continue
            try:
                loaded[index] = CharacterizationDataset.from_json(path)
            except Exception as error:
                raise CampaignStateError(
                    f"unreadable shard checkpoint {path}: "
                    f"{error}") from error
        return loaded

    def write(self, index: int, dataset: CharacterizationDataset) -> None:
        """Atomically persist one completed shard's dataset."""
        path = self.shard_path(index)
        temporary = path.with_suffix(".json.tmp")
        dataset.to_json(temporary)
        os.replace(temporary, path)

"""Campaign checkpointing: spool completed shards, resume killed runs.

A characterization campaign over thousands of rows is hours of work; a
parent process killed at 95% must not cost 95% of the campaign.  A
:class:`CampaignCheckpoint` binds a campaign to a directory:

* ``campaign.json`` — a manifest carrying a fingerprint of everything
  that determines the measured data (board spec + sweep axes/density),
  so a resume against a different configuration fails loudly instead
  of merging datasets from two different experiments;
* ``shard_NNNNN.json`` — each shard's dataset, written the moment the
  shard first completes.

Both go through the durable artifact store (:mod:`repro.durable`):
atomic temp-file + rename writes, and a checksummed envelope that also
stamps the campaign fingerprint into every shard archive.  Resume is
therefore **self-healing**: a shard archive that is torn, bit-rotted,
or belongs to a different campaign is detected by its envelope,
quarantined to ``*.corrupt`` (counted in ``campaign.recovered_shards``),
and simply *recomputed* — never trusted, never fatal.  A corrupt
*manifest* is likewise quarantined and rewritten, because the per-shard
fingerprint stamps carry enough provenance to keep cross-experiment
merges impossible; only a *valid* manifest with a mismatched
fingerprint refuses the resume (that is a real configuration conflict,
not corruption).

Because shard datasets round-trip exactly through the JSON archive
format and the merge runs in plan order from whatever source (live
worker or checkpoint), a campaign killed mid-run and resumed produces
a byte-identical merged dataset to an uninterrupted run — at any jobs
level, before or after the kill, and regardless of which archives had
to be recomputed.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.core.results import CharacterizationDataset
from repro.durable import (
    ArtifactCorruptError,
    quarantine,
    read_artifact,
    write_artifact,
)
from repro.errors import CampaignStateError

__all__ = ["CampaignCheckpoint", "campaign_fingerprint",
           "checkpoint_events", "fleet_fingerprint"]

_MANIFEST_NAME = "campaign.json"
_MANIFEST_VERSION = 2


def _profile_identity(spec) -> str:
    """Resolved device-family identity of a board spec.

    The spec's repr already carries the profile *name*; resolving it to
    the registered profile's full identity (geometry + TRR policy) means
    a checkpoint can never be resumed by a campaign whose profile name
    happens to match but whose registered definition differs — and two
    registered profiles sharing timing parameters still fingerprint
    apart.
    """
    from repro.dram.profiles import resolve_profile

    profile = resolve_profile(getattr(spec, "device_profile", None))
    return profile.identity() if profile is not None else ""


def campaign_fingerprint(spec, config, shards_total: int) -> str:
    """Digest of everything that determines a campaign's measured data.

    Execution details (jobs, observability, timeouts) are normalized
    away — resuming with a different worker count is explicitly
    supported and still byte-identical.  The board spec and the full
    sweep config (including the fault plan: a ``flag``-policy thermal
    plan changes measured values) are included via their dataclass
    reprs, which are deterministic for the plain-scalar configuration
    types used throughout; the spec's device-family profile joins as
    its *resolved* identity so checkpoints never alias across families.
    """
    from dataclasses import replace

    normalized = replace(config, jobs=1, obs=None, shard_timeout_s=None)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(repr(spec).encode())
    hasher.update(repr(normalized).encode())
    hasher.update(str(shards_total).encode())
    hasher.update(_profile_identity(spec).encode())
    return hasher.hexdigest()


def fleet_fingerprint(spec, config, devices: int, base_seed: int,
                      profiles: tuple = ()) -> str:
    """Digest of everything that determines a fleet run's measured data.

    The fleet analogue of :func:`campaign_fingerprint`: the spec here
    is the *template* (each device re-seeds it), so the device count
    and base seed join the digest — resuming a 100-device fleet
    against a 200-device checkpoint directory, or against a different
    seed range, must fail loudly.  ``profiles`` is the heterogeneous
    population's device-family rotation; each name joins as its
    resolved identity.  Execution details (jobs, timeouts) are
    normalized away exactly as for campaigns.
    """
    from dataclasses import replace

    from repro.dram.profiles import get_profile

    normalized = replace(config, jobs=1, obs=None, shard_timeout_s=None)
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(b"fleet|")
    hasher.update(repr(spec).encode())
    hasher.update(repr(normalized).encode())
    hasher.update(f"{devices}|{base_seed}".encode())
    hasher.update(_profile_identity(spec).encode())
    for name in profiles:
        hasher.update(b"|")
        hasher.update(get_profile(name).identity().encode())
    return hasher.hexdigest()


def checkpoint_events(bus, items, loaded) -> None:
    """Synthesize the event stream of checkpoint-loaded items.

    A resumed item did no work this run, so its worker can't emit the
    dispatched/heartbeat/completed sequence — the parent synthesizes it
    from the stored archive instead, keeping a resumed campaign's event
    log identical (modulo ``timing``) to an uninterrupted one.  The
    wall-clock-free ``timing.source = "checkpoint"`` marks the synthetic
    events for consumers that care.  ``item_completed``'s metrics delta
    is dataset-derivable by design (see
    :func:`repro.obs.events.dataset_delta`), which is exactly what makes
    this synthesis possible.  Limitation: the archive doesn't record
    which attempt succeeded, so synthetic events always say attempt 0.
    """
    from repro.engine.plan import item_coords
    from repro.obs.events import dataset_delta

    if not bus.enabled:
        return
    source = {"source": "checkpoint"}
    for item in items:
        dataset = loaded.get(item.index)
        if dataset is None:
            continue
        coords = item_coords(item)
        bus.emit("shard_dispatched", item=item.index, attempt=0,
                 timing=source, **coords)
        bus.emit("worker_heartbeat", item=item.index, attempt=0,
                 timing=source, **coords)
        bus.emit("item_completed", item=item.index, attempt=0,
                 timing=source, **coords, **dataset_delta(dataset))


class CampaignCheckpoint:
    """Shard-granular persistence for one campaign directory.

    ``fault_plan`` (optional) threads the campaign's seeded IO-fault
    schedule into every artifact write, so chaos runs exercise torn
    writes, bit-flips, and simulated ENOSPC on the real checkpoint
    path.  ``recovered`` counts the corrupt shard archives this
    instance quarantined during :meth:`load`.
    """

    def __init__(self, directory: Union[str, Path],
                 fault_plan=None) -> None:
        self.directory = Path(directory)
        self.fault_plan = fault_plan
        self.recovered = 0
        self._fingerprint: Optional[str] = None

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def shard_path(self, index: int) -> Path:
        return self.directory / f"shard_{index:05d}.json"

    # ------------------------------------------------------------------
    def prepare(self, fingerprint: str, shards_total: int) -> bool:
        """Create or validate the campaign directory; True if resuming.

        A fresh directory gets a manifest; an existing one must carry a
        matching fingerprint or the resume is refused
        (:class:`~repro.errors.CampaignStateError`) — checkpoints from
        a different spec/config describe a different experiment.  A
        manifest that is *corrupt* (torn write, bit rot) is quarantined
        and rewritten instead: every shard archive stamps the campaign
        fingerprint into its own envelope, so provenance survives the
        manifest and :meth:`load` still refuses foreign shards.
        """
        self._fingerprint = fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            try:
                artifact = read_artifact(self.manifest_path,
                                         kind="campaign-manifest")
                manifest = artifact.payload
            except ArtifactCorruptError:
                quarantine(self.manifest_path)
                from repro.obs import get_metrics
                get_metrics().counter(
                    "campaign.recovered_manifests").inc()
                self._write_manifest(fingerprint, shards_total)
                # Still a resume: shard archives carry their own
                # fingerprint stamps and validate individually.
                return True
            if not isinstance(manifest, dict) or \
                    manifest.get("fingerprint") != fingerprint:
                stored = (manifest.get("fingerprint")
                          if isinstance(manifest, dict) else None)
                raise CampaignStateError(
                    f"campaign directory {self.directory} was created "
                    f"for a different spec/config (fingerprint "
                    f"{stored!r} != {fingerprint!r}); refusing to "
                    f"merge datasets from two different experiments")
            return True
        self._write_manifest(fingerprint, shards_total)
        return False

    def _write_manifest(self, fingerprint: str, shards_total: int) -> None:
        write_artifact(self.manifest_path, {
            "version": _MANIFEST_VERSION,
            "fingerprint": fingerprint,
            "shards_total": shards_total,
        }, kind="campaign-manifest", fault_plan=self.fault_plan)

    # ------------------------------------------------------------------
    def load(self, indices: Iterable[int]
             ) -> Dict[int, CharacterizationDataset]:
        """Checkpointed datasets for ``indices``, keyed by shard index.

        Self-healing: an archive whose envelope fails verification —
        torn, bit-rotted, or stamped with a different campaign
        fingerprint — is quarantined to ``*.corrupt`` and omitted from
        the result, so the runner transparently recomputes that shard.
        ``campaign.recovered_shards`` counts the quarantines.  Legacy
        (pre-envelope) archives load when they parse; anything about
        them that fails also quarantines rather than raising.
        """
        loaded: Dict[int, CharacterizationDataset] = {}
        for index in indices:
            path = self.shard_path(index)
            if not path.exists():
                continue
            try:
                artifact = read_artifact(path, kind="shard")
                stamp = artifact.meta.get("campaign")
                if (stamp is not None and self._fingerprint is not None
                        and stamp != self._fingerprint):
                    raise ArtifactCorruptError(
                        f"shard archive {path} belongs to campaign "
                        f"{stamp!r}, not {self._fingerprint!r}")
                loaded[index] = CharacterizationDataset.from_payload(
                    artifact.payload)
            except Exception:
                self._quarantine_shard(path)
        return loaded

    def _quarantine_shard(self, path: Path) -> None:
        quarantine(path)
        self.recovered += 1
        from repro.obs import get_metrics
        get_metrics().counter("campaign.recovered_shards").inc()

    def write(self, index: int, dataset: CharacterizationDataset) -> None:
        """Atomically persist one completed shard's dataset.

        The envelope stamps the campaign fingerprint, so a later resume
        can refuse a shard that wandered in from another experiment
        even if the manifest was lost.  May raise
        :class:`~repro.errors.DiskSpaceError` (real or injected); the
        runner degrades to in-memory-only on that — see
        :meth:`repro.core.parallel.ParallelSweepRunner._accept`.
        """
        write_artifact(self.shard_path(index), dataset.to_payload(),
                       kind="shard", fault_plan=self.fault_plan,
                       campaign=self._fingerprint)

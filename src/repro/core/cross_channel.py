"""Cross-channel interference experiment (paper §6, future work 3).

HBM2 stacks DRAM dies, so certain channels sit physically on top of each
other.  The paper asks whether "frequently accessing one or more
aggressor channels can induce bitflips or worsen the reliability
characteristics of other victim channels" — a question with no published
answer.  This module implements the experiment that would answer it.

Design: a **differential measurement**.  The victim row (channel c_v) is
written and left unrefreshed for a fixed wall-clock duration twice:

* *control*: the stack is completely idle for the duration;
* *stressed*: the same wall-clock duration is spent continuously
  activating the same row index in the vertically adjacent channel
  (the wordline physically closest to the victim through the stack).

Any excess flips in the stressed run over the control run are
cross-channel disturbance; retention decay — which both runs experience
identically — cancels out.  On the default device profile (no modelled
inter-die coupling, consistent with the absence of published evidence)
the experiment reports no effect; profiles with hypothesised coupling
validate that the detector works.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import HostInterface
from repro.bender.program import ProgramBuilder
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError
from repro.verify.program import VerifyContext, assert_verified


@dataclass(frozen=True)
class CrossChannelOutcome:
    """Result of one differential cross-channel measurement."""

    victim: DramAddress
    aggressor_channel: int
    activations: int
    control_flips: int
    stressed_flips: int
    duration_s: float

    @property
    def excess_flips(self) -> int:
        return self.stressed_flips - self.control_flips

    @property
    def interference_detected(self) -> bool:
        return self.excess_flips > 0


class CrossChannelExperiment:
    """Differential aggressor-channel stress test."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 fill_byte: int = 0x00, verify: bool = True) -> None:
        self._host = host
        self._mapper = mapper
        self._fill_byte = fill_byte
        self._verify = verify

    def vertical_neighbor_channels(self, channel: int) -> list:
        """Channels stacked directly above/below ``channel``."""
        geometry = self._host.device.geometry
        step = geometry.channels_per_die
        return [candidate for candidate in (channel - step, channel + step)
                if 0 <= candidate < geometry.channels]

    def _measure(self, victim: DramAddress, aggressor_channel: int,
                 activations: int, stressed: bool) -> int:
        """One arm of the differential pair; returns victim flips."""
        host = self._host
        geometry = host.device.geometry
        timing = host.device.timing
        fill = bytes([self._fill_byte]) * geometry.row_bytes
        host.write_row(victim, fill)

        def build():
            builder = ProgramBuilder()
            if stressed:
                # Continuously toggle the same row index in the aggressor
                # channel — the wordline physically adjacent to the victim
                # through the stack.
                with builder.loop(activations):
                    builder.act(aggressor_channel, victim.pseudo_channel,
                                victim.bank, victim.row)
                    builder.pre(aggressor_channel, victim.pseudo_channel,
                                victim.bank)
            else:
                # Idle for exactly the duration the stress arm spends.
                builder.wait(activations * timing.rc_cycles)
            return builder.build()

        verify = None
        if self._verify:
            def verify(program) -> None:
                expected = {(aggressor_channel, victim.pseudo_channel,
                             victim.bank, victim.row): activations} \
                    if stressed else None
                # Both arms deliberately leave the victim unrefreshed for
                # the whole duration — decay is the experiment's common
                # mode.
                assert_verified(
                    program,
                    VerifyContext.for_host(host, expected_hammers=expected,
                                           allow_retention_decay=True),
                    what="cross-channel stress program")
        host.cached_run(
            ("cross_channel", aggressor_channel, victim.pseudo_channel,
             victim.bank, activations, stressed),
            (victim.row,) if stressed else (), build, verify=verify)

        read_bits = host.read_row(victim)
        expected = byte_fill_bits(self._fill_byte, geometry.row_bytes)
        return count_flips(read_bits, expected)

    def run(self, victim: DramAddress, activations: int = 1_000_000,
            aggressor_channel: int = None) -> CrossChannelOutcome:
        """Run the differential pair against one victim row.

        Args:
            victim: the row watched for cross-channel flips.
            activations: aggressor-channel ACT count per arm.  Both arms
                last ``activations * tRC``, so retention decay cancels.
            aggressor_channel: defaults to the vertically adjacent
                channel below (or above, at the stack edge).
        """
        if activations <= 0:
            raise ExperimentError("activations must be positive")
        neighbors = self.vertical_neighbor_channels(victim.channel)
        if not neighbors:
            raise ExperimentError(
                f"channel {victim.channel} has no vertical neighbours")
        if aggressor_channel is None:
            aggressor_channel = neighbors[0]
        elif aggressor_channel not in neighbors:
            raise ExperimentError(
                f"channel {aggressor_channel} is not stacked adjacent to "
                f"channel {victim.channel} (candidates: {neighbors})")

        control = self._measure(victim, aggressor_channel, activations,
                                stressed=False)
        stressed = self._measure(victim, aggressor_channel, activations,
                                 stressed=True)
        timing = self._host.device.timing
        return CrossChannelOutcome(
            victim=victim, aggressor_channel=aggressor_channel,
            activations=activations, control_flips=control,
            stressed_flips=stressed,
            duration_s=timing.seconds(activations * timing.rc_cycles))

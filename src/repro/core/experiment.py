"""Experiment configuration: interference controls and time budgets.

§3.1 of the paper identifies four interference sources that must be
disabled for a clean RowHammer characterization, and how each is handled:

1. **Periodic refresh** — no REF commands are issued during experiments.
2. **On-die RH defenses (TRR)** — disabling refresh starves them (they
   only act on REF), so no extra step is needed.
3. **Data-retention failures** — every experiment finishes within 27 ms,
   under the 32 ms window in which manufacturers guarantee no retention
   errors.
4. **On-die ECC** — disabled through the corresponding mode register bit.

:class:`InterferenceControls` captures those four switches;
:class:`ExperimentConfig` adds the common test parameters.
:func:`apply_controls` pushes the switches to a board, and
:func:`check_time_budget` enforces (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bender.board import BenderBoard
from repro.errors import ExperimentBudgetError, ExperimentError

#: Refresh window within which vendors guarantee no retention errors (s).
RETENTION_SAFE_WINDOW_S = 32e-3
#: The paper's experiment budget, safely below the window (s).
DEFAULT_TIME_BUDGET_S = 27e-3


@dataclass(frozen=True)
class InterferenceControls:
    """The four §3.1 switches.

    The defaults are the paper's characterization settings.  Flipping a
    switch back on is how the interference ablation (bench A2/A3) shows
    each control is load-bearing.
    """

    issue_periodic_refresh: bool = False
    ecc_enabled: bool = False
    #: Enforce the <27 ms budget on hammer-phase duration.
    enforce_time_budget: bool = True
    time_budget_s: float = DEFAULT_TIME_BUDGET_S

    def __post_init__(self) -> None:
        if self.time_budget_s <= 0:
            raise ExperimentError("time_budget_s must be positive")
        if (self.enforce_time_budget and not self.issue_periodic_refresh
                and self.time_budget_s > RETENTION_SAFE_WINDOW_S):
            raise ExperimentError(
                f"refresh-disabled experiments must fit the "
                f"{RETENTION_SAFE_WINDOW_S * 1e3:.0f} ms retention-safe "
                f"window; budget {self.time_budget_s * 1e3:.1f} ms exceeds it")


@dataclass(frozen=True)
class ExperimentConfig:
    """Common parameters of the paper's RowHammer tests (§3.1)."""

    #: Hammers (aggressor-pair activations) for BER experiments.
    ber_hammer_count: int = 256 * 1024
    #: Upper bound of the HC_first search.
    hcfirst_max_hammers: int = 256 * 1024
    #: Independent repetitions of each measurement.
    repetitions: int = 1
    #: Chip temperature during experiments (degC).
    temperature_c: float = 85.0
    #: Statically verify every generated test program before it runs
    #: (protocol + timing + hammer-count checks, :mod:`repro.verify`).
    #: Programs are small, so the cost is negligible; turn off only to
    #: deliberately run a program the verifier rejects.
    verify_programs: bool = True
    #: Device-family profile name (:mod:`repro.dram.profiles`) the
    #: experiment is designed for.  ``None`` (the default) means
    #: family-agnostic: no consistency check against the station.  When
    #: set, drivers check it against the station's own profile so a
    #: DDR4-tuned sweep cannot silently run on an HBM2 board, and the
    #: campaign fingerprint incorporates it.
    profile: Optional[str] = None
    controls: InterferenceControls = field(default_factory=InterferenceControls)

    def __post_init__(self) -> None:
        if self.ber_hammer_count <= 0:
            raise ExperimentError("ber_hammer_count must be positive")
        if self.hcfirst_max_hammers <= 0:
            raise ExperimentError("hcfirst_max_hammers must be positive")
        if self.repetitions <= 0:
            raise ExperimentError("repetitions must be positive")


def apply_controls(board: BenderBoard, config: ExperimentConfig) -> None:
    """Push the experiment configuration to a testing station.

    Sets the chip temperature through the PID rig and writes the ECC mode
    register.  (Refresh is controlled by simply not issuing REF commands;
    the hidden TRR needs no handling because it only acts on REF.)
    """
    board.set_target_temperature(config.temperature_c)
    board.host.set_ecc_enabled(config.controls.ecc_enabled)


def check_time_budget(duration_s: float,
                      controls: InterferenceControls,
                      what: str = "experiment") -> None:
    """Raise if a refresh-disabled experiment ran long enough for
    retention failures to contaminate it (§3.1, control 3)."""
    if not controls.enforce_time_budget or controls.issue_periodic_refresh:
        return
    if duration_s > controls.time_budget_s:
        raise ExperimentBudgetError(
            f"{what} took {duration_s * 1e3:.2f} ms, exceeding the "
            f"{controls.time_budget_s * 1e3:.1f} ms budget that keeps "
            "retention failures out of refresh-disabled measurements")

"""Fleet-population mode: one campaign, N simulated chip specimens.

The paper characterizes six physical HBM2 chips and reports *population*
statistics — how HC_first and BER vary from chip to chip, not just from
row to row (§4, Figs. 3-4 show per-chip distributions).  This module
scales that axis in simulation: a fleet run builds ``N`` devices from
one :class:`~repro.bender.board.BoardSpec` template, each re-seeded
(``base_seed + index``) so every device is a *distinct specimen* with
its own cell ground truth, runs the same small sweep on each, and
reduces the per-device datasets to population distributions of the
per-device minimum HC_first and mean BER.

Execution rides the warm worker pool
(:class:`~repro.engine.pool.PoolBackend`): a device is one work item,
devices dispatch in batches, and each worker's LRU-bounded session
cache rotates through device specs without accumulating board state.
The merge is deterministic — datasets concatenate in device-index
order — so a fleet run is byte-identical at any ``jobs`` level, and
``--resume`` replays completed devices from a
:class:`~repro.core.campaign.CampaignCheckpoint` directory exactly as
campaign resume replays shards.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.bender.board import BoardSpec
from repro.core.campaign import (
    CampaignCheckpoint,
    checkpoint_events,
    fleet_fingerprint,
)
from repro.core.experiment import ExperimentConfig
from repro.core.patterns import ROWSTRIPE0
from repro.core.results import REGION_FIRST, CharacterizationDataset
from repro.core.sweeps import SweepConfig
from repro.engine.plan import item_coords
from repro.errors import DiskSpaceError, ExperimentError, PoolDegradedError
from repro.faults.plan import FaultPlan, resolve_fault_spec
from repro.obs import (
    MetricsRegistry,
    ObsConfig,
    get_events,
    get_metrics,
    get_tracer,
    read_jsonl,
)
from repro.obs.events import dataset_delta

ProgressCallback = Callable[[str], None]

__all__ = [
    "FleetConfig",
    "FleetDevice",
    "FleetError",
    "FleetResult",
    "FleetRunner",
    "default_fleet_sweep",
    "device_summary",
    "population_summary",
    "run_fleet_device",
]


def default_fleet_sweep(**overrides) -> SweepConfig:
    """The per-device sweep a fleet runs by default.

    Deliberately small — the fleet's sampling axis is *devices*, not
    rows: one channel/bank/region, two BER victims and two HC_first
    victims under Rowstripe0, with hammer counts reduced from the
    paper's 256K so that a 100-device population finishes in seconds.
    Any field can be overridden (e.g. more rows per device).
    """
    values = dict(
        channels=(0,), pseudo_channels=(0,), banks=(0,),
        regions=(REGION_FIRST,), rows_per_region=2,
        hcfirst_rows_per_region=2, patterns=(ROWSTRIPE0,),
        append_wcdp=False, jobs=1,
        experiment=ExperimentConfig(ber_hammer_count=48 * 1024,
                                    hcfirst_max_hammers=96 * 1024),
    )
    values.update(overrides)
    return SweepConfig(**values)


@dataclass(frozen=True)
class FleetDevice:
    """One simulated specimen: a re-seeded spec plus its sweep config.

    Shaped like a work item so :func:`~repro.engine.pool.run_shard` can
    execute it directly: ``index``/``attempt`` drive scheduling, and the
    coordinate properties key tracing spans and fault injection — the
    device index stands in for the channel coordinate, so injected
    faults draw independently per device instead of identically (every
    device sweeps the same physical coordinates).
    """

    index: int
    seed: int
    spec: BoardSpec
    config: SweepConfig
    attempt: int = 0

    #: Devices trace as ``device`` spans and report (device, seed) event
    #: coordinates (see :func:`repro.engine.plan.item_coords`).
    span_kind = "device"

    @property
    def channel(self) -> int:
        return self.index

    @property
    def pseudo_channel(self) -> int:
        return 0

    @property
    def bank(self) -> int:
        return 0

    @property
    def region(self) -> str:
        return self.config.regions[0]

    def describe(self) -> str:
        return f"device {self.index} (seed {self.seed})"


def run_fleet_device(spec: BoardSpec, device: FleetDevice
                     ) -> CharacterizationDataset:
    """Execute one device's sweep in the current process.

    The fleet's item runner for :class:`~repro.engine.pool.PoolBackend`
    (module-level, hence picklable).  ``spec`` is the fleet *template*
    shipped by the pool initializer and deliberately ignored — the
    device carries its own re-seeded spec, and the worker's LRU session
    cache keys on it, so a worker rotating through many devices keeps
    only the most recent boards alive.
    """
    from repro.engine.pool import run_shard
    return run_shard(device.spec, device)


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet-population run."""

    #: Simulated specimens; device ``i`` is built with ``base_seed + i``.
    devices: int = 100
    base_seed: int = 0
    #: Worker processes (1 = run devices inline, serially).
    jobs: int = 1
    #: Extra sequential attempts for devices that fail.
    max_retries: int = 1
    #: Template spec; each device gets ``replace(spec, seed=...)``.
    spec: BoardSpec = field(default_factory=BoardSpec)
    #: Per-device sweep (identical across the fleet).
    sweep: SweepConfig = field(default_factory=default_fleet_sweep)
    #: Per-device wall-clock limit for pooled runs (None = unlimited).
    device_timeout_s: Optional[float] = None
    #: Heterogeneous population: device-family profile names assigned
    #: round-robin across device indices (device ``i`` gets
    #: ``profiles[i % len(profiles)]``).  Empty = homogeneous fleet
    #: built from the template spec as-is.
    profiles: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.devices <= 0:
            raise ExperimentError("devices must be positive")
        if self.jobs <= 0:
            raise ExperimentError("jobs must be positive")
        if self.max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if self.profiles:
            # Fail at configuration time, not in a worker process.
            from repro.dram.profiles import get_profile
            for name in self.profiles:
                get_profile(name)

    def fingerprint(self) -> str:
        return fleet_fingerprint(self.spec, self.sweep, self.devices,
                                 self.base_seed, profiles=self.profiles)

    def plan(self) -> Tuple[FleetDevice, ...]:
        """The fleet's devices, in index (= merge) order.

        With ``profiles`` set, each device's spec is rebuilt for its
        assigned family and its sweep's experiment tagged to match, so
        the per-device profile consistency check holds inside workers.
        """
        config = replace(self.sweep, jobs=1, obs=None, append_wcdp=False)
        devices = []
        for index in range(self.devices):
            spec = replace(self.spec, seed=self.base_seed + index)
            device_config = config
            if self.profiles:
                name = self.profiles[index % len(self.profiles)]
                spec = replace(spec, device_profile=name)
                device_config = replace(
                    config,
                    experiment=replace(config.experiment, profile=name))
            devices.append(
                FleetDevice(index=index, seed=self.base_seed + index,
                            spec=spec, config=device_config))
        return tuple(devices)


@dataclass(frozen=True)
class FleetError:
    """One device that stayed failed after all retry attempts."""

    index: int
    seed: int
    error_type: str
    message: str
    attempts: int


def _percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    position = (len(ordered) - 1) * fraction
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def _distribution(values: List[float]) -> Optional[Dict[str, float]]:
    """min/p10/p25/p50/p75/p90/max/mean summary of a population."""
    if not values:
        return None
    ordered = sorted(values)
    summary = {"min": ordered[0]}
    for label, fraction in (("p10", 0.10), ("p25", 0.25), ("p50", 0.50),
                            ("p75", 0.75), ("p90", 0.90)):
        summary[label] = round(_percentile(ordered, fraction), 9)
    summary["max"] = ordered[-1]
    summary["mean"] = round(sum(ordered) / len(ordered), 9)
    return summary


def device_summary(device: FleetDevice,
                   dataset: CharacterizationDataset) -> Dict[str, object]:
    """One device's population-relevant reductions."""
    flips = sum(record.flips for record in dataset.ber_records)
    bits = sum(record.row_bits for record in dataset.ber_records)
    hc_values = [record.hc_first for record in dataset.hcfirst_records
                 if record.hc_first is not None]
    censored = sum(1 for record in dataset.hcfirst_records
                   if record.censored)
    return {
        "device": device.index,
        "seed": device.seed,
        "ber_mean": round(flips / bits, 9) if bits else None,
        "bitflips": flips,
        "hc_first_min": min(hc_values) if hc_values else None,
        "hcfirst_censored": censored,
    }


def population_summary(summaries: List[Dict[str, object]]
                       ) -> Dict[str, object]:
    """Population distributions over per-device summaries.

    ``hc_first_min`` is the distribution of each device's most
    vulnerable row (the per-device minimum HC_first, the paper's
    chip-level vulnerability number); ``ber_mean`` the distribution of
    each device's mean BER.  Devices whose every HC_first search was
    right-censored contribute to ``fully_censored_devices`` instead of
    the HC_first distribution.
    """
    hc_values = [summary["hc_first_min"] for summary in summaries
                 if summary["hc_first_min"] is not None]
    ber_values = [summary["ber_mean"] for summary in summaries
                  if summary["ber_mean"] is not None]
    return {
        "devices": len(summaries),
        "hc_first_min": _distribution([float(v) for v in hc_values]),
        "ber_mean": _distribution([float(v) for v in ber_values]),
        "bitflips_total": sum(summary["bitflips"] for summary in summaries),
        "fully_censored_devices": sum(
            1 for summary in summaries
            if summary["hc_first_min"] is None),
    }


@dataclass
class FleetResult:
    """Everything one fleet run produced."""

    #: All devices' records concatenated in device-index order.
    dataset: CharacterizationDataset
    #: Per-device reductions, in device-index order (completed only).
    devices: List[Dict[str, object]]
    #: Population distributions (see :func:`population_summary`).
    population: Dict[str, object]
    errors: Tuple[FleetError, ...]
    fingerprint: str

    def to_json(self, path: Union[str, Path]) -> None:
        payload = {
            "fingerprint": self.fingerprint,
            "population": self.population,
            "devices": self.devices,
            "errors": [{"index": error.index, "seed": error.seed,
                        "error_type": error.error_type,
                        "message": error.message,
                        "attempts": error.attempts}
                       for error in self.errors],
        }
        from repro.durable import atomic_write_bytes
        atomic_write_bytes(path, json.dumps(payload, indent=1).encode(),
                           kind="fleet-result")


class FleetRunner:
    """Runs a fleet and reduces it to population statistics.

    Mirrors :class:`~repro.core.parallel.ParallelSweepRunner` at device
    granularity: first round dispatches every pending device on the
    warm pool (or inline when ``jobs=1``), retry rounds re-run failures
    sequentially on the same pool so a crashing device cannot sink the
    others, and the integrity fingerprint each device's dataset carries
    is verified before the dataset is accepted.
    """

    def __init__(self, config: FleetConfig, *,
                 campaign_dir: Optional[Union[str, Path]] = None,
                 mp_context=None, degrade: str = "auto") -> None:
        if degrade not in ("auto", "never"):
            raise ExperimentError(
                f"degrade must be 'auto' or 'never', got {degrade!r}")
        self._config = config
        self._campaign_dir = campaign_dir
        self._mp_context = mp_context
        self._degrade = degrade
        self._errors: Tuple[FleetError, ...] = ()

    @property
    def errors(self) -> Tuple[FleetError, ...]:
        """Devices that stayed failed after all retries (last run)."""
        return self._errors

    # ------------------------------------------------------------------
    def run(self, progress: Optional[ProgressCallback] = None
            ) -> FleetResult:
        from repro.engine.pool import PoolBackend

        config = self._config
        tracer = get_tracer()
        metrics = get_metrics()
        events = get_events()
        devices = config.plan()
        events.emit("campaign_started", devices=len(devices), kind="fleet",
                    timing={"jobs": config.jobs})
        obs_active = tracer.enabled or metrics.enabled
        spool = (tempfile.TemporaryDirectory(prefix="repro-fleet-obs-")
                 if obs_active else None)
        if spool is not None or events.enabled:
            obs = ObsConfig(trace=tracer.enabled, metrics=metrics.enabled,
                            spool_dir=(spool.name if spool is not None
                                       else None),
                            events_path=(str(events.path)
                                         if events.enabled else None),
                            epoch=events.epoch)
            devices = tuple(
                replace(device, config=replace(device.config, obs=obs))
                for device in devices)
        started = time.perf_counter()
        fingerprint = config.fingerprint()
        results: Dict[int, CharacterizationDataset] = {}
        attempts_used: Dict[int, int] = {}
        last_error: Dict[int, BaseException] = {}
        backend: Optional[PoolBackend] = None
        if config.jobs > 1:
            backend = PoolBackend(config.spec, runner=run_fleet_device,
                                  timeout_s=config.device_timeout_s,
                                  mp_context=self._mp_context)
        try:
            with tracer.span("campaign", kind="fleet",
                             devices=len(devices),
                             jobs=config.jobs) as campaign:
                checkpoint = self._prepare_checkpoint(
                    fingerprint, devices, results, progress)
                pending = [device for device in devices
                           if device.index not in results]
                for attempt in range(1 + config.max_retries):
                    if not pending:
                        break
                    if attempt and progress:
                        progress(f"retry round {attempt}: "
                                 f"{len(pending)} device(s)")
                    pending = self._run_round(
                        pending, attempt, backend, results, attempts_used,
                        last_error, checkpoint, progress,
                        sequential=bool(attempt))
                self._errors = tuple(
                    FleetError(
                        index=device.index, seed=device.seed,
                        error_type=type(
                            last_error[device.index]).__name__,
                        message=str(last_error[device.index]),
                        attempts=attempts_used.get(device.index, 0))
                    for device in devices
                    if device.index not in results)
                for error in self._errors:
                    events.emit("quarantine", item=error.index,
                                attempt=1 + config.max_retries,
                                error_type=error.error_type,
                                device=error.index, seed=error.seed)
                metrics.counter("fleet.devices_completed").inc(
                    len(results))
                metrics.counter("fleet.devices_failed").inc(
                    len(self._errors))
                result = self._reduce(devices, results, fingerprint)
                if spool is not None:
                    self._merge_spool(
                        devices, spool.name, tracer, metrics, campaign,
                        result.dataset, time.perf_counter() - started)
                events.emit(
                    "campaign_finished", devices=len(devices),
                    completed=len(results),
                    quarantined=len(self._errors),
                    records=sum(result.dataset.record_counts()),
                    timing={"wall_s": round(
                        time.perf_counter() - started, 6)})
                events.finalize()
                return result
        finally:
            if backend is not None:
                backend.close()
            if spool is not None:
                spool.cleanup()

    # ------------------------------------------------------------------
    def _prepare_checkpoint(self, fingerprint, devices, results, progress
                            ) -> Optional[CampaignCheckpoint]:
        if self._campaign_dir is None:
            return None
        fault_spec = resolve_fault_spec(self._config.sweep.faults)
        fault_plan = (FaultPlan(fault_spec)
                      if fault_spec is not None and fault_spec.has_io_faults
                      else None)
        checkpoint = CampaignCheckpoint(self._campaign_dir,
                                        fault_plan=fault_plan)
        try:
            resuming = checkpoint.prepare(fingerprint, len(devices))
        except DiskSpaceError:
            # A full volume at fleet start: run without checkpoints
            # (results stay in memory) rather than refuse the campaign.
            get_metrics().counter(
                "campaign.checkpoint_write_errors").inc()
            return checkpoint
        if resuming:
            loaded = checkpoint.load(device.index for device in devices)
            results.update(loaded)
            if loaded:
                events = get_events()
                checkpoint_events(events, devices, loaded)
                if events.enabled:
                    for device in devices:
                        dataset = loaded.get(device.index)
                        if dataset is not None:
                            events.emit(
                                "device_done", item=device.index,
                                attempt=0,
                                timing={"source": "checkpoint"},
                                **device_summary(device, dataset))
                get_metrics().counter("fleet.devices_resumed").inc(
                    len(loaded))
                if progress:
                    recovered = (f" ({checkpoint.recovered} corrupt "
                                 f"quarantined)" if checkpoint.recovered
                                 else "")
                    progress(f"[resume] {len(loaded)}/{len(devices)} "
                             f"device(s) restored from "
                             f"{checkpoint.directory}{recovered}")
        return checkpoint

    def _run_round(self, pending, attempt, backend, results,
                   attempts_used, last_error, checkpoint, progress, *,
                   sequential) -> List[FleetDevice]:
        """One dispatch round; returns the devices that failed in it."""
        config = self._config
        events = get_events()
        failed: List[FleetDevice] = []
        if attempt:
            for device in pending:
                events.emit("retry", item=device.index, attempt=attempt,
                            error_type=type(
                                last_error[device.index]).__name__,
                            **item_coords(device))

        settled: set = set()

        def on_result(device, dataset) -> None:
            settled.add(device.index)
            attempts_used[device.index] = attempt + 1
            if not self._accept(device, dataset, results, checkpoint,
                                attempt):
                last_error[device.index] = ExperimentError(
                    f"{device.describe()}: integrity fingerprint "
                    f"mismatch (dataset corrupted in flight)")
                failed.append(device)
            elif progress:
                progress(f"{device.describe()} done "
                         f"({len(results)}/{config.devices})")

        def on_failure(device, error) -> None:
            settled.add(device.index)
            attempts_used[device.index] = attempt + 1
            last_error[device.index] = error
            failed.append(device)
            if progress:
                progress(f"{device.describe()} FAILED "
                         f"[{type(error).__name__}]: {error}")

        def run_inline(devices) -> None:
            for device in devices:
                job = replace(device, attempt=attempt)
                events.emit("shard_dispatched", item=device.index,
                            attempt=attempt, **item_coords(device))
                try:
                    dataset = run_fleet_device(config.spec, job)
                except Exception as error:
                    on_failure(device, error)
                else:
                    on_result(device, dataset)
                events.tick()

        if backend is None:
            run_inline(pending)
        else:
            workers = min(config.jobs, len(pending))
            try:
                backend.run(list(pending), workers, attempt, on_result,
                            on_failure, sequential=sequential)
            except PoolDegradedError as error:
                # The pool's crash-loop breaker opened: finish the
                # round inline (same runner the workers use, so the
                # merged result is byte-identical), unless the caller
                # asked for a loud failure instead.
                if self._degrade == "never":
                    raise
                get_metrics().counter("fleet.degraded_serial").inc(
                    len(pending) - len(settled))
                if progress:
                    progress(f"[degraded] worker pool gave up "
                             f"({error}); finishing serially")
                run_inline([device for device in pending
                            if device.index not in settled])
        return failed

    def _accept(self, device, dataset, results, checkpoint,
                attempt: int = 0) -> bool:
        """Verify and record one device's dataset; False = poisoned."""
        integrity = dataset.metadata.pop("integrity", None)
        if integrity != dataset.fingerprint():
            get_metrics().counter("fleet.devices_poisoned").inc()
            return False
        dataset.metadata["device"] = {"index": device.index,
                                      "seed": device.seed}
        first = device.index not in results
        results[device.index] = dataset
        if checkpoint is not None:
            try:
                checkpoint.write(device.index, dataset)
            except DiskSpaceError:
                # Kept in memory; the run continues uncheckpointed.
                get_metrics().counter(
                    "campaign.checkpoint_write_errors").inc()
        if first:
            events = get_events()
            events.emit("item_completed", item=device.index,
                        attempt=attempt, **item_coords(device),
                        **dataset_delta(dataset))
            events.emit("device_done", item=device.index, attempt=attempt,
                        **device_summary(device, dataset))
        return True

    def _merge_spool(self, devices, spool_dir, tracer, metrics, campaign,
                     dataset, wall_s) -> None:
        """Fold device spool files back into the parent collectors.

        The fleet analogue of
        :meth:`~repro.core.parallel.ParallelSweepRunner._merge_spool`:
        device subtrees graft under the fleet ``campaign`` span in
        device-index order, worker metric snapshots merge (with the
        per-item ``shard.*`` gauges folded into a
        ``fleet.device_wall_s`` histogram), and per-device wall/records
        telemetry lands in ``dataset.metadata["telemetry"]``.  Devices
        satisfied from a checkpoint spooled nothing — they did no work
        this run.
        """
        obs = ObsConfig(trace=tracer.enabled, metrics=metrics.enabled,
                        spool_dir=spool_dir)
        device_rows: List[Dict[str, object]] = []
        total_records = 0
        for device in devices:
            if tracer.enabled:
                trace_path = obs.trace_path(device.index)
                if trace_path.exists():
                    tracer.graft(read_jsonl(trace_path),
                                 parent_id=campaign.span_id)
            metrics_path = obs.metrics_path(device.index)
            if not metrics_path.exists():
                continue
            snapshot = MetricsRegistry.read_snapshot(metrics_path)
            gauges = snapshot.get("gauges", {})
            device_wall = gauges.pop("shard.wall_s", None)
            device_records = gauges.pop("shard.records", None)
            if metrics.enabled:
                metrics.merge_snapshot(snapshot)
                if device_wall:
                    metrics.histogram("fleet.device_wall_s").observe(
                        device_wall)
            row: Dict[str, object] = {
                "device": device.index,
                "seed": device.seed,
                "wall_s": device_wall,
            }
            if device_records is not None:
                total_records += int(device_records)
                row["records"] = int(device_records)
                if device_wall:
                    row["rows_per_s"] = round(
                        device_records / device_wall, 3)
            device_rows.append(row)
        dataset.metadata["telemetry"] = {
            "kind": "fleet",
            "jobs": self._config.jobs,
            "wall_s": round(wall_s, 6),
            "records": total_records,
            "rows_per_s": (round(total_records / wall_s, 3)
                           if wall_s > 0 else None),
            "devices": device_rows,
        }

    def _reduce(self, devices, results, fingerprint) -> FleetResult:
        config = self._config
        completed = [device for device in devices
                     if device.index in results]
        summaries = [device_summary(device, results[device.index])
                     for device in completed]
        merged = CharacterizationDataset.merged(
            (results[device.index] for device in completed),
            metadata={
                "fleet": {
                    "devices": config.devices,
                    "completed": len(completed),
                    "base_seed": config.base_seed,
                    "fingerprint": fingerprint,
                },
            })
        return FleetResult(dataset=merged, devices=summaries,
                           population=population_summary(summaries),
                           errors=self._errors, fingerprint=fingerprint)

"""Single- and double-sided RowHammer primitives.

The paper's main access pattern is **double-sided** RowHammer (§3.1):
alternate activations of the two rows physically adjacent to a victim.
One *hammer* is one pair of activations (one per aggressor).  The paper
also uses **single-sided** hammering — repeatedly activating one row — to
reverse-engineer subarray boundaries (footnote 3).

Both primitives are built from the same ingredients:

1. *Prepare*: write the data pattern into the victim, the aggressors, and
   the surrounding rows (V±[2:8], Table 1), addressing *physical*
   neighbourhoods through the reverse-engineered row mapping.
2. *Hammer*: a test program that loops ACT/PRE over the aggressor(s).
3. *Readback*: read the victim row(s) and count flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


from repro.bender.host import HostInterface
from repro.bender.program import Program, ProgramBuilder
from repro.core.patterns import DataPattern
from repro.core.rowdata import FlipReport, byte_fill_bits, flip_report
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError
from repro.obs import get_metrics, get_tracer
from repro.verify.program import VerifyContext, assert_verified

#: Physical radius of rows initialized around the victim (Table 1 uses
#: V±[2:8] around the aggressors at V±1).
NEIGHBORHOOD_RADIUS = 8

#: Interned full-row fill payloads, keyed by (fill byte, row bytes).
#: Reusing the identical bytes object keeps program-cache keys cheap
#: (CPython caches a bytes object's hash after the first computation).
_FILL_ROWS: Dict[tuple, bytes] = {}


def _fill_row(fill: int, row_bytes: int) -> bytes:
    key = (fill, row_bytes)
    cached = _FILL_ROWS.get(key)
    if cached is None:
        cached = _FILL_ROWS[key] = bytes([fill]) * row_bytes
    return cached


@dataclass(frozen=True)
class HammerOutcome:
    """Result of hammering and reading back one victim row."""

    victim: DramAddress
    pattern: DataPattern
    hammer_count: int
    report: FlipReport
    duration_s: float

    @property
    def flips(self) -> int:
        return self.report.flips

    @property
    def ber(self) -> float:
        return self.report.ber


def physical_neighborhood(mapper: RowAddressMapper, victim_row: int,
                          total_rows: int,
                          radius: int = NEIGHBORHOOD_RADIUS
                          ) -> Dict[int, int]:
    """Map physical offset -> logical row for the victim's surroundings.

    Offsets whose physical rows fall outside the bank are omitted (the
    paper's first/last rows simply have a truncated neighbourhood).
    """
    physical_victim = mapper.logical_to_physical(victim_row)
    neighborhood: Dict[int, int] = {}
    for offset in range(-radius, radius + 1):
        physical = physical_victim + offset
        if 0 <= physical < total_rows:
            neighborhood[offset] = mapper.physical_to_logical(physical)
    return neighborhood


def prepare_neighborhood(host: HostInterface, mapper: RowAddressMapper,
                         victim: DramAddress, pattern: DataPattern,
                         radius: int = NEIGHBORHOOD_RADIUS) -> Dict[int, int]:
    """Write the data pattern into the victim's physical neighbourhood.

    Returns the physical-offset -> logical-row map used, so callers can
    find the aggressors (offsets ±1) without re-deriving it.
    """
    geometry = host.device.geometry
    neighborhood = physical_neighborhood(
        mapper, victim.row, geometry.rows, radius)
    # One program for the whole neighbourhood: same ACT/WRROW/PRE
    # stream as per-row write_row calls, but the shape caches once per
    # (pattern, truncation) and the fast path batches the triads.
    items = [(logical_row,
              _fill_row(pattern.byte_for_offset(offset), geometry.row_bytes))
             for offset, logical_row in sorted(neighborhood.items())]
    host.write_rows(victim.channel, victim.pseudo_channel, victim.bank,
                    items)
    return neighborhood


def build_hammer_program(victim: DramAddress, aggressor_rows: Sequence[int],
                         hammer_count: int) -> Program:
    """LOOP hammer_count { ACT/PRE each aggressor } as a test program."""
    if hammer_count < 0:
        raise ExperimentError(f"hammer_count must be >= 0, got {hammer_count}")
    if not aggressor_rows:
        raise ExperimentError("need at least one aggressor row")
    builder = ProgramBuilder()
    if hammer_count > 0:
        with builder.loop(hammer_count):
            for row in aggressor_rows:
                builder.act(victim.channel, victim.pseudo_channel,
                            victim.bank, row)
                builder.pre(victim.channel, victim.pseudo_channel,
                            victim.bank)
    return builder.build()


def verify_hammer_program(program: Program, host: HostInterface,
                          victim: DramAddress,
                          aggressor_rows: Sequence[int],
                          hammer_count: int) -> None:
    """Statically verify a hammer payload before it touches the device.

    Checks DRAM protocol and timing against the host's parameters and —
    the property dynamic execution cannot check — that every declared
    aggressor row is activated exactly ``hammer_count`` times, so BER
    and HC_first are attributed to the hammer count the experiment
    records.  Raises :class:`~repro.errors.VerificationError`.
    """
    expected = {(victim.channel, victim.pseudo_channel, victim.bank, row):
                hammer_count for row in aggressor_rows}
    assert_verified(program,
                    VerifyContext.for_host(host, expected_hammers=expected),
                    what=f"hammer program for {victim}")


class DoubleSidedHammer:
    """The paper's primary access pattern (§3.1)."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 verify: bool = True) -> None:
        self._host = host
        self._mapper = mapper
        self._verify = verify

    def aggressors_of(self, victim: DramAddress) -> List[int]:
        """Logical rows physically adjacent to the victim."""
        return list(self._mapper.physical_neighbors(victim.row))

    def run(self, victim: DramAddress, pattern: DataPattern,
            hammer_count: int, prepare: bool = True) -> HammerOutcome:
        """Prepare, hammer ``hammer_count`` pairs, read back the victim.

        Args:
            victim: the victim row (logical address).
            pattern: Table 1 data pattern for the neighbourhood fill.
            hammer_count: activation pairs (one ACT per aggressor each).
            prepare: skip the data-fill step when False (caller already
                initialized the neighbourhood — used by search loops that
                restore state themselves).
        """
        host = self._host
        geometry = host.device.geometry
        tracer = get_tracer()
        metrics = get_metrics()
        if prepare:
            with tracer.span("prepare"):
                prepare_neighborhood(host, self._mapper, victim, pattern)
        aggressors = self.aggressors_of(victim)
        if len(aggressors) < 2:
            raise ExperimentError(
                f"victim {victim} has {len(aggressors)} physical "
                "neighbour(s); double-sided hammering needs two")
        verify = None
        if self._verify:
            def verify(program: Program) -> None:
                verify_hammer_program(program, host, victim, aggressors,
                                      hammer_count)
        with tracer.span("hammer", hammers=hammer_count):
            # Through the engine: the program *shape* (everything but
            # the aggressor rows) is assembled and verified once, then
            # re-instantiated per victim by patching the ACT rows.
            execution = host.cached_run(
                ("hammer", victim.channel, victim.pseudo_channel,
                 victim.bank, len(aggressors), hammer_count),
                tuple(aggressors) if hammer_count else (),
                lambda: build_hammer_program(victim, aggressors,
                                             hammer_count),
                verify=verify)
        duration_s = host.device.timing.seconds(execution.duration_cycles)

        with tracer.span("readback"):
            read_bits = host.read_row(victim)
            expected = byte_fill_bits(pattern.victim_byte, geometry.row_bytes)
            report = flip_report(read_bits, expected)
        metrics.counter("hammer.double_sided").inc()
        metrics.counter("hammer.pairs").inc(hammer_count)
        metrics.counter("bitflips.observed").inc(report.flips)
        return HammerOutcome(victim=victim, pattern=pattern,
                             hammer_count=hammer_count,
                             report=report,
                             duration_s=duration_s)


class SingleSidedHammer:
    """Repeated activation of one aggressor row.

    Used by the subarray reverse engineering (footnote 3): an aggressor at
    a subarray edge induces flips in only one of its two logical-distance
    neighbours.
    """

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 verify: bool = True) -> None:
        self._host = host
        self._mapper = mapper
        self._verify = verify

    def run(self, aggressor: DramAddress, pattern: DataPattern,
            hammer_count: int,
            prepare: bool = True) -> Dict[int, FlipReport]:
        """Hammer one aggressor; read back both potential victims.

        Returns a dict keyed by physical offset (-1 and/or +1) with the
        flip report of each existing neighbour row.
        """
        host = self._host
        geometry = host.device.geometry
        mapper = self._mapper
        if prepare:
            # Around a single-sided aggressor, the "victims" are at ±1;
            # fill them with the victim byte and everything else per the
            # same convention, centered on the aggressor.
            physical_aggressor = mapper.logical_to_physical(aggressor.row)
            for offset in range(-NEIGHBORHOOD_RADIUS,
                                NEIGHBORHOOD_RADIUS + 1):
                physical = physical_aggressor + offset
                if not 0 <= physical < geometry.rows:
                    continue
                logical = mapper.physical_to_logical(physical)
                if offset == 0:
                    fill = pattern.aggressor_byte
                elif abs(offset) == 1:
                    fill = pattern.victim_byte
                else:
                    fill = pattern.surround_byte
                host.write_row(aggressor.with_row(logical),
                               bytes([fill]) * geometry.row_bytes)

        verify = None
        if self._verify:
            def verify(program: Program) -> None:
                verify_hammer_program(program, host, aggressor,
                                      [aggressor.row], hammer_count)
        with get_tracer().span("hammer", hammers=hammer_count,
                               single_sided=True):
            host.cached_run(
                ("hammer", aggressor.channel, aggressor.pseudo_channel,
                 aggressor.bank, 1, hammer_count),
                (aggressor.row,) if hammer_count else (),
                lambda: build_hammer_program(aggressor, [aggressor.row],
                                             hammer_count),
                verify=verify)

        expected = byte_fill_bits(pattern.victim_byte, geometry.row_bytes)
        physical_aggressor = mapper.logical_to_physical(aggressor.row)
        reports: Dict[int, FlipReport] = {}
        for offset in (-1, +1):
            physical = physical_aggressor + offset
            if not 0 <= physical < geometry.rows:
                continue
            logical = mapper.physical_to_logical(physical)
            read_bits = host.read_row(aggressor.with_row(logical))
            reports[offset] = flip_report(read_bits, expected)
        metrics = get_metrics()
        metrics.counter("hammer.single_sided").inc()
        metrics.counter("hammer.pairs").inc(hammer_count)
        metrics.counter("bitflips.observed").inc(
            sum(report.flips for report in reports.values()))
        return reports

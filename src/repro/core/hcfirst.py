"""HC_first search: the minimum hammer count causing the first bitflip.

``HC_first`` (paper §1/§3.1) is the minimum number of double-sided
hammers after which a victim row exhibits at least one bitflip.  Because
cell behaviour is reproducible — the same cell flips at the same
accumulated disturbance every time — flip count is monotone in hammer
count, and HC_first can be located exactly with an exponential ramp
followed by binary search.  Every probe is an independent, fully-prepared
hammering test (rewrite neighbourhood, hammer, read back), exactly what
the paper's infrastructure runs.

Searches are capped at 256K hammers (the paper's bound); rows with no
flip at the cap are reported as right-censored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bender.host import HostInterface
from repro.core.experiment import ExperimentConfig, check_time_budget
from repro.core.hammer import DoubleSidedHammer
from repro.core.patterns import DataPattern, STANDARD_PATTERNS
from repro.core.results import HcFirstRecord
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError


@dataclass(frozen=True)
class HcFirstOutcome:
    """Raw outcome of one HC_first search."""

    hc_first: Optional[int]
    probes: int
    flips_at_max: int
    max_hammers: int

    @property
    def censored(self) -> bool:
        return self.hc_first is None


class HcFirstSearch:
    """Exact HC_first via exponential ramp + binary search."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 config: Optional[ExperimentConfig] = None,
                 start_hammers: int = 2048) -> None:
        if start_hammers < 1:
            raise ExperimentError("start_hammers must be >= 1")
        self._host = host
        self._config = config or ExperimentConfig()
        self._hammer = DoubleSidedHammer(
            host, mapper, verify=self._config.verify_programs)
        self._start = start_hammers

    def _probe(self, victim: DramAddress, pattern: DataPattern,
               hammers: int) -> int:
        """Run one fully-prepared hammering test; returns the flip count."""
        outcome = self._hammer.run(victim, pattern, hammers)
        check_time_budget(outcome.duration_s, self._config.controls,
                          what=f"HC_first probe of {victim}")
        return outcome.report.flips

    def search(self, victim: DramAddress,
               pattern: DataPattern) -> HcFirstOutcome:
        """Find the exact HC_first of one victim under one pattern."""
        maximum = self._config.hcfirst_max_hammers
        probes = 0

        flips_at_max = self._probe(victim, pattern, maximum)
        probes += 1
        if flips_at_max == 0:
            return HcFirstOutcome(hc_first=None, probes=probes,
                                  flips_at_max=0, max_hammers=maximum)

        # Exponential ramp: find the first power-of-two step that flips.
        low = 0  # highest hammer count observed flip-free
        high = maximum  # lowest hammer count observed flipping
        hammers = min(self._start, maximum)
        while hammers < maximum:
            flips = self._probe(victim, pattern, hammers)
            probes += 1
            if flips > 0:
                high = hammers
                break
            low = hammers
            hammers *= 2

        # Binary search in (low, high].
        while high - low > 1:
            middle = (low + high) // 2
            flips = self._probe(victim, pattern, middle)
            probes += 1
            if flips > 0:
                high = middle
            else:
                low = middle
        return HcFirstOutcome(hc_first=high, probes=probes,
                              flips_at_max=flips_at_max,
                              max_hammers=maximum)

    # ------------------------------------------------------------------
    def record(self, victim: DramAddress, pattern: DataPattern,
               region: str = "", repetition: int = 0) -> HcFirstRecord:
        """Search and package as a dataset record."""
        outcome = self.search(victim, pattern)
        return HcFirstRecord(
            channel=victim.channel, pseudo_channel=victim.pseudo_channel,
            bank=victim.bank, row=victim.row, region=region,
            pattern=pattern.name, repetition=repetition,
            hc_first=outcome.hc_first, max_hammers=outcome.max_hammers,
            probes=outcome.probes, flips_at_max=outcome.flips_at_max)

    def record_patterns(self, victim: DramAddress,
                        patterns: Sequence[DataPattern] = STANDARD_PATTERNS,
                        region: str = "", repetition: int = 0
                        ) -> List[HcFirstRecord]:
        """HC_first of one victim under each pattern."""
        return [self.record(victim, pattern, region, repetition)
                for pattern in patterns]

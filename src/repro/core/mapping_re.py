"""Reverse engineering the logical-to-physical row address mapping.

RowHammer adjacency is physical, but the memory controller only sees
logical row addresses, and vendors remap the two.  The paper (§3.1,
following Orosa et al. MICRO'21) reverse-engineers the mapping before
hammering.  The technique: hammer one row hard, single-sided, and observe
*which logical rows* collect bitflips — those are its physical neighbours.
Repeating for a set of probe rows yields adjacency constraints that pin
down the mapping scheme.

The fit enumerates the family of mappings real devices use (an XOR
swizzle of low address bits gated by one control bit, including the
identity) and keeps the candidates consistent with every observation.
The search space is tiny (a few thousand candidates), the observations
are cheap, and the procedure is self-validating: if no candidate (or more
than one) survives, it raises instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.bender.host import HostInterface
from repro.core.patterns import ROWSTRIPE0, DataPattern
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress, RowAddressMapper
from repro.dram.geometry import HBM2Geometry
from repro.errors import ExperimentError


@dataclass(frozen=True)
class AdjacencyObservation:
    """One probe: hammering ``aggressor`` flipped rows in ``victims``."""

    aggressor: int
    victims: Tuple[int, ...]


def observe_adjacency(host: HostInterface, channel: int, pseudo_channel: int,
                      bank: int, aggressor_row: int,
                      window: int = 8,
                      hammer_count: int = 200_000,
                      pattern: DataPattern = ROWSTRIPE0
                      ) -> AdjacencyObservation:
    """Hammer one row single-sided; report which logical rows flipped.

    The window of logical rows around the aggressor is initialized with
    the victim byte, the aggressor with the aggressor byte; after
    hammering, every window row is read back and rows with flips are the
    aggressor's physical neighbours (as logical addresses).
    """
    geometry = host.device.geometry
    low = max(0, aggressor_row - window)
    high = min(geometry.rows - 1, aggressor_row + window)

    victim_fill = bytes([pattern.victim_byte]) * geometry.row_bytes
    aggressor_fill = bytes([pattern.aggressor_byte]) * geometry.row_bytes
    for row in range(low, high + 1):
        fill = aggressor_fill if row == aggressor_row else victim_fill
        host.write_row(DramAddress(channel, pseudo_channel, bank, row), fill)

    builder = host.builder()
    with builder.loop(hammer_count):
        builder.act(channel, pseudo_channel, bank, aggressor_row)
        builder.pre(channel, pseudo_channel, bank)
    host.run(builder.build())

    expected = byte_fill_bits(pattern.victim_byte, geometry.row_bytes)
    victims: List[int] = []
    for row in range(low, high + 1):
        if row == aggressor_row:
            continue
        read_bits = host.read_row(
            DramAddress(channel, pseudo_channel, bank, row))
        if count_flips(read_bits, expected) > 0:
            victims.append(row)
    return AdjacencyObservation(aggressor=aggressor_row,
                                victims=tuple(victims))


def _candidate_mappers(geometry: HBM2Geometry,
                       max_swizzle_bits: int = 8) -> List[RowAddressMapper]:
    """The mapping family to search: identity + single-control XOR swizzles."""
    candidates = [RowAddressMapper.identity(geometry)]
    control_bits = []
    bit = 1
    while bit < geometry.rows:
        control_bits.append(bit)
        bit <<= 1
    swizzle_limit = min(1 << max_swizzle_bits, geometry.rows)
    for control_bit in control_bits:
        for swizzle_mask in range(1, swizzle_limit):
            if swizzle_mask & control_bit:
                continue
            candidates.append(RowAddressMapper(
                geometry, control_bit=control_bit,
                swizzle_mask=swizzle_mask))
    return candidates


def _consistent(mapper: RowAddressMapper,
                observation: AdjacencyObservation,
                rows: int) -> bool:
    """Whether a candidate mapping explains one observation.

    Every flipped row must be a physical +-1 neighbour of the aggressor.
    Zero-victim observations are treated as uninformative rather than
    contradictory: a probe can legitimately come back empty when both
    neighbours are unusually robust (e.g. in the protected last
    subarray), and subarray-edge aggressors flip only one side.
    :func:`reverse_engineer_mapping` separately requires that enough
    probes were informative.
    """
    observed = set(observation.victims)
    if not observed:
        return True
    neighbors: Set[int] = set(mapper.physical_neighbors(
        observation.aggressor))
    return observed.issubset(neighbors)


def reverse_engineer_mapping(host: HostInterface, channel: int = 0,
                             pseudo_channel: int = 0, bank: int = 0,
                             probe_rows: Sequence[int] = (),
                             window: int = 8,
                             hammer_count: int = 200_000
                             ) -> RowAddressMapper:
    """Discover the row mapping from RowHammer adjacency observations.

    Args:
        host: testing-station interface.
        channel / pseudo_channel / bank: where to probe (the scheme is
            uniform across banks, as on real devices).
        probe_rows: aggressors to hammer; defaults to a spread designed
            to exercise every low address bit in both states.
        window: logical rows scanned around each aggressor.
        hammer_count: single-sided hammers per probe (must be far above
            the worst-case HC_first so both victims flip reliably).

    Raises:
        ExperimentError: if no candidate — or more than one — explains
            every observation (ambiguity means more probes are needed).
    """
    geometry = host.device.geometry
    if not probe_rows:
        # A candidate with control bit b is only exercised by probes
        # whose address has bit b set; and because XOR swizzles are
        # involutions, probes right at a block start can coincidentally
        # match the identity's neighbourhoods.  A dense run of probes
        # *inside* each power-of-two block (plus the row just below it)
        # refutes every wrong candidate, even when a subarray boundary
        # hides one victim side.
        rows = set(range(16, 32))
        bit = 1
        while bit < geometry.rows:
            for candidate in range(bit - 1, bit + 10):
                if 1 <= candidate < geometry.rows - 1:
                    rows.add(candidate)
            # Masks with high bits shift whole 16/32/...-row groups;
            # their adjacency differs from the truth only at group
            # boundaries inside the bit's block, so probe the boundary
            # pairs at every multiple of 16 there (masks are < 256, so
            # one 256-row stretch per control bit suffices).
            stretch_end = min(2 * bit, bit + 256, geometry.rows)
            for boundary in range(bit + 16, stretch_end + 1, 16):
                for candidate in (boundary - 1, boundary):
                    if 1 <= candidate < geometry.rows - 1:
                        rows.add(candidate)
            bit <<= 1
        probe_rows = sorted(rows)
    observations = [
        observe_adjacency(host, channel, pseudo_channel, bank, row,
                          window=window, hammer_count=hammer_count)
        for row in probe_rows
    ]
    informative = sum(1 for observation in observations
                      if observation.victims)
    if informative < max(4, len(observations) // 2):
        raise ExperimentError(
            f"only {informative}/{len(observations)} probes produced "
            "bitflips; raise hammer_count or pick more vulnerable rows")

    survivors = [
        mapper for mapper in _candidate_mappers(geometry)
        if all(_consistent(mapper, observation, geometry.rows)
               for observation in observations)
    ]
    if not survivors:
        raise ExperimentError(
            "no candidate mapping explains the adjacency observations; "
            "the device uses a scheme outside the searched family")
    if len(survivors) > 1:
        # Several candidates can survive while still being *adjacency
        # equivalent* — e.g. a whole-block XOR shift whose only
        # distinguishing rows sit on subarray boundaries, where the
        # single-sided probe is blind.  RowHammer methodology consumes
        # only adjacency (which logical rows to hammer around a victim),
        # so equivalence on that relation is full success; genuine
        # disagreement means more probes are needed.
        reference = survivors[0]
        sample = list(range(1, geometry.rows - 1,
                            max(1, geometry.rows // 4096)))
        for other in survivors[1:]:
            if any(sorted(reference.physical_neighbors(row)) !=
                   sorted(other.physical_neighbors(row))
                   for row in sample):
                raise ExperimentError(
                    f"{len(survivors)} adjacency-inequivalent mappings "
                    "explain the observations; add probe rows to "
                    "disambiguate")
    return survivors[0]

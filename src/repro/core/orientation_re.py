"""Cell-orientation analysis from RowHammer flip directions.

DRAM cells come in two orientations: *true cells* store logical 1 as a
charged capacitor, *anti cells* store logical 0 charged.  Charge-loss
mechanisms (RowHammer, retention decay) only flip a cell away from its
charged value, which makes flip *directions* a reverse-engineering side
channel (Kim+ ISCA'14 §6.2, Orosa+ MICRO'21):

* under Rowstripe0 (victim 0x00) every RowHammer flip is 0 -> 1, and the
  flipped cells are **anti cells**;
* under Rowstripe1 (victim 0xFF) every flip is 1 -> 0 — **true cells**.

Comparing per-channel flip budgets between the two patterns therefore
measures the channel's orientation asymmetry: how much more vulnerable
its anti-cell population is than its true-cell population.  This is the
microscopic explanation of observation O7 (channel 0 prefers Rowstripe0,
other dies prefer Rowstripe1), and a tool the paper's future-work
"richer data patterns" study would lean on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bender.host import HostInterface
from repro.core.hammer import DoubleSidedHammer
from repro.core.patterns import ROWSTRIPE0, ROWSTRIPE1
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import AnalysisError, ExperimentError


@dataclass(frozen=True)
class OrientationObservation:
    """Flip-direction counts for one victim row."""

    victim: DramAddress
    #: 0 -> 1 flips under Rowstripe0 (anti-cell flips).
    anti_flips: int
    #: 1 -> 0 flips under Rowstripe1 (true-cell flips).
    true_flips: int
    #: Wrong-direction flips (must be zero; nonzero indicates the flip
    #: mechanism is not pure charge loss — a model/methodology error).
    anomalous_flips: int


@dataclass(frozen=True)
class ChannelOrientationProfile:
    """Aggregated orientation asymmetry of one channel."""

    channel: int
    rows_measured: int
    anti_flips: int
    true_flips: int
    anomalous_flips: int

    @property
    def total_flips(self) -> int:
        return self.anti_flips + self.true_flips

    @property
    def anti_fraction(self) -> float:
        """Share of the channel's flip budget carried by anti cells.

        0.5 means orientation-balanced vulnerability; above 0.5 the
        channel prefers Rowstripe0, below it Rowstripe1 — directly
        predicting which rowstripe pattern is the channel's WCDP.
        """
        if self.total_flips == 0:
            raise AnalysisError(
                f"channel {self.channel}: no flips to analyse")
        return self.anti_flips / self.total_flips

    @property
    def preferred_rowstripe(self) -> str:
        return "Rowstripe0" if self.anti_fraction >= 0.5 else "Rowstripe1"


class OrientationAnalysis:
    """Measures per-channel orientation asymmetry via flip directions."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 hammer_count: int = 256 * 1024) -> None:
        if hammer_count <= 0:
            raise ExperimentError("hammer_count must be positive")
        self._host = host
        self._hammer = DoubleSidedHammer(host, mapper)
        self._mapper = mapper
        self._hammer_count = hammer_count

    def observe_row(self, victim: DramAddress) -> OrientationObservation:
        """Hammer one victim under both rowstripe patterns; classify
        every flip by direction."""
        rs0 = self._hammer.run(victim, ROWSTRIPE0, self._hammer_count)
        rs1 = self._hammer.run(victim, ROWSTRIPE1, self._hammer_count)
        # Under Rowstripe0 the victim holds 0x00: legitimate flips read 1.
        anti = rs0.report.zero_to_one_count
        anomalous = rs0.report.one_to_zero_count
        # Under Rowstripe1 the victim holds 0xFF: legitimate flips read 0.
        true = rs1.report.one_to_zero_count
        anomalous += rs1.report.zero_to_one_count
        return OrientationObservation(victim=victim, anti_flips=anti,
                                      true_flips=true,
                                      anomalous_flips=anomalous)

    def profile_channel(self, channel: int, rows: Sequence[int],
                        pseudo_channel: int = 0,
                        bank: int = 0) -> ChannelOrientationProfile:
        """Aggregate flip directions over sampled rows of one channel."""
        anti = true = anomalous = measured = 0
        for row in rows:
            victim = DramAddress(channel, pseudo_channel, bank, row)
            if len(self._mapper.physical_neighbors(row)) < 2:
                continue
            observation = self.observe_row(victim)
            anti += observation.anti_flips
            true += observation.true_flips
            anomalous += observation.anomalous_flips
            measured += 1
        return ChannelOrientationProfile(
            channel=channel, rows_measured=measured, anti_flips=anti,
            true_flips=true, anomalous_flips=anomalous)

    def profile_channels(self, channels: Sequence[int],
                         rows: Sequence[int]
                         ) -> Dict[int, ChannelOrientationProfile]:
        """Per-channel orientation profiles over the same row sample."""
        return {channel: self.profile_channel(channel, rows)
                for channel in channels}


def render_orientation_table(
        profiles: Dict[int, ChannelOrientationProfile]) -> str:
    """Aligned text table of per-channel orientation asymmetry."""
    header = (f"{'ch':>3} {'rows':>5} {'anti flips':>11} "
              f"{'true flips':>11} {'anti frac':>10} {'prefers':>11}")
    lines = [header, "-" * len(header)]
    for channel, profile in sorted(profiles.items()):
        lines.append(
            f"{channel:>3} {profile.rows_measured:>5} "
            f"{profile.anti_flips:>11} {profile.true_flips:>11} "
            f"{profile.anti_fraction:>10.3f} "
            f"{profile.preferred_rowstripe:>11}")
    return "\n".join(lines)

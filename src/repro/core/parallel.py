"""Parallel sweep executor: deterministic sharding over worker processes.

The Figs. 3-6 campaigns are embarrassingly parallel across (channel,
pseudo channel, bank, region): the keyed counter-based RNG
(:mod:`repro.rng`) gives every cell identical physical properties in
every process, and each measurement re-initializes its victim
neighbourhood before hammering, so per-shard results do not depend on
what other shards ran before — the same property the paper's FPGA
infrastructure exploits by characterizing many banks concurrently.

:class:`ShardPlan` splits a :class:`~repro.core.sweeps.SweepConfig` into
single-(channel, pseudo channel, bank, region) work units *in the serial
nesting order*; :class:`ParallelSweepRunner` fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor` (each worker rebuilds
its own :class:`~repro.bender.board.BenderBoard` from a picklable
:class:`~repro.bender.board.BoardSpec`, so no live simulator state
crosses the process boundary) and merges the shard datasets back in plan
order.  Because merge order equals serial iteration order and the WCDP
synthesis runs on the merged dataset, a parallel sweep produces a
byte-identical exported dataset to the serial
:class:`~repro.core.sweeps.SpatialSweep` for the same spec and config.

Observability: when the parent process has a tracer or metrics registry
installed (:mod:`repro.obs`), each worker collects its own per-shard
span tree and metric snapshot, spools them to disk, and the runner
merges them back *in plan order* — so a ``jobs=N`` campaign yields one
coherent trace whose shard subtrees sit under a single ``campaign``
span, one aggregated metrics snapshot, and per-shard wall-time /
throughput telemetry under ``dataset.metadata["telemetry"]``.  With
observability disabled (the default) none of this machinery runs.

Fault tolerance: a shard whose worker raises, crashes, or times out is
retried once on a fresh pool; a shard that fails again is reported as a
structured :class:`ShardError` (and under ``metadata["shard_errors"]``)
instead of killing the campaign.  Workers wrap their failures in
:class:`ShardRunError`, carrying the shard's wall time and metric
snapshot back to the parent, so a failed shard is diagnosable without
rerunning it.

Limitations: the parallel path always uses the device's own row mapping
(a custom ``mapper`` cannot cross the fork); pass ``jobs=1`` to sweep
with a reverse-engineered mapper.
"""

from __future__ import annotations

import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bender.board import BenderBoard, BoardSpec
from repro.core.results import CharacterizationDataset
from repro.core.sweeps import (
    ProgressCallback,
    SpatialSweep,
    SweepConfig,
    sweep_metadata,
)
from repro.core.wcdp import append_wcdp_records
from repro.errors import ExperimentError, ReproError
from repro.obs import (
    NOOP_TRACER,
    MetricsRegistry,
    ObsConfig,
    Tracer,
    get_metrics,
    get_tracer,
    read_jsonl,
    use_metrics,
    use_tracer,
)

__all__ = [
    "ShardError",
    "ShardPlan",
    "ShardRunError",
    "SweepShard",
    "ParallelSweepRunner",
    "run_shard",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepShard:
    """One independent work unit: a single (ch, pc, bank, region) cell.

    ``config`` is the parent sweep config narrowed to this cell, with
    WCDP synthesis disabled (it runs once, on the merged dataset) and
    ``jobs`` forced to 1 (a shard is the unit of parallelism).
    """

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    config: SweepConfig

    def describe(self) -> str:
        return (f"ch{self.channel} pc{self.pseudo_channel} "
                f"ba{self.bank} region={self.region}")


class ShardRunError(ReproError):
    """A shard failed in its worker; carries the worker-side diagnosis.

    Raised by :func:`run_shard` so the parent learns not just *that* the
    shard failed but how long it ran and what its metric snapshot looked
    like at the point of failure (commands issued, hammers, settle
    iterations, ...) — enough to diagnose most failures without
    rerunning the shard.  Picklable: crosses the process pool boundary
    intact.
    """

    def __init__(self, original_type: str, message: str,
                 wall_s: float, metrics: Dict[str, Dict[str, object]]
                 ) -> None:
        super().__init__(original_type, message, wall_s, metrics)
        self.original_type = original_type
        self.message = message
        self.wall_s = wall_s
        self.metrics = metrics

    def __str__(self) -> str:
        return f"{self.original_type}: {self.message}"


@dataclass(frozen=True)
class ShardError:
    """A shard that failed after exhausting its retries.

    ``wall_s`` and ``metrics`` hold the originating worker's wall time
    and metric snapshot from the *last* failing attempt when the worker
    lived long enough to report them (None for hard crashes/timeouts).
    """

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    error_type: str
    message: str
    attempts: int
    wall_s: Optional[float] = None
    metrics: Optional[Dict[str, Dict[str, object]]] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "channel": self.channel,
            "pseudo_channel": self.pseudo_channel,
            "bank": self.bank,
            "region": self.region,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
            "metrics": self.metrics,
        }

    @classmethod
    def from_failure(cls, shard: SweepShard, error: BaseException,
                     attempts: int) -> "ShardError":
        if isinstance(error, ShardRunError):
            return cls(index=shard.index, channel=shard.channel,
                       pseudo_channel=shard.pseudo_channel,
                       bank=shard.bank, region=shard.region,
                       error_type=error.original_type,
                       message=error.message, attempts=attempts,
                       wall_s=error.wall_s, metrics=error.metrics)
        return cls(index=shard.index, channel=shard.channel,
                   pseudo_channel=shard.pseudo_channel, bank=shard.bank,
                   region=shard.region,
                   error_type=type(error).__name__, message=str(error),
                   attempts=attempts)


@dataclass(frozen=True)
class ShardPlan:
    """All shards of one sweep, in the serial path's iteration order.

    The serial :meth:`SpatialSweep.run` nests channel -> pseudo channel
    -> bank -> region; concatenating shard datasets in this plan's order
    therefore reproduces the serial record order exactly.
    """

    shards: Tuple[SweepShard, ...]

    @classmethod
    def from_config(cls, config: SweepConfig) -> "ShardPlan":
        shards: List[SweepShard] = []
        for channel in config.channels:
            for pseudo_channel in config.pseudo_channels:
                for bank in config.banks:
                    for region in config.regions:
                        shard_config = replace(
                            config,
                            channels=(channel,),
                            pseudo_channels=(pseudo_channel,),
                            banks=(bank,),
                            regions=(region,),
                            append_wcdp=False,
                            jobs=1,
                        )
                        shards.append(SweepShard(
                            index=len(shards), channel=channel,
                            pseudo_channel=pseudo_channel, bank=bank,
                            region=region, config=shard_config))
        return cls(shards=tuple(shards))

    def with_obs(self, obs: ObsConfig) -> Tuple[SweepShard, ...]:
        """The plan's shards with ``obs`` injected into every config."""
        return tuple(replace(shard, config=replace(shard.config, obs=obs))
                     for shard in self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process station cache: one board per (spec, experiment config),
#: reused across the shards a worker executes so the (deterministic but
#: not free) device construction and PID settle are paid once.
_WORKER_STATIONS: Dict[bytes, BenderBoard] = {}


def _worker_station(spec: BoardSpec, config: SweepConfig) -> BenderBoard:
    from repro.core.experiment import apply_controls

    key = pickle.dumps((spec, config.experiment))
    board = _WORKER_STATIONS.get(key)
    if board is None:
        board = spec.build()
        # Apply the interference controls exactly once per station, as
        # the serial sweep does: re-settling the PID rig between shards
        # could land on a fractionally different plant temperature and
        # break bit-for-bit equality with the serial path.
        apply_controls(board, config.experiment)
        _WORKER_STATIONS[key] = board
    return board


def run_shard(spec: BoardSpec, shard: SweepShard) -> CharacterizationDataset:
    """Execute one shard in the current process and return its dataset.

    The default shard runner submitted to worker processes; also usable
    inline (e.g. by tests) since it has no pool-specific state.

    Every shard runs under its own metrics registry (cheap enough to be
    always-on) so that a *failing* shard can report its wall time and
    metric snapshot via :class:`ShardRunError`.  When the shard config
    carries an :class:`~repro.obs.ObsConfig` the collected trace/metrics
    are additionally spooled to per-shard files for the parent to merge.
    """
    obs = shard.config.obs
    want_trace = bool(obs is not None and obs.trace)
    registry = MetricsRegistry()
    tracer = Tracer() if want_trace else NOOP_TRACER
    started = time.perf_counter()
    try:
        with use_metrics(registry), use_tracer(tracer):
            with tracer.span("shard", shard=shard.index,
                             channel=shard.channel,
                             pseudo_channel=shard.pseudo_channel,
                             bank=shard.bank, region=shard.region):
                board = _worker_station(spec, shard.config)
                sweep = SpatialSweep(board, shard.config)
                dataset = sweep.run(apply_interference_controls=False)
    except Exception as error:
        wall_s = time.perf_counter() - started
        registry.gauge("shard.wall_s").set(wall_s)
        raise ShardRunError(type(error).__name__, str(error), wall_s,
                            registry.snapshot()) from error
    wall_s = time.perf_counter() - started
    registry.gauge("shard.wall_s").set(wall_s)
    registry.gauge("shard.records").set(sum(dataset.record_counts()))
    if obs is not None and obs.active:
        if want_trace:
            tracer.write_jsonl(obs.trace_path(shard.index))
        registry.to_json(obs.metrics_path(shard.index))
    return dataset


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
ShardRunner = Callable[[BoardSpec, SweepShard], CharacterizationDataset]


class _ProgressAggregator:
    """Idempotent shard/record progress accounting across retry rounds.

    A retried shard reports completion at most once: completed shard
    indices live in a set and record totals accumulate only on first
    completion, so the ``completed/total`` figures a callback sees never
    double-count a shard that failed, was retried, and then finished
    (or — with a timeout — finished twice).
    """

    def __init__(self, total: int,
                 callback: Optional[ProgressCallback]) -> None:
        self._total = total
        self._callback = callback
        self._done: set = set()
        self._records = 0

    @property
    def records_done(self) -> int:
        return self._records

    def completed(self, shard: SweepShard,
                  dataset: CharacterizationDataset, attempt: int) -> bool:
        """Register a completed shard; returns True on first completion."""
        first = shard.index not in self._done
        if first:
            self._done.add(shard.index)
            self._records += sum(dataset.record_counts())
        self._emit(shard, "ok", attempt)
        return first

    def failed(self, shard: SweepShard, error: BaseException,
               attempt: int) -> None:
        name = (error.original_type if isinstance(error, ShardRunError)
                else type(error).__name__)
        self._emit(shard, f"FAILED ({name})", attempt)

    def _emit(self, shard: SweepShard, status: str, attempt: int) -> None:
        if self._callback is None:
            return
        retry = " retry" if attempt else ""
        self._callback(f"[{len(self._done)}/{self._total} shards{retry}] "
                       f"{shard.describe()} {status}")


class ParallelSweepRunner:
    """Runs one characterization campaign across worker processes.

    Drop-in equivalent of ``SpatialSweep(spec.build(), config).run()``:
    same dataset, same record order, same metadata — plus
    ``metadata["shard_errors"]`` when shards failed permanently and
    ``metadata["telemetry"]`` when observability is active.
    """

    def __init__(self, spec: BoardSpec, config: Optional[SweepConfig] = None,
                 *, shard_runner: Optional[ShardRunner] = None,
                 max_retries: int = 1, mp_context=None) -> None:
        """
        Args:
            spec: recipe each worker rebuilds its own board from.
            config: sweep axes/density; ``config.jobs`` sets the worker
                count (1 falls back to the serial path in-process).
            shard_runner: override for the per-shard entry point (must be
                picklable; used by fault-injection tests).
            max_retries: extra attempts for a failed shard (default 1).
            mp_context: multiprocessing context for the pool (default:
                the platform default).
        """
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        self._spec = spec
        self._config = config or SweepConfig()
        self._shard_runner: ShardRunner = shard_runner or run_shard
        self._max_retries = max_retries
        self._mp_context = mp_context
        self._errors: Tuple[ShardError, ...] = ()

    @property
    def config(self) -> SweepConfig:
        return self._config

    @property
    def errors(self) -> Tuple[ShardError, ...]:
        """Shards that failed permanently in the last :meth:`run`."""
        return self._errors

    # ------------------------------------------------------------------
    def run(self, progress: Optional[ProgressCallback] = None
            ) -> CharacterizationDataset:
        """Execute the campaign and return the merged dataset."""
        config = self._config
        self._errors = ()
        tracer = get_tracer()
        metrics = get_metrics()
        if config.jobs == 1:
            with tracer.span("campaign", jobs=1):
                sweep = SpatialSweep(self._spec.build(), config)
                return sweep.run(progress)

        plan = ShardPlan.from_config(config)
        obs_active = tracer.enabled or metrics.enabled
        spool = (tempfile.TemporaryDirectory(prefix="repro-obs-")
                 if obs_active else None)
        started = time.perf_counter()
        try:
            with tracer.span("campaign", jobs=config.jobs,
                             shards=len(plan)) as campaign:
                if spool is not None:
                    shards: Sequence[SweepShard] = plan.with_obs(ObsConfig(
                        trace=tracer.enabled, metrics=metrics.enabled,
                        spool_dir=spool.name))
                else:
                    shards = plan.shards

                results: Dict[int, CharacterizationDataset] = {}
                failures: Dict[int, BaseException] = {}
                aggregator = _ProgressAggregator(len(plan), progress)
                pending = list(shards)
                attempts = 1 + self._max_retries
                for attempt in range(attempts):
                    if not pending:
                        break
                    if attempt:
                        metrics.counter("sweep.shard_retries").inc(
                            len(pending))
                    # Retry rounds isolate each shard in its own single-
                    # worker pool: one crashing worker breaks the whole
                    # shared pool and would otherwise burn innocent
                    # shards' retries with it.
                    pending = self._run_round(pending, results, failures,
                                              aggregator, attempt,
                                              isolate=attempt > 0)
                if pending:
                    metrics.counter("sweep.shard_failures").inc(
                        len(pending))

                self._errors = tuple(
                    ShardError.from_failure(shard, failures[shard.index],
                                            attempts)
                    for shard in sorted(pending,
                                        key=lambda shard: shard.index))

                dataset = CharacterizationDataset.merged(
                    (results[shard.index] for shard in plan.shards
                     if shard.index in results),
                    metadata=sweep_metadata(config))
                if self._errors:
                    dataset.metadata["shard_errors"] = [
                        error.as_dict() for error in self._errors]
                if config.append_wcdp:
                    with tracer.span("wcdp"):
                        append_wcdp_records(dataset)
                if spool is not None:
                    wall_s = time.perf_counter() - started
                    self._merge_spool(plan, results, spool.name, tracer,
                                      metrics, campaign, dataset, wall_s)
                return dataset
        finally:
            if spool is not None:
                spool.cleanup()

    # ------------------------------------------------------------------
    def _merge_spool(self, plan: ShardPlan,
                     results: Dict[int, CharacterizationDataset],
                     spool_dir: str, tracer, metrics, campaign,
                     dataset: CharacterizationDataset,
                     wall_s: float) -> None:
        """Fold worker spool files back into the parent collectors.

        Iterates in plan order, so the grafted shard subtrees appear in
        the merged trace exactly as the serial path would visit them,
        and builds the per-shard telemetry block.
        """
        obs = ObsConfig(trace=tracer.enabled, metrics=metrics.enabled,
                        spool_dir=spool_dir)
        shard_rows: List[Dict[str, object]] = []
        total_records = 0
        for shard in plan.shards:
            if tracer.enabled:
                trace_path = obs.trace_path(shard.index)
                if trace_path.exists():
                    tracer.graft(read_jsonl(trace_path),
                                 parent_id=campaign.span_id)
            metrics_path = obs.metrics_path(shard.index)
            if not metrics_path.exists():
                continue
            snapshot = MetricsRegistry.read_snapshot(metrics_path)
            gauges = snapshot.get("gauges", {})
            shard_wall = gauges.pop("shard.wall_s", None)
            shard_records = gauges.pop("shard.records", None)
            if metrics.enabled:
                metrics.merge_snapshot(snapshot)
                if shard_wall:
                    metrics.histogram("sweep.shard_wall_s").observe(
                        shard_wall)
            row: Dict[str, object] = {
                "shard": shard.index,
                "channel": shard.channel,
                "pseudo_channel": shard.pseudo_channel,
                "bank": shard.bank,
                "region": shard.region,
                "wall_s": shard_wall,
            }
            if shard_records is not None:
                total_records += int(shard_records)
                row["records"] = int(shard_records)
                if shard_wall:
                    row["rows_per_s"] = round(shard_records / shard_wall, 3)
            shard_rows.append(row)
        dataset.metadata["telemetry"] = {
            "jobs": self._config.jobs,
            "wall_s": round(wall_s, 6),
            "records": total_records,
            "rows_per_s": (round(total_records / wall_s, 3)
                           if wall_s > 0 else None),
            "shards": shard_rows,
        }

    # ------------------------------------------------------------------
    def _run_round(self, shards: List[SweepShard],
                   results: Dict[int, CharacterizationDataset],
                   failures: Dict[int, BaseException],
                   aggregator: _ProgressAggregator, attempt: int,
                   isolate: bool = False) -> List[SweepShard]:
        """Run ``shards`` on fresh pool(s); returns the ones that failed.

        ``isolate=True`` gives every shard its own single-worker pool so
        a crashing worker cannot fail neighbouring shards by breaking a
        shared pool (retry rounds use this).
        """
        if isolate:
            failed: List[SweepShard] = []
            for shard in shards:
                failed.extend(self._run_pool([shard], 1, results, failures,
                                             aggregator, attempt))
            return failed
        workers = min(self._config.jobs, len(shards))
        return self._run_pool(shards, workers, results, failures,
                              aggregator, attempt)

    def _run_pool(self, shards: List[SweepShard], workers: int,
                  results: Dict[int, CharacterizationDataset],
                  failures: Dict[int, BaseException],
                  aggregator: _ProgressAggregator,
                  attempt: int) -> List[SweepShard]:
        config = self._config
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=self._mp_context)
        failed: List[SweepShard] = []
        timed_out = False
        try:
            futures = [(shard,
                        executor.submit(self._shard_runner, self._spec, shard))
                       for shard in shards]
            for shard, future in futures:
                try:
                    # Collected in submission order: a later shard's wait
                    # includes earlier ones, so the timeout bounds the
                    # pool, not each shard exactly — good enough to keep
                    # one wedged worker from hanging the campaign.
                    dataset = future.result(timeout=config.shard_timeout_s)
                except Exception as error:
                    failures[shard.index] = error
                    failed.append(shard)
                    if isinstance(error, FuturesTimeoutError):
                        timed_out = True
                        get_metrics().counter("sweep.shard_timeouts").inc()
                    aggregator.failed(shard, error, attempt)
                else:
                    if shard.index not in results:
                        results[shard.index] = dataset
                    failures.pop(shard.index, None)
                    aggregator.completed(shard, dataset, attempt)
        finally:
            executor.shutdown(wait=not timed_out, cancel_futures=True)
        return failed


def run_sweep(config: SweepConfig, *, spec: Optional[BoardSpec] = None,
              board: Optional[BenderBoard] = None,
              progress: Optional[ProgressCallback] = None
              ) -> CharacterizationDataset:
    """Run a sweep serially or in parallel, per ``config.jobs``.

    Args:
        config: the sweep; ``jobs > 1`` selects the parallel executor.
        spec: board recipe — required for parallel runs (workers rebuild
            from it) and used to build the board for serial runs when no
            ``board`` is given.
        board: an existing station for the serial path (avoids a
            rebuild); ignored when ``jobs > 1``.
        progress: per-(bank, region) callback (serial) or per-shard
            completion callback (parallel).
    """
    if config.jobs > 1:
        if spec is None:
            raise ExperimentError(
                "a parallel sweep needs a BoardSpec so workers can "
                "rebuild the station (jobs="
                f"{config.jobs}, spec=None)")
        return ParallelSweepRunner(spec, config).run(progress)
    if board is None:
        if spec is None:
            raise ExperimentError("run_sweep needs a board or a spec")
        board = spec.build()
    return SpatialSweep(board, config).run(progress)

"""Parallel sweep executor: deterministic sharding over worker processes.

The Figs. 3-6 campaigns are embarrassingly parallel across (channel,
pseudo channel, bank, region): the keyed counter-based RNG
(:mod:`repro.rng`) gives every cell identical physical properties in
every process, and each measurement re-initializes its victim
neighbourhood before hammering, so per-shard results do not depend on
what other shards ran before — the same property the paper's FPGA
infrastructure exploits by characterizing many banks concurrently.

:class:`ShardPlan` splits a :class:`~repro.core.sweeps.SweepConfig` into
single-(channel, pseudo channel, bank, region) work units *in the serial
nesting order*; :class:`ParallelSweepRunner` fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor` (each worker rebuilds
its own :class:`~repro.bender.board.BenderBoard` from a picklable
:class:`~repro.bender.board.BoardSpec`, so no live simulator state
crosses the process boundary) and merges the shard datasets back in plan
order.  Because merge order equals serial iteration order and the WCDP
synthesis runs on the merged dataset, a parallel sweep produces a
byte-identical exported dataset to the serial
:class:`~repro.core.sweeps.SpatialSweep` for the same spec and config.

Fault tolerance: a shard whose worker raises, crashes, or times out is
retried once on a fresh pool; a shard that fails again is reported as a
structured :class:`ShardError` (and under ``metadata["shard_errors"]``)
instead of killing the campaign.

Limitations: the parallel path always uses the device's own row mapping
(a custom ``mapper`` cannot cross the fork); pass ``jobs=1`` to sweep
with a reverse-engineered mapper.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.bender.board import BenderBoard, BoardSpec
from repro.core.results import CharacterizationDataset
from repro.core.sweeps import (
    ProgressCallback,
    SpatialSweep,
    SweepConfig,
    sweep_metadata,
)
from repro.core.wcdp import append_wcdp_records
from repro.errors import ExperimentError

__all__ = [
    "ShardError",
    "ShardPlan",
    "SweepShard",
    "ParallelSweepRunner",
    "run_shard",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepShard:
    """One independent work unit: a single (ch, pc, bank, region) cell.

    ``config`` is the parent sweep config narrowed to this cell, with
    WCDP synthesis disabled (it runs once, on the merged dataset) and
    ``jobs`` forced to 1 (a shard is the unit of parallelism).
    """

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    config: SweepConfig

    def describe(self) -> str:
        return (f"ch{self.channel} pc{self.pseudo_channel} "
                f"ba{self.bank} region={self.region}")


@dataclass(frozen=True)
class ShardError:
    """A shard that failed after exhausting its retries."""

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    error_type: str
    message: str
    attempts: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "channel": self.channel,
            "pseudo_channel": self.pseudo_channel,
            "bank": self.bank,
            "region": self.region,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ShardPlan:
    """All shards of one sweep, in the serial path's iteration order.

    The serial :meth:`SpatialSweep.run` nests channel -> pseudo channel
    -> bank -> region; concatenating shard datasets in this plan's order
    therefore reproduces the serial record order exactly.
    """

    shards: Tuple[SweepShard, ...]

    @classmethod
    def from_config(cls, config: SweepConfig) -> "ShardPlan":
        shards: List[SweepShard] = []
        for channel in config.channels:
            for pseudo_channel in config.pseudo_channels:
                for bank in config.banks:
                    for region in config.regions:
                        shard_config = replace(
                            config,
                            channels=(channel,),
                            pseudo_channels=(pseudo_channel,),
                            banks=(bank,),
                            regions=(region,),
                            append_wcdp=False,
                            jobs=1,
                        )
                        shards.append(SweepShard(
                            index=len(shards), channel=channel,
                            pseudo_channel=pseudo_channel, bank=bank,
                            region=region, config=shard_config))
        return cls(shards=tuple(shards))

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process station cache: one board per (spec, experiment config),
#: reused across the shards a worker executes so the (deterministic but
#: not free) device construction and PID settle are paid once.
_WORKER_STATIONS: Dict[bytes, BenderBoard] = {}


def _worker_station(spec: BoardSpec, config: SweepConfig) -> BenderBoard:
    from repro.core.experiment import apply_controls

    key = pickle.dumps((spec, config.experiment))
    board = _WORKER_STATIONS.get(key)
    if board is None:
        board = spec.build()
        # Apply the interference controls exactly once per station, as
        # the serial sweep does: re-settling the PID rig between shards
        # could land on a fractionally different plant temperature and
        # break bit-for-bit equality with the serial path.
        apply_controls(board, config.experiment)
        _WORKER_STATIONS[key] = board
    return board


def run_shard(spec: BoardSpec, shard: SweepShard) -> CharacterizationDataset:
    """Execute one shard in the current process and return its dataset.

    The default shard runner submitted to worker processes; also usable
    inline (e.g. by tests) since it has no pool-specific state.
    """
    board = _worker_station(spec, shard.config)
    sweep = SpatialSweep(board, shard.config)
    return sweep.run(apply_interference_controls=False)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
ShardRunner = Callable[[BoardSpec, SweepShard], CharacterizationDataset]


class ParallelSweepRunner:
    """Runs one characterization campaign across worker processes.

    Drop-in equivalent of ``SpatialSweep(spec.build(), config).run()``:
    same dataset, same record order, same metadata — plus
    ``metadata["shard_errors"]`` when shards failed permanently.
    """

    def __init__(self, spec: BoardSpec, config: Optional[SweepConfig] = None,
                 *, shard_runner: Optional[ShardRunner] = None,
                 max_retries: int = 1, mp_context=None) -> None:
        """
        Args:
            spec: recipe each worker rebuilds its own board from.
            config: sweep axes/density; ``config.jobs`` sets the worker
                count (1 falls back to the serial path in-process).
            shard_runner: override for the per-shard entry point (must be
                picklable; used by fault-injection tests).
            max_retries: extra attempts for a failed shard (default 1).
            mp_context: multiprocessing context for the pool (default:
                the platform default).
        """
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        self._spec = spec
        self._config = config or SweepConfig()
        self._shard_runner: ShardRunner = shard_runner or run_shard
        self._max_retries = max_retries
        self._mp_context = mp_context
        self._errors: Tuple[ShardError, ...] = ()

    @property
    def config(self) -> SweepConfig:
        return self._config

    @property
    def errors(self) -> Tuple[ShardError, ...]:
        """Shards that failed permanently in the last :meth:`run`."""
        return self._errors

    # ------------------------------------------------------------------
    def run(self, progress: Optional[ProgressCallback] = None
            ) -> CharacterizationDataset:
        """Execute the campaign and return the merged dataset."""
        config = self._config
        self._errors = ()
        if config.jobs == 1:
            sweep = SpatialSweep(self._spec.build(), config)
            return sweep.run(progress)

        plan = ShardPlan.from_config(config)
        results: Dict[int, CharacterizationDataset] = {}
        failures: Dict[int, BaseException] = {}
        pending = list(plan.shards)
        attempts = 1 + self._max_retries
        for attempt in range(attempts):
            if not pending:
                break
            # Retry rounds isolate each shard in its own single-worker
            # pool: one crashing worker breaks the whole shared pool and
            # would otherwise burn innocent shards' retries with it.
            pending = self._run_round(pending, results, failures,
                                      progress, len(plan), attempt,
                                      isolate=attempt > 0)

        self._errors = tuple(
            ShardError(index=shard.index, channel=shard.channel,
                       pseudo_channel=shard.pseudo_channel, bank=shard.bank,
                       region=shard.region,
                       error_type=type(failures[shard.index]).__name__,
                       message=str(failures[shard.index]),
                       attempts=attempts)
            for shard in sorted(pending, key=lambda shard: shard.index))

        dataset = CharacterizationDataset.merged(
            (results[shard.index] for shard in plan.shards
             if shard.index in results),
            metadata=sweep_metadata(config))
        if self._errors:
            dataset.metadata["shard_errors"] = [
                error.as_dict() for error in self._errors]
        if config.append_wcdp:
            append_wcdp_records(dataset)
        return dataset

    # ------------------------------------------------------------------
    def _run_round(self, shards: List[SweepShard],
                   results: Dict[int, CharacterizationDataset],
                   failures: Dict[int, BaseException],
                   progress: Optional[ProgressCallback],
                   total: int, attempt: int,
                   isolate: bool = False) -> List[SweepShard]:
        """Run ``shards`` on fresh pool(s); returns the ones that failed.

        ``isolate=True`` gives every shard its own single-worker pool so
        a crashing worker cannot fail neighbouring shards by breaking a
        shared pool (retry rounds use this).
        """
        if isolate:
            failed: List[SweepShard] = []
            for shard in shards:
                failed.extend(self._run_pool([shard], 1, results, failures,
                                             progress, total, attempt))
            return failed
        workers = min(self._config.jobs, len(shards))
        return self._run_pool(shards, workers, results, failures,
                              progress, total, attempt)

    def _run_pool(self, shards: List[SweepShard], workers: int,
                  results: Dict[int, CharacterizationDataset],
                  failures: Dict[int, BaseException],
                  progress: Optional[ProgressCallback],
                  total: int, attempt: int) -> List[SweepShard]:
        config = self._config
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=self._mp_context)
        failed: List[SweepShard] = []
        timed_out = False
        try:
            futures = [(shard,
                        executor.submit(self._shard_runner, self._spec, shard))
                       for shard in shards]
            for shard, future in futures:
                status = "ok"
                try:
                    # Collected in submission order: a later shard's wait
                    # includes earlier ones, so the timeout bounds the
                    # pool, not each shard exactly — good enough to keep
                    # one wedged worker from hanging the campaign.
                    results[shard.index] = future.result(
                        timeout=config.shard_timeout_s)
                    failures.pop(shard.index, None)
                except Exception as error:
                    failures[shard.index] = error
                    failed.append(shard)
                    if isinstance(error, FuturesTimeoutError):
                        timed_out = True
                    status = f"FAILED ({type(error).__name__})"
                if progress is not None:
                    retry = " retry" if attempt else ""
                    progress(f"[{len(results)}/{total} shards{retry}] "
                             f"{shard.describe()} {status}")
        finally:
            executor.shutdown(wait=not timed_out, cancel_futures=True)
        return failed


def run_sweep(config: SweepConfig, *, spec: Optional[BoardSpec] = None,
              board: Optional[BenderBoard] = None,
              progress: Optional[ProgressCallback] = None
              ) -> CharacterizationDataset:
    """Run a sweep serially or in parallel, per ``config.jobs``.

    Args:
        config: the sweep; ``jobs > 1`` selects the parallel executor.
        spec: board recipe — required for parallel runs (workers rebuild
            from it) and used to build the board for serial runs when no
            ``board`` is given.
        board: an existing station for the serial path (avoids a
            rebuild); ignored when ``jobs > 1``.
        progress: per-(bank, region) callback (serial) or per-shard
            completion callback (parallel).
    """
    if config.jobs > 1:
        if spec is None:
            raise ExperimentError(
                "a parallel sweep needs a BoardSpec so workers can "
                "rebuild the station (jobs="
                f"{config.jobs}, spec=None)")
        return ParallelSweepRunner(spec, config).run(progress)
    if board is None:
        if spec is None:
            raise ExperimentError("run_sweep needs a board or a spec")
        board = spec.build()
    return SpatialSweep(board, config).run(progress)

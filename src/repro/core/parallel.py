"""Parallel sweep executor: deterministic sharding over worker processes.

The Figs. 3-6 campaigns are embarrassingly parallel across (channel,
pseudo channel, bank, region): the keyed counter-based RNG
(:mod:`repro.rng`) gives every cell identical physical properties in
every process, and each measurement re-initializes its victim
neighbourhood before hammering, so per-shard results do not depend on
what other shards ran before — the same property the paper's FPGA
infrastructure exploits by characterizing many banks concurrently.

:class:`ShardPlan` splits a :class:`~repro.core.sweeps.SweepConfig` into
single-(channel, pseudo channel, bank, region) work units *in the serial
nesting order*; :class:`ParallelSweepRunner` fans them out over a
:class:`concurrent.futures.ProcessPoolExecutor` (each worker rebuilds
its own :class:`~repro.bender.board.BenderBoard` from a picklable
:class:`~repro.bender.board.BoardSpec`, so no live simulator state
crosses the process boundary) and merges the shard datasets back in plan
order.  Because merge order equals serial iteration order and the WCDP
synthesis runs on the merged dataset, a parallel sweep produces a
byte-identical exported dataset to the serial
:class:`~repro.core.sweeps.SpatialSweep` for the same spec and config.

Observability: when the parent process has a tracer or metrics registry
installed (:mod:`repro.obs`), each worker collects its own per-shard
span tree and metric snapshot, spools them to disk, and the runner
merges them back *in plan order* — so a ``jobs=N`` campaign yields one
coherent trace whose shard subtrees sit under a single ``campaign``
span, one aggregated metrics snapshot, and per-shard wall-time /
throughput telemetry under ``dataset.metadata["telemetry"]``.  With
observability disabled (the default) none of this machinery runs.

Resilience: a shard whose worker raises, crashes, hangs past
``shard_timeout_s``, or returns a dataset failing its integrity
fingerprint is retried (with exponential backoff and deterministic
jitter between rounds) on the *same* warm pool — workers and their
engine sessions persist across attempts, and only a crash or a zombie
worker forces the backend to recycle the pool; a shard that exhausts
its retries is quarantined as a structured :class:`ShardError` — carrying
its attempt count, total backoff, and fault category — instead of
killing the campaign, and the dataset gains an exact
``metadata["coverage"]`` account of what was measured versus lost.
Timeouts are measured from when a shard's work item is *dispatched*,
not from pool submission, so a long queue behind a few slow shards is
not misread as a hang; when every worker is wedged, queued shards are
failed fast as ``starved`` rather than waiting out a timeout each.
Workers wrap their failures in :class:`ShardRunError`, carrying the
shard's wall time and metric snapshot back to the parent, so a failed
shard is diagnosable without rerunning it.

Checkpoint/resume: pass ``campaign_dir`` and every completed shard's
dataset is spooled there atomically (see
:mod:`repro.core.campaign`); re-running the same campaign against the
same directory — e.g. after the parent was killed — loads the
checkpointed shards instead of re-measuring them and produces a
byte-identical merged dataset to an uninterrupted run.

Limitations: the parallel path always uses the device's own row mapping
(a custom ``mapper`` cannot cross the fork); pass ``jobs=1`` to sweep
with a reverse-engineered mapper.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bender.board import BenderBoard, BoardSpec
from repro.core.campaign import (
    CampaignCheckpoint,
    campaign_fingerprint,
    checkpoint_events,
)
from repro.core.results import CharacterizationDataset
from repro.core.sweeps import (
    ProgressCallback,
    SpatialSweep,
    SweepConfig,
    sweep_metadata,
)
from repro.core.wcdp import append_wcdp_records
from repro.engine.plan import ExecutionPlan, item_coords
from repro.engine.pool import PoolBackend, run_shard
from repro.errors import (
    DiskSpaceError,
    ExperimentError,
    PoolDegradedError,
    ReproError,
    ShardFault,
)
from repro.faults.plan import FaultPlan, resolve_fault_spec
from repro.faults.thermal import ThermalGuard
from repro.obs import (
    MetricsRegistry,
    ObsConfig,
    get_events,
    get_metrics,
    get_tracer,
    read_jsonl,
)
from repro.obs.events import dataset_delta
from repro.rng import uniform_hash01

__all__ = [
    "ShardError",
    "ShardPlan",
    "ShardRunError",
    "SweepShard",
    "ParallelSweepRunner",
    "run_shard",
    "run_sweep",
]


@dataclass(frozen=True)
class SweepShard:
    """One independent work unit: a single (ch, pc, bank, region) cell.

    ``config`` is the parent sweep config narrowed to this cell, with
    WCDP synthesis disabled (it runs once, on the merged dataset) and
    ``jobs`` forced to 1 (a shard is the unit of parallelism).
    ``attempt`` is the retry round the shard is being executed under —
    fault plans key injected shard faults on it, so an injected fault
    is transient and a retry of the same shard can succeed.
    """

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    config: SweepConfig
    attempt: int = 0

    def describe(self) -> str:
        return (f"ch{self.channel} pc{self.pseudo_channel} "
                f"ba{self.bank} region={self.region}")


class ShardRunError(ReproError):
    """A shard failed in its worker; carries the worker-side diagnosis.

    Raised by :func:`run_shard` so the parent learns not just *that* the
    shard failed but how long it ran and what its metric snapshot looked
    like at the point of failure (commands issued, hammers, settle
    iterations, ...) — enough to diagnose most failures without
    rerunning the shard.  Picklable: crosses the process pool boundary
    intact.
    """

    def __init__(self, original_type: str, message: str,
                 wall_s: float, metrics: Dict[str, Dict[str, object]],
                 category: str = "error") -> None:
        super().__init__(original_type, message, wall_s, metrics, category)
        self.original_type = original_type
        self.message = message
        self.wall_s = wall_s
        self.metrics = metrics
        self.category = category

    def __str__(self) -> str:
        return f"{self.original_type}: {self.message}"


def _fault_category(error: BaseException) -> str:
    """Structured failure category for quarantine reports and metrics."""
    if isinstance(error, FuturesTimeoutError):
        return "timeout"
    if isinstance(error, BrokenExecutor):
        return "crash"
    if isinstance(error, ShardFault):
        return error.category
    if isinstance(error, ShardRunError):
        return error.category
    return "exception"


@dataclass(frozen=True)
class ShardError:
    """A shard that failed after exhausting its retries.

    ``wall_s`` and ``metrics`` hold the originating worker's wall time
    and metric snapshot from the *last* failing attempt when the worker
    lived long enough to report them (None for hard crashes/timeouts).
    ``backoff_s`` is the total retry backoff the runner spent on this
    shard across rounds; ``fault_category`` classifies the last failure
    (``timeout``/``crash``/``poison``/``starved``/``error``/...).
    """

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str
    error_type: str
    message: str
    attempts: int
    wall_s: Optional[float] = None
    metrics: Optional[Dict[str, Dict[str, object]]] = None
    backoff_s: float = 0.0
    fault_category: str = "error"

    def as_dict(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "channel": self.channel,
            "pseudo_channel": self.pseudo_channel,
            "bank": self.bank,
            "region": self.region,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "wall_s": self.wall_s,
            "metrics": self.metrics,
            "backoff_s": self.backoff_s,
            "fault_category": self.fault_category,
        }

    @classmethod
    def from_failure(cls, shard: SweepShard, error: BaseException,
                     attempts: int, backoff_s: float = 0.0) -> "ShardError":
        category = _fault_category(error)
        if isinstance(error, ShardRunError):
            return cls(index=shard.index, channel=shard.channel,
                       pseudo_channel=shard.pseudo_channel,
                       bank=shard.bank, region=shard.region,
                       error_type=error.original_type,
                       message=error.message, attempts=attempts,
                       wall_s=error.wall_s, metrics=error.metrics,
                       backoff_s=backoff_s, fault_category=category)
        return cls(index=shard.index, channel=shard.channel,
                   pseudo_channel=shard.pseudo_channel, bank=shard.bank,
                   region=shard.region,
                   error_type=type(error).__name__, message=str(error),
                   attempts=attempts, backoff_s=backoff_s,
                   fault_category=category)


@dataclass(frozen=True)
class ShardPlan:
    """All shards of one sweep, in the serial path's iteration order.

    The serial :meth:`SpatialSweep.run` nests channel -> pseudo channel
    -> bank -> region; concatenating shard datasets in this plan's order
    therefore reproduces the serial record order exactly.
    """

    shards: Tuple[SweepShard, ...]

    @classmethod
    def from_config(cls, config: SweepConfig) -> "ShardPlan":
        """One shard per engine plan item: a :class:`ShardPlan` is the
        engine's :class:`~repro.engine.plan.ExecutionPlan` partitioned
        into process-crossable work units, so the serial and parallel
        paths iterate the same items in the same order by construction.
        """
        plan = ExecutionPlan.from_config(config)
        return cls(shards=tuple(
            SweepShard(index=item.index, channel=item.channel,
                       pseudo_channel=item.pseudo_channel, bank=item.bank,
                       region=item.region,
                       config=ExecutionPlan.narrow_config(config, item))
            for item in plan))

    def with_obs(self, obs: ObsConfig) -> Tuple[SweepShard, ...]:
        """The plan's shards with ``obs`` injected into every config."""
        return tuple(replace(shard, config=replace(shard.config, obs=obs))
                     for shard in self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
# The worker side — the per-process engine session and the default
# per-shard entry point — lives in :mod:`repro.engine.pool`;
# :func:`repro.engine.pool.run_shard` is re-exported here (imported
# above) for callers and tests that run shards inline.
ShardRunner = Callable[[BoardSpec, SweepShard], CharacterizationDataset]


class _ProgressAggregator:
    """Idempotent shard/record progress accounting across retry rounds.

    A retried shard reports completion at most once: completed shard
    indices live in a set and record totals accumulate only on first
    completion, so the ``completed/total`` figures a callback sees never
    double-count a shard that failed, was retried, and then finished
    (or — with a timeout — finished twice).
    """

    def __init__(self, total: int,
                 callback: Optional[ProgressCallback]) -> None:
        self._total = total
        self._callback = callback
        self._done: set = set()
        self._records = 0

    @property
    def records_done(self) -> int:
        return self._records

    def preload(self, datasets: Dict[int, CharacterizationDataset]) -> None:
        """Mark checkpointed shards as done without emitting per-shard
        callbacks (a resumed campaign reports them in one line)."""
        for index, dataset in datasets.items():
            if index not in self._done:
                self._done.add(index)
                self._records += sum(dataset.record_counts())

    def completed(self, shard: SweepShard,
                  dataset: CharacterizationDataset, attempt: int) -> bool:
        """Register a completed shard; returns True on first completion."""
        first = shard.index not in self._done
        if first:
            self._done.add(shard.index)
            self._records += sum(dataset.record_counts())
        self._emit(shard, "ok", attempt)
        return first

    def failed(self, shard: SweepShard, error: BaseException,
               attempt: int) -> None:
        name = (error.original_type if isinstance(error, ShardRunError)
                else type(error).__name__)
        self._emit(shard, f"FAILED ({name})", attempt)

    def _emit(self, shard: SweepShard, status: str, attempt: int) -> None:
        if self._callback is None:
            return
        retry = " retry" if attempt else ""
        self._callback(f"[{len(self._done)}/{self._total} shards{retry}] "
                       f"{shard.describe()} {status}")


class ParallelSweepRunner:
    """Runs one characterization campaign across worker processes.

    Drop-in equivalent of ``SpatialSweep(spec.build(), config).run()``:
    same dataset, same record order, same metadata — plus
    ``metadata["shard_errors"]`` and ``metadata["coverage"]`` when
    shards were quarantined and ``metadata["telemetry"]`` when
    observability is active.
    """

    def __init__(self, spec: BoardSpec, config: Optional[SweepConfig] = None,
                 *, shard_runner: Optional[ShardRunner] = None,
                 max_retries: int = 1, retry_backoff_s: float = 0.0,
                 campaign_dir=None, mp_context=None,
                 degrade: str = "auto") -> None:
        """
        Args:
            spec: recipe each worker rebuilds its own board from.
            config: sweep axes/density; ``config.jobs`` sets the worker
                count (1 falls back to the serial path in-process unless
                ``campaign_dir`` asks for the checkpointing shard path).
            shard_runner: override for the per-shard entry point (must be
                picklable; used by fault-injection tests).
            max_retries: extra attempts for a failed shard (default 1).
            retry_backoff_s: base delay before retry round ``n``
                (doubled each round, scaled by a deterministic jitter in
                [0.5, 1.5) keyed on the fault seed; 0 = no backoff).
            campaign_dir: directory to checkpoint completed shards into
                and resume from (see :mod:`repro.core.campaign`).
            mp_context: multiprocessing context for the pool (default:
                the platform default).
            degrade: ``"auto"`` (default) finishes the campaign serially
                in-process when the pool's crash-loop circuit breaker
                opens (:class:`~repro.errors.PoolDegradedError`);
                ``"never"`` propagates the error instead.
        """
        if max_retries < 0:
            raise ExperimentError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ExperimentError("retry_backoff_s must be >= 0")
        if degrade not in ("auto", "never"):
            raise ExperimentError(
                f"degrade must be 'auto' or 'never', got {degrade!r}")
        self._spec = spec
        self._config = config or SweepConfig()
        self._shard_runner: ShardRunner = shard_runner or run_shard
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._campaign_dir = campaign_dir
        self._mp_context = mp_context
        self._degrade = degrade
        self._sleep = time.sleep
        self._errors: Tuple[ShardError, ...] = ()
        self._coverage: Optional[Dict[str, object]] = None
        self._checkpoint: Optional[CampaignCheckpoint] = None
        self._backend: Optional[PoolBackend] = None
        self._backoff_totals: Dict[int, float] = {}
        faults = self._config.faults
        self._backoff_seed = (faults.seed if faults is not None
                              else getattr(spec, "seed", 0))

    @property
    def config(self) -> SweepConfig:
        return self._config

    @property
    def errors(self) -> Tuple[ShardError, ...]:
        """Shards that failed permanently in the last :meth:`run`."""
        return self._errors

    @property
    def coverage(self) -> Optional[Dict[str, object]]:
        """Shard/row coverage accounting for the last :meth:`run`."""
        return self._coverage

    # ------------------------------------------------------------------
    def run(self, progress: Optional[ProgressCallback] = None
            ) -> CharacterizationDataset:
        """Execute the campaign and return the merged dataset."""
        config = self._config
        self._errors = ()
        self._coverage = None
        self._backoff_totals = {}
        tracer = get_tracer()
        metrics = get_metrics()
        events = get_events()
        # With an event bus installed even jobs=1 takes the sharded
        # path (as campaign_dir already does): shards are what the
        # event schema describes, and routing every jobs level through
        # the same emitters is what makes the logs byte-identical.
        if (config.jobs == 1 and self._campaign_dir is None
                and not events.enabled):
            with tracer.span("campaign", jobs=1):
                sweep = SpatialSweep(self._spec.build(), config)
                dataset = sweep.run(progress)
            self._coverage = self._serial_coverage(config, dataset)
            return dataset

        plan = ShardPlan.from_config(config)
        events.emit("campaign_started", shards=len(plan), kind="sweep",
                    timing={"jobs": config.jobs})
        obs_active = tracer.enabled or metrics.enabled
        spool = (tempfile.TemporaryDirectory(prefix="repro-obs-")
                 if obs_active else None)
        started = time.perf_counter()
        # One warm pool for the whole campaign: workers (and their
        # engine sessions — board, controls, program cache) persist
        # across retry rounds instead of being rebuilt per attempt.
        self._backend = PoolBackend(self._spec, runner=self._shard_runner,
                                    timeout_s=config.shard_timeout_s,
                                    mp_context=self._mp_context,
                                    experiment=config.experiment)
        try:
            with tracer.span("campaign", jobs=config.jobs,
                             shards=len(plan)) as campaign:
                if spool is not None or events.enabled:
                    shards: Sequence[SweepShard] = plan.with_obs(ObsConfig(
                        trace=tracer.enabled, metrics=metrics.enabled,
                        spool_dir=(spool.name if spool is not None
                                   else None),
                        events_path=(str(events.path) if events.enabled
                                     else None),
                        epoch=events.epoch))
                else:
                    shards = plan.shards

                results: Dict[int, CharacterizationDataset] = {}
                failures: Dict[int, BaseException] = {}
                aggregator = _ProgressAggregator(len(plan), progress)
                self._checkpoint = self._open_campaign(
                    plan, results, aggregator, metrics, progress)
                pending = [shard for shard in shards
                           if shard.index not in results]
                attempts = 1 + self._max_retries
                for attempt in range(attempts):
                    if not pending:
                        break
                    if attempt:
                        metrics.counter("sweep.shard_retries").inc(
                            len(pending))
                        for shard in pending:
                            events.emit(
                                "retry", item=shard.index, attempt=attempt,
                                category=_fault_category(
                                    failures[shard.index]),
                                **item_coords(shard))
                        self._backoff(pending, attempt, metrics)
                        # Retry rounds dispatch sequentially on the
                        # *same* warm pool (sessions built in round 0
                        # are reused, not rebuilt per attempt); a hard
                        # crash is still contained to the crashing
                        # shard because the backend recycles the pool
                        # and continues the round on a fresh one.
                        with tracer.span("retry-round", attempt=attempt,
                                         shards=len(pending)):
                            pending = self._run_round(
                                pending, results, failures, aggregator,
                                attempt, isolate=True)
                    else:
                        pending = self._run_round(pending, results,
                                                  failures, aggregator,
                                                  attempt, isolate=False)
                if pending:
                    metrics.counter("sweep.shard_failures").inc(
                        len(pending))

                self._errors = tuple(
                    ShardError.from_failure(
                        shard, failures[shard.index], attempts,
                        backoff_s=round(
                            self._backoff_totals.get(shard.index, 0.0), 9))
                    for shard in sorted(pending,
                                        key=lambda shard: shard.index))
                for error in self._errors:
                    events.emit("quarantine", item=error.index,
                                attempt=attempts,
                                category=error.fault_category,
                                error_type=error.error_type,
                                channel=error.channel,
                                pseudo_channel=error.pseudo_channel,
                                bank=error.bank, region=error.region)

                dataset = CharacterizationDataset.merged(
                    (results[shard.index] for shard in plan.shards
                     if shard.index in results),
                    metadata=sweep_metadata(config))
                thermal = ThermalGuard.merge_metadata(
                    [results[shard.index] for shard in plan.shards
                     if shard.index in results])
                if thermal is not None:
                    dataset.metadata["thermal"] = thermal
                self._coverage = self._parallel_coverage(plan, results)
                if self._errors:
                    dataset.metadata["shard_errors"] = [
                        error.as_dict() for error in self._errors]
                    dataset.metadata["coverage"] = self._coverage
                if config.append_wcdp:
                    with tracer.span("wcdp"):
                        append_wcdp_records(dataset)
                if spool is not None:
                    wall_s = time.perf_counter() - started
                    self._merge_spool(plan, results, spool.name, tracer,
                                      metrics, campaign, dataset, wall_s)
                events.emit(
                    "campaign_finished", shards=len(plan),
                    completed=len(results), quarantined=len(self._errors),
                    records=sum(dataset.record_counts()),
                    timing={"wall_s": round(
                        time.perf_counter() - started, 6)})
                events.finalize()
                return dataset
        finally:
            self._checkpoint = None
            if self._backend is not None:
                self._backend.close()
                self._backend = None
            if spool is not None:
                spool.cleanup()

    # ------------------------------------------------------------------
    def _open_campaign(self, plan: ShardPlan,
                       results: Dict[int, CharacterizationDataset],
                       aggregator: _ProgressAggregator, metrics,
                       progress: Optional[ProgressCallback]
                       ) -> Optional[CampaignCheckpoint]:
        """Prepare the campaign directory and preload checkpointed shards."""
        if self._campaign_dir is None:
            return None
        fault_spec = resolve_fault_spec(self._config.faults)
        fault_plan = (FaultPlan(fault_spec)
                      if fault_spec is not None and fault_spec.has_io_faults
                      else None)
        checkpoint = CampaignCheckpoint(self._campaign_dir,
                                        fault_plan=fault_plan)
        fingerprint = campaign_fingerprint(self._spec, self._config,
                                           len(plan))
        try:
            resuming = checkpoint.prepare(fingerprint, len(plan))
        except DiskSpaceError:
            # A full volume at campaign start: run without checkpoints
            # (results stay in memory) rather than refuse the campaign.
            metrics.counter("campaign.checkpoint_write_errors").inc()
            return checkpoint
        if resuming:
            loaded = checkpoint.load(shard.index for shard in plan.shards)
            if loaded:
                results.update(loaded)
                aggregator.preload(loaded)
                checkpoint_events(get_events(), plan.shards, loaded)
                metrics.counter("campaign.checkpoint_loads").inc(
                    len(loaded))
                if progress is not None:
                    recovered = (f" ({checkpoint.recovered} corrupt "
                                 f"quarantined)" if checkpoint.recovered
                                 else "")
                    progress(f"[resume] {len(loaded)}/{len(plan)} shards "
                             f"loaded from {checkpoint.directory}"
                             f"{recovered}")
            elif progress is not None and checkpoint.recovered:
                progress(f"[resume] 0/{len(plan)} shards loaded from "
                         f"{checkpoint.directory} ({checkpoint.recovered} "
                         f"corrupt quarantined)")
        return checkpoint

    def _backoff(self, pending: List[SweepShard], attempt: int,
                 metrics) -> None:
        """Exponential backoff with deterministic jitter before a retry
        round; the delay is attributed to every shard in the round so
        quarantine reports carry exact per-shard backoff totals."""
        base = self._retry_backoff_s
        if base <= 0:
            return
        jitter = 0.5 + uniform_hash01(self._backoff_seed,
                                      ("retry-round", attempt))
        delay = base * (2 ** (attempt - 1)) * jitter
        metrics.histogram("sweep.retry_backoff_s").observe(delay)
        for shard in pending:
            self._backoff_totals[shard.index] = (
                self._backoff_totals.get(shard.index, 0.0) + delay)
        self._sleep(delay)

    # ------------------------------------------------------------------
    @staticmethod
    def _serial_coverage(config: SweepConfig,
                         dataset: CharacterizationDataset
                         ) -> Dict[str, object]:
        shards_total = (len(config.channels) * len(config.pseudo_channels)
                        * len(config.banks) * len(config.regions))
        rows = {record.row_key for record in dataset.ber_records}
        rows.update(record.row_key for record in dataset.hcfirst_records)
        return {
            "shards": {"total": shards_total, "completed": shards_total,
                       "quarantined": 0},
            "rows": {"attempted": len(rows), "completed": len(rows),
                     "quarantined": 0},
            "complete": True,
        }

    @staticmethod
    def _parallel_coverage(plan: ShardPlan,
                           results: Dict[int, CharacterizationDataset]
                           ) -> Dict[str, object]:
        completed = [shard for shard in plan.shards
                     if shard.index in results]
        quarantined = [shard for shard in plan.shards
                       if shard.index not in results]
        rows_completed = 0
        for shard in completed:
            dataset = results[shard.index]
            rows = {record.row_key for record in dataset.ber_records}
            rows.update(record.row_key
                        for record in dataset.hcfirst_records)
            rows_completed += len(rows)
        # A quarantined shard never reported which rows it sampled, so
        # its loss is accounted at the planned sampling density.
        rows_quarantined = sum(
            min(shard.config.rows_per_region, shard.config.region_size)
            for shard in quarantined)
        return {
            "shards": {"total": len(plan.shards),
                       "completed": len(completed),
                       "quarantined": len(quarantined)},
            "rows": {"attempted": rows_completed + rows_quarantined,
                     "completed": rows_completed,
                     "quarantined": rows_quarantined},
            "complete": not quarantined,
        }

    # ------------------------------------------------------------------
    def _merge_spool(self, plan: ShardPlan,
                     results: Dict[int, CharacterizationDataset],
                     spool_dir: str, tracer, metrics, campaign,
                     dataset: CharacterizationDataset,
                     wall_s: float) -> None:
        """Fold worker spool files back into the parent collectors.

        Iterates in plan order, so the grafted shard subtrees appear in
        the merged trace exactly as the serial path would visit them,
        and builds the per-shard telemetry block.  Shards satisfied from
        a checkpoint have no spool files and contribute no telemetry —
        they did no work this run.
        """
        obs = ObsConfig(trace=tracer.enabled, metrics=metrics.enabled,
                        spool_dir=spool_dir)
        shard_rows: List[Dict[str, object]] = []
        total_records = 0
        for shard in plan.shards:
            if tracer.enabled:
                trace_path = obs.trace_path(shard.index)
                if trace_path.exists():
                    tracer.graft(read_jsonl(trace_path),
                                 parent_id=campaign.span_id)
            metrics_path = obs.metrics_path(shard.index)
            if not metrics_path.exists():
                continue
            snapshot = MetricsRegistry.read_snapshot(metrics_path)
            gauges = snapshot.get("gauges", {})
            shard_wall = gauges.pop("shard.wall_s", None)
            shard_records = gauges.pop("shard.records", None)
            if metrics.enabled:
                metrics.merge_snapshot(snapshot)
                if shard_wall:
                    metrics.histogram("sweep.shard_wall_s").observe(
                        shard_wall)
            row: Dict[str, object] = {
                "shard": shard.index,
                "channel": shard.channel,
                "pseudo_channel": shard.pseudo_channel,
                "bank": shard.bank,
                "region": shard.region,
                "wall_s": shard_wall,
            }
            if shard_records is not None:
                total_records += int(shard_records)
                row["records"] = int(shard_records)
                if shard_wall:
                    row["rows_per_s"] = round(shard_records / shard_wall, 3)
            shard_rows.append(row)
        dataset.metadata["telemetry"] = {
            "jobs": self._config.jobs,
            "wall_s": round(wall_s, 6),
            "records": total_records,
            "rows_per_s": (round(total_records / wall_s, 3)
                           if wall_s > 0 else None),
            "shards": shard_rows,
        }

    # ------------------------------------------------------------------
    def _run_round(self, shards: List[SweepShard],
                   results: Dict[int, CharacterizationDataset],
                   failures: Dict[int, BaseException],
                   aggregator: _ProgressAggregator, attempt: int,
                   isolate: bool = False) -> List[SweepShard]:
        """Run one round on the warm pool backend; returns the failures.

        The scheduling semantics (dispatch-armed deadlines, batched
        submission, zombie accounting, starvation fast-fail, crash
        containment) live in :class:`~repro.engine.pool.PoolBackend`;
        this wrapper adapts its callbacks to the runner's
        retry/checkpoint bookkeeping.  ``isolate=True`` (retry rounds)
        dispatches sequentially so a crashing shard cannot fail its
        neighbours — while keeping the pool, and the sessions its
        workers already built, warm.

        When the backend's crash-loop circuit breaker opens
        (:class:`~repro.errors.PoolDegradedError`) and ``degrade`` is
        ``"auto"``, the shards the pool never settled are finished
        serially in this process — the inline runner is the same code
        the workers run, so the merged dataset stays byte-identical.
        """
        failed: List[SweepShard] = []
        settled: set = set()

        def record_failure(shard: SweepShard, error: BaseException) -> None:
            settled.add(shard.index)
            failures[shard.index] = error
            failed.append(shard)
            aggregator.failed(shard, error, attempt)

        def accept(shard: SweepShard,
                   dataset: CharacterizationDataset) -> None:
            settled.add(shard.index)
            self._accept(shard, dataset, results, failures, aggregator,
                         attempt, record_failure)

        workers = 1 if isolate else min(self._config.jobs, len(shards))
        try:
            self._backend.run(list(shards), workers, attempt, accept,
                              record_failure, sequential=isolate)
        except PoolDegradedError as error:
            if self._degrade == "never":
                raise
            remaining = [shard for shard in shards
                         if shard.index not in settled]
            self._run_degraded(remaining, attempt, accept,
                               record_failure, error)
        return failed

    def _run_degraded(self, shards: List[SweepShard], attempt: int,
                      accept, record_failure,
                      cause: PoolDegradedError) -> None:
        """Finish a round serially in-process after the pool gave up.

        The supervised-degradation endgame: the pool's circuit breaker
        opened (crash loop past budget, or the OS refused to fork), so
        the remaining shards run inline via the same per-item runner
        the workers use — slower, but the campaign completes with the
        same dataset bytes.  Worker-process fault injection (SIGKILL)
        stays dormant inline by design (see
        :func:`repro.faults.inject.injure_worker`).
        """
        metrics = get_metrics()
        events = get_events()
        metrics.counter("sweep.degraded_serial").inc(len(shards))
        for shard in shards:
            job = replace(shard, attempt=attempt)
            events.emit("shard_dispatched", item=shard.index,
                        attempt=attempt, **item_coords(shard))
            try:
                dataset = self._shard_runner(self._spec, job)
            except Exception as error:
                record_failure(shard, error)
            else:
                accept(shard, dataset)
            events.tick()

    def _accept(self, shard: SweepShard, dataset: CharacterizationDataset,
                results: Dict[int, CharacterizationDataset],
                failures: Dict[int, BaseException],
                aggregator: _ProgressAggregator, attempt: int,
                record_failure) -> None:
        """Integrity-check and register one completed shard dataset."""
        fingerprint = dataset.metadata.pop("integrity", None)
        if (fingerprint is not None
                and fingerprint != dataset.fingerprint()):
            get_metrics().counter("sweep.shard_poisoned").inc()
            record_failure(shard, ShardFault(
                f"shard {shard.describe()} dataset failed its integrity "
                f"check (readback poisoned in transit)",
                category="poison"))
            return
        if shard.index not in results:
            results[shard.index] = dataset
            if self._checkpoint is not None:
                try:
                    self._checkpoint.write(shard.index, dataset)
                    get_metrics().counter(
                        "campaign.checkpoint_writes").inc()
                except DiskSpaceError:
                    # The dataset is safe in memory; the campaign keeps
                    # going, it just can't checkpoint this shard.  A
                    # later kill loses only the unspooled shards.
                    get_metrics().counter(
                        "campaign.checkpoint_write_errors").inc()
            get_events().emit("item_completed", item=shard.index,
                              attempt=attempt, **item_coords(shard),
                              **dataset_delta(dataset))
        failures.pop(shard.index, None)
        aggregator.completed(shard, dataset, attempt)


def run_sweep(config: SweepConfig, *, spec: Optional[BoardSpec] = None,
              board: Optional[BenderBoard] = None,
              progress: Optional[ProgressCallback] = None,
              campaign_dir=None, max_retries: int = 1,
              retry_backoff_s: float = 0.0,
              verify: Optional[bool] = None,
              degrade: str = "auto") -> CharacterizationDataset:
    """Run a sweep serially or in parallel, per ``config.jobs``.

    Args:
        config: the sweep; ``jobs > 1`` selects the parallel executor.
        spec: board recipe — required for parallel runs (workers rebuild
            from it) and used to build the board for serial runs when no
            ``board`` is given.
        board: an existing station for the serial path (avoids a
            rebuild); ignored when ``jobs > 1``.
        progress: per-(bank, region) callback (serial) or per-shard
            completion callback (parallel).
        campaign_dir: checkpoint/resume directory; setting it routes
            even ``jobs=1`` runs through the (byte-identical) sharded
            executor so their shards checkpoint too.
        max_retries: extra attempts per failed shard (parallel path).
        retry_backoff_s: base backoff before retry rounds (parallel).
        verify: override ``config.experiment.verify_programs`` (static
            verification of every generated hammer program; default on).
        degrade: ``"auto"`` finishes serially in-process when the pool's
            crash-loop breaker opens; ``"never"`` propagates the error.
    """
    if verify is not None and verify != config.experiment.verify_programs:
        config = replace(config, experiment=replace(
            config.experiment, verify_programs=verify))
    # An installed event bus routes jobs=1 runs through the sharded
    # executor too (shards are the event granularity) — but only when a
    # spec is available for workers to rebuild from; a board-only serial
    # sweep stays serial and unobserved by the bus.
    if (config.jobs > 1 or campaign_dir is not None
            or (get_events().enabled and spec is not None)):
        if spec is None:
            raise ExperimentError(
                "a parallel or checkpointed sweep needs a BoardSpec so "
                "workers can rebuild the station (jobs="
                f"{config.jobs}, spec=None)")
        runner = ParallelSweepRunner(spec, config, max_retries=max_retries,
                                     retry_backoff_s=retry_backoff_s,
                                     campaign_dir=campaign_dir,
                                     degrade=degrade)
        return runner.run(progress)
    if board is None:
        if spec is None:
            raise ExperimentError("run_sweep needs a board or a spec")
        board = spec.build()
    return SpatialSweep(board, config).run(progress)

"""Data patterns used in the RowHammer tests (Table 1 of the paper).

A :class:`DataPattern` assigns one byte value to each role in the
hammered neighbourhood:

=================  ==========  ==========  ==========  ==========
Row addresses      Rowstripe0  Rowstripe1  Checkered0  Checkered1
=================  ==========  ==========  ==========  ==========
Victim (V)         0x00        0xFF        0x55        0xAA
Aggressors (V±1)   0xFF        0x00        0xAA        0x55
V ± [2:8]          0x00        0xFF        0x55        0xAA
=================  ==========  ==========  ==========  ==========

Rowstripe patterns store the complement of the victim in the aggressors
and the victim value everywhere else; checkered patterns additionally
alternate bits *within* each row.  The paper shows that no single pattern
minimizes HC_first or maximizes BER for every row — hence the per-row
worst-case data pattern (WCDP) machinery in :mod:`repro.core.wcdp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataPattern:
    """Byte values for victim, aggressor, and surrounding rows.

    Attributes:
        name: pattern identifier used in datasets and figures.
        victim_byte: value filling the victim row V.
        aggressor_byte: value filling the aggressor rows V±1.
        surround_byte: value filling rows V±[2:8].
    """

    name: str
    victim_byte: int
    aggressor_byte: int
    surround_byte: int

    def __post_init__(self) -> None:
        for field_name in ("victim_byte", "aggressor_byte", "surround_byte"):
            value = getattr(self, field_name)
            if not 0 <= value <= 0xFF:
                raise ConfigurationError(
                    f"{field_name} must be a byte, got {value:#x}")

    def byte_for_offset(self, physical_offset: int) -> int:
        """Fill byte for the row at ``physical_offset`` from the victim."""
        distance = abs(physical_offset)
        if distance == 0:
            return self.victim_byte
        if distance == 1:
            return self.aggressor_byte
        return self.surround_byte

    def victim_row(self, row_bytes: int) -> bytes:
        return bytes([self.victim_byte]) * row_bytes

    def aggressor_row(self, row_bytes: int) -> bytes:
        return bytes([self.aggressor_byte]) * row_bytes

    def surround_row(self, row_bytes: int) -> bytes:
        return bytes([self.surround_byte]) * row_bytes


ROWSTRIPE0 = DataPattern("Rowstripe0", victim_byte=0x00,
                         aggressor_byte=0xFF, surround_byte=0x00)
ROWSTRIPE1 = DataPattern("Rowstripe1", victim_byte=0xFF,
                         aggressor_byte=0x00, surround_byte=0xFF)
CHECKERED0 = DataPattern("Checkered0", victim_byte=0x55,
                         aggressor_byte=0xAA, surround_byte=0x55)
CHECKERED1 = DataPattern("Checkered1", victim_byte=0xAA,
                         aggressor_byte=0x55, surround_byte=0xAA)

#: The four patterns of Table 1, in the paper's column order.
STANDARD_PATTERNS: Tuple[DataPattern, ...] = (
    ROWSTRIPE0, ROWSTRIPE1, CHECKERED0, CHECKERED1)

# ----------------------------------------------------------------------
# Extended pattern set (§6 future work 2.3: "a richer set of data
# patterns used in initializing victim and aggressor rows").
# ----------------------------------------------------------------------

#: Solid patterns: aggressors store the same value as the victim.  The
#: canonical control group — aggressor-to-victim coupling needs opposing
#: charge, so solid patterns should induce almost no flips.
SOLID0 = DataPattern("Solid0", victim_byte=0x00,
                     aggressor_byte=0x00, surround_byte=0x00)
SOLID1 = DataPattern("Solid1", victim_byte=0xFF,
                     aggressor_byte=0xFF, surround_byte=0xFF)

#: Colstripe patterns: vertical stripes (alternating bits within every
#: row, aggressors matching the victim).  Vertical neighbours agree, so
#: coupling is weak; the victim's own alternating bits add the intra-row
#: penalty.  Expected to sit near the solid patterns.
COLSTRIPE0 = DataPattern("Colstripe0", victim_byte=0x55,
                         aggressor_byte=0x55, surround_byte=0x55)
COLSTRIPE1 = DataPattern("Colstripe1", victim_byte=0xAA,
                         aggressor_byte=0xAA, surround_byte=0xAA)

#: The extended sweep: Table 1 plus the control groups.
EXTENDED_PATTERNS: Tuple[DataPattern, ...] = STANDARD_PATTERNS + (
    SOLID0, SOLID1, COLSTRIPE0, COLSTRIPE1)

#: Name used in datasets/figures for the per-row worst-case data pattern.
WCDP_NAME = "WCDP"

_BY_NAME: Dict[str, DataPattern] = {
    pattern.name: pattern for pattern in EXTENDED_PATTERNS}


def pattern_by_name(name: str) -> DataPattern:
    """Look up a pattern (Table 1 or extended) by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown data pattern {name!r}; known: "
            f"{sorted(_BY_NAME)}") from None


def random_pattern(seed: int) -> DataPattern:
    """A pseudo-random byte assignment (future-work pattern fuzzing).

    Deterministic per seed so campaigns are reproducible; the victim and
    aggressor bytes are drawn independently, the surround byte follows
    the Table 1 convention of matching the victim.
    """
    import numpy as np
    rng = np.random.Generator(np.random.Philox(key=seed))
    victim_byte = int(rng.integers(0, 256))
    aggressor_byte = int(rng.integers(0, 256))
    return DataPattern(f"Random{seed}", victim_byte=victim_byte,
                       aggressor_byte=aggressor_byte,
                       surround_byte=victim_byte)

"""Result records and dataset container for characterization sweeps.

Datasets are flat lists of per-measurement records — one
:class:`BerRecord` per (row, pattern, repetition) BER test and one
:class:`HcFirstRecord` per HC_first search — with JSON and CSV
(de)serialization so benchmark outputs can be archived and re-analysed
without re-running experiments.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import AnalysisError

#: Region labels used across sweeps and figures (paper §3.1: the first,
#: middle, and last 3K rows of a bank).
REGION_FIRST = "first"
REGION_MIDDLE = "middle"
REGION_LAST = "last"
REGIONS = (REGION_FIRST, REGION_MIDDLE, REGION_LAST)

RowKey = Tuple[int, int, int, int]


@dataclass(frozen=True)
class BerRecord:
    """One BER measurement: one victim row, one pattern, one repetition."""

    channel: int
    pseudo_channel: int
    bank: int
    row: int
    region: str
    pattern: str
    repetition: int
    hammer_count: int
    flips: int
    row_bits: int
    duration_s: float

    @property
    def ber(self) -> float:
        return self.flips / self.row_bits

    @property
    def row_key(self) -> RowKey:
        return (self.channel, self.pseudo_channel, self.bank, self.row)


@dataclass(frozen=True)
class HcFirstRecord:
    """One HC_first search: one victim row, one pattern, one repetition.

    ``hc_first`` is None when no flip occurred up to ``max_hammers``
    (a right-censored measurement).
    """

    channel: int
    pseudo_channel: int
    bank: int
    row: int
    region: str
    pattern: str
    repetition: int
    hc_first: Optional[int]
    max_hammers: int
    probes: int
    flips_at_max: int

    @property
    def censored(self) -> bool:
        return self.hc_first is None

    @property
    def row_key(self) -> RowKey:
        return (self.channel, self.pseudo_channel, self.bank, self.row)


Record = Union[BerRecord, HcFirstRecord]


@dataclass
class CharacterizationDataset:
    """All measurements of one characterization campaign."""

    ber_records: List[BerRecord] = field(default_factory=list)
    hcfirst_records: List[HcFirstRecord] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    # -- accumulation ---------------------------------------------------
    def add(self, record: Record) -> None:
        if isinstance(record, BerRecord):
            self.ber_records.append(record)
        elif isinstance(record, HcFirstRecord):
            self.hcfirst_records.append(record)
        else:
            raise AnalysisError(f"unknown record type: {type(record)!r}")

    def extend(self, records: Iterable[Record]) -> None:
        for record in records:
            self.add(record)

    def merge(self, other: "CharacterizationDataset") -> None:
        self.ber_records.extend(other.ber_records)
        self.hcfirst_records.extend(other.hcfirst_records)
        self.metadata.update(other.metadata)

    @classmethod
    def merged(cls, parts: Iterable["CharacterizationDataset"],
               metadata: Optional[Dict[str, object]] = None
               ) -> "CharacterizationDataset":
        """Concatenate ``parts`` in order into one dataset.

        The deterministic-merge primitive of the parallel sweep executor:
        record order is exactly the concatenation order of ``parts``, and
        the result's metadata is ``metadata`` (not a union of the parts'
        metadata, which would depend on which shards succeeded).
        """
        dataset = cls(metadata=dict(metadata or {}))
        for part in parts:
            dataset.ber_records.extend(part.ber_records)
            dataset.hcfirst_records.extend(part.hcfirst_records)
        return dataset

    def record_counts(self) -> Tuple[int, int]:
        """(BER records, HC_first records) — a cheap progress/size probe."""
        return len(self.ber_records), len(self.hcfirst_records)

    # -- filtering ------------------------------------------------------
    def ber(self, channel: Optional[int] = None,
            pattern: Optional[str] = None,
            region: Optional[str] = None,
            predicate: Optional[Callable[[BerRecord], bool]] = None
            ) -> List[BerRecord]:
        """BER records matching the given filters."""
        records = self.ber_records
        if channel is not None:
            records = [r for r in records if r.channel == channel]
        if pattern is not None:
            records = [r for r in records if r.pattern == pattern]
        if region is not None:
            records = [r for r in records if r.region == region]
        if predicate is not None:
            records = [r for r in records if predicate(r)]
        return records

    def hcfirst(self, channel: Optional[int] = None,
                pattern: Optional[str] = None,
                region: Optional[str] = None,
                include_censored: bool = True) -> List[HcFirstRecord]:
        """HC_first records matching the given filters."""
        records = self.hcfirst_records
        if channel is not None:
            records = [r for r in records if r.channel == channel]
        if pattern is not None:
            records = [r for r in records if r.pattern == pattern]
        if region is not None:
            records = [r for r in records if r.region == region]
        if not include_censored:
            records = [r for r in records if not r.censored]
        return records

    def channels(self) -> List[int]:
        present = {r.channel for r in self.ber_records}
        present.update(r.channel for r in self.hcfirst_records)
        return sorted(present)

    def patterns(self) -> List[str]:
        present = {r.pattern for r in self.ber_records}
        present.update(r.pattern for r in self.hcfirst_records)
        return sorted(present)

    #: Metadata keys that describe the run, not the chip — excluded from
    #: archives so a parallel sweep exports byte-identically to a serial one.
    RUNTIME_METADATA_KEYS = ("telemetry",)

    # -- serialization ----------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """The archival JSON payload (runtime telemetry excluded).

        The exact round-trip unit: :meth:`from_payload` rebuilds an
        equal dataset, and the durable checkpoint store checksums this
        payload's canonical encoding.
        """
        return {
            "metadata": {key: value for key, value in self.metadata.items()
                         if key not in self.RUNTIME_METADATA_KEYS},
            "ber_records": [asdict(record) for record in self.ber_records],
            "hcfirst_records": [asdict(record)
                                for record in self.hcfirst_records],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]
                     ) -> "CharacterizationDataset":
        """Rebuild a dataset from a :meth:`to_payload` mapping."""
        if not isinstance(payload, dict):
            raise AnalysisError(
                f"dataset payload must be a mapping, "
                f"got {type(payload).__name__}")
        dataset = cls(metadata=payload.get("metadata", {}))
        for raw in payload.get("ber_records", []):
            dataset.add(BerRecord(**raw))
        for raw in payload.get("hcfirst_records", []):
            dataset.add(HcFirstRecord(**raw))
        return dataset

    def to_json(self, path: Union[str, Path]) -> None:
        """Archive the dataset as JSON (atomic: no torn archives)."""
        from repro.durable import atomic_write_bytes
        atomic_write_bytes(
            path, json.dumps(self.to_payload(), indent=1).encode(),
            kind="dataset")

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CharacterizationDataset":
        """Load a dataset archived with :meth:`to_json`."""
        return cls.from_payload(json.loads(Path(path).read_text()))

    def ber_to_csv(self, path: Union[str, Path]) -> None:
        """Write BER records as CSV (one row per measurement)."""
        self._to_csv(path, self.ber_records,
                     ["channel", "pseudo_channel", "bank", "row", "region",
                      "pattern", "repetition", "hammer_count", "flips",
                      "row_bits", "duration_s"])

    def hcfirst_to_csv(self, path: Union[str, Path]) -> None:
        """Write HC_first records as CSV (one row per search)."""
        self._to_csv(path, self.hcfirst_records,
                     ["channel", "pseudo_channel", "bank", "row", "region",
                      "pattern", "repetition", "hc_first", "max_hammers",
                      "probes", "flips_at_max"])

    # -- integrity --------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable digest of the dataset's records (metadata excluded).

        The integrity handshake of the parallel executor: a shard
        worker fingerprints its dataset before returning it and the
        parent re-fingerprints after unpickling, so a readback poisoned
        in flight is detected instead of merged.  Metadata is excluded
        because the parent legitimately rewrites it (telemetry,
        coverage); the measured records are what must survive the trip.
        """
        hasher = hashlib.blake2b(digest_size=16)
        for record in self.ber_records:
            hasher.update(repr(asdict(record)).encode())
        hasher.update(b"|")
        for record in self.hcfirst_records:
            hasher.update(repr(asdict(record)).encode())
        return hasher.hexdigest()

    @staticmethod
    def _to_csv(path: Union[str, Path], records: List[Record],
                columns: List[str]) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for record in records:
                row = asdict(record)
                writer.writerow([row[column] for column in columns])

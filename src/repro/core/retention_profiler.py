"""Per-row retention-time profiling (U-TRR step 1).

The U-TRR methodology (§5) needs, for a chosen row R, the retention time
T after which R accumulates retention bitflips unless refreshed.  The
profiler measures T through the command interface: write the row, idle
for a candidate duration with refresh disabled, read it back, count
flips.  Because each cell's retention time is a stable physical property,
flips-vs-time is monotone and T can be bracketed by an exponential ramp
and pinned down by bisection to a requested precision.

The profiled T is the *onset* time — the idle duration at which the row
first shows at least ``min_flips`` flips.  U-TRR uses cells that fail
just past T as canaries: waiting T/2, triggering the mechanism under
test, then waiting another T/2 means the canaries fail iff nothing
refreshed the row in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bender.host import HostInterface
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress
from repro.errors import ExperimentError


@dataclass(frozen=True)
class RetentionProfile:
    """Measured retention behaviour of one row."""

    address: DramAddress
    #: Idle time (s) at which the row first shows >= min_flips flips.
    retention_time_s: float
    #: Flips observed at the reported retention time.
    flips_at_time: int
    #: Fill byte the profile was measured with (retention is data
    #: dependent: only charged cells decay).
    fill_byte: int
    probes: int


class RetentionProfiler:
    """Finds row retention times via idle-and-read probes."""

    def __init__(self, host: HostInterface, fill_byte: int = 0x00,
                 min_flips: int = 1, start_time_s: float = 0.032,
                 max_time_s: float = 120.0,
                 relative_precision: float = 0.02) -> None:
        """
        Args:
            host: testing-station interface.
            fill_byte: data written before each idle period.
            min_flips: flips that define "retention failures present".
            start_time_s: first probe duration (the nominal 32 ms refresh
                window — any row failing faster is out of spec).
            max_time_s: give up beyond this duration.
            relative_precision: bisection stops when the bracket is
                within this fraction of the retention time.
        """
        if min_flips < 1:
            raise ExperimentError("min_flips must be >= 1")
        if not 0 < start_time_s < max_time_s:
            raise ExperimentError("need 0 < start_time_s < max_time_s")
        if not 0 < relative_precision < 1:
            raise ExperimentError("relative_precision must be in (0, 1)")
        self._host = host
        self._fill_byte = fill_byte
        self._min_flips = min_flips
        self._start_time_s = start_time_s
        self._max_time_s = max_time_s
        self._precision = relative_precision

    def probe(self, address: DramAddress, idle_s: float) -> int:
        """Write, idle ``idle_s`` with no refresh, read; returns flips."""
        geometry = self._host.device.geometry
        fill = bytes([self._fill_byte]) * geometry.row_bytes
        self._host.write_row(address, fill)
        self._host.wait_seconds(idle_s)
        read_bits = self._host.read_row(address)
        expected = byte_fill_bits(self._fill_byte, geometry.row_bytes)
        return count_flips(read_bits, expected)

    def profile(self, address: DramAddress) -> RetentionProfile:
        """Measure the row's retention-failure onset time."""
        probes = 0

        # Exponential ramp to bracket the onset.
        low = 0.0
        idle_s = self._start_time_s
        flips = 0
        while idle_s <= self._max_time_s:
            flips = self.probe(address, idle_s)
            probes += 1
            if flips >= self._min_flips:
                break
            low = idle_s
            idle_s *= 2.0
        else:
            raise ExperimentError(
                f"row {address} shows no retention failures up to "
                f"{self._max_time_s:.1f} s; pick another row or raise "
                "max_time_s")
        high = idle_s
        flips_at_high = flips

        # Bisection to the requested precision.
        while (high - low) > self._precision * high:
            middle = (low + high) / 2.0
            flips = self.probe(address, middle)
            probes += 1
            if flips >= self._min_flips:
                high = middle
                flips_at_high = flips
            else:
                low = middle

        return RetentionProfile(address=address, retention_time_s=high,
                                flips_at_time=flips_at_high,
                                fill_byte=self._fill_byte, probes=probes)

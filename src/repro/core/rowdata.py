"""Row-data helpers: fill generation, flip counting, flip localisation.

Shared by every experiment: the BER metric is
``bitflips_in_victim / row_bits`` and the flip *positions* feed the
attack-templating example and the analysis of data-dependent behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import AnalysisError


def byte_fill_bits(byte_value: int, row_bytes: int) -> np.ndarray:
    """A row filled with ``byte_value``, as an unpacked bit array."""
    if not 0 <= byte_value <= 0xFF:
        raise AnalysisError(f"fill value must be a byte, got {byte_value:#x}")
    return np.unpackbits(np.full(row_bytes, byte_value, dtype=np.uint8))


def count_flips(read_bits: np.ndarray, expected_bits: np.ndarray) -> int:
    """Number of bit positions where read data differs from expectation."""
    if read_bits.shape != expected_bits.shape:
        raise AnalysisError(
            f"shape mismatch: read {read_bits.shape} vs expected "
            f"{expected_bits.shape}")
    return int(np.count_nonzero(read_bits != expected_bits))


def flip_positions(read_bits: np.ndarray,
                   expected_bits: np.ndarray) -> np.ndarray:
    """Bit indices (0-based within the row) that flipped."""
    if read_bits.shape != expected_bits.shape:
        raise AnalysisError(
            f"shape mismatch: read {read_bits.shape} vs expected "
            f"{expected_bits.shape}")
    return np.nonzero(read_bits != expected_bits)[0]


def bit_error_rate(flips: int, row_bits: int) -> float:
    """BER: fraction of a row's cells that flipped."""
    if row_bits <= 0:
        raise AnalysisError(f"row_bits must be positive, got {row_bits}")
    if flips < 0 or flips > row_bits:
        raise AnalysisError(
            f"flip count {flips} outside [0, {row_bits}]")
    return flips / row_bits


@dataclass(frozen=True)
class FlipReport:
    """Detailed outcome of reading back one victim row."""

    flips: int
    row_bits: int
    positions: np.ndarray
    #: Direction of each flip: True where the cell read 1 but expected 0.
    zero_to_one: np.ndarray

    @property
    def ber(self) -> float:
        return bit_error_rate(self.flips, self.row_bits)

    @property
    def one_to_zero_count(self) -> int:
        return self.flips - int(self.zero_to_one.sum())

    @property
    def zero_to_one_count(self) -> int:
        return int(self.zero_to_one.sum())


def flip_report(read_bits: np.ndarray,
                expected_bits: np.ndarray) -> FlipReport:
    """Full flip analysis of one read-back row."""
    positions = flip_positions(read_bits, expected_bits)
    zero_to_one = read_bits[positions] == 1
    return FlipReport(flips=len(positions), row_bits=len(read_bits),
                      positions=positions, zero_to_one=zero_to_one)


def byte_indices_of_bits(bit_positions: np.ndarray) -> List[int]:
    """Distinct byte offsets within the row containing flipped bits."""
    return sorted({int(position) // 8 for position in bit_positions})

"""RowPress sensitivity experiments (the paper's §6 future work).

The paper plans to study "the time an aggressor row remains active" and
the RowPress effect [Luo+ ISCA'23]: holding an aggressor row open beyond
the minimum tRAS amplifies the disturbance each activation inflicts, so
the hammer count to the first bitflip drops — by an order of magnitude
at aggressor-on times in the microseconds.

:class:`RowPressExperiment` sweeps the aggressor-on time: each test
builds a double-sided pattern whose loop body holds every aggressor open
for ``t_aggon`` before precharging::

    LOOP N { ACT a1; WAIT t_aggon; PRE; ACT a2; WAIT t_aggon; PRE }

and measures flips or HC_first.  Because longer-open iterations are also
slower, results report both the hammer count and the *time* to first
flip — RowPress's headline is that the bits/second disturbance rate
still rises.

Note on retention: at microsecond aggressor-on times a fixed hammer
count can exceed the 27 ms retention-safe window (e.g. 40K hammers at
tAggON ~7 us take ~0.5 s).  Flip counts then include a small retention
component — the same contamination real RowPress experiments manage by
bounding tAggON or the hammer count; HC_first searches are unaffected
because their near-threshold probes are short.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bender.host import HostInterface
from repro.bender.program import Program, ProgramBuilder
from repro.core.hammer import prepare_neighborhood
from repro.core.patterns import DataPattern, ROWSTRIPE0
from repro.core.rowdata import byte_fill_bits, flip_report
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError
from repro.verify.program import VerifyContext, assert_verified


@dataclass(frozen=True)
class RowPressPoint:
    """One sweep point: behaviour at a given aggressor-on time."""

    aggressor_on_cycles: int
    hammer_count: int
    flips: int
    duration_s: float

    @property
    def flips_per_second(self) -> float:
        if self.duration_s == 0.0:
            return 0.0
        return self.flips / self.duration_s


def build_rowpress_program(victim: DramAddress,
                           aggressor_rows: Sequence[int],
                           hammer_count: int,
                           extra_open_cycles: int) -> Program:
    """Double-sided hammer program with extended aggressor-on time.

    ``extra_open_cycles`` of WAIT are inserted between each ACT and its
    PRE; 0 reduces to the standard hammer kernel.
    """
    if hammer_count < 0:
        raise ExperimentError("hammer_count must be >= 0")
    if extra_open_cycles < 0:
        raise ExperimentError("extra_open_cycles must be >= 0")
    if not aggressor_rows:
        raise ExperimentError("need at least one aggressor row")
    builder = ProgramBuilder()
    if hammer_count > 0:
        with builder.loop(hammer_count):
            for row in aggressor_rows:
                builder.act(victim.channel, victim.pseudo_channel,
                            victim.bank, row)
                if extra_open_cycles:
                    builder.wait(extra_open_cycles)
                builder.pre(victim.channel, victim.pseudo_channel,
                            victim.bank)
    return builder.build()


class RowPressExperiment:
    """Sweeps aggressor-on time at a fixed hammer count."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 pattern: DataPattern = ROWSTRIPE0,
                 verify: bool = True) -> None:
        self._host = host
        self._mapper = mapper
        self._pattern = pattern
        self._verify = verify

    def run_point(self, victim: DramAddress, hammer_count: int,
                  extra_open_cycles: int) -> RowPressPoint:
        """Hammer with a given extra open time; returns the flip count."""
        host = self._host
        geometry = host.device.geometry
        prepare_neighborhood(host, self._mapper, victim, self._pattern)
        aggressors = list(self._mapper.physical_neighbors(victim.row))
        if len(aggressors) < 2:
            raise ExperimentError(
                f"victim {victim} lacks two physical neighbours")
        verify = None
        if self._verify:
            def verify(program: Program) -> None:
                expected = {(victim.channel, victim.pseudo_channel,
                             victim.bank, row): hammer_count
                            for row in aggressors}
                # Long aggressor-on times deliberately run past tREFW
                # (the module docstring's retention note), so decay is
                # allowed.
                assert_verified(
                    program,
                    VerifyContext.for_host(host, expected_hammers=expected,
                                           allow_retention_decay=True),
                    what=f"RowPress program for {victim}")
        execution = host.cached_run(
            ("rowpress", victim.channel, victim.pseudo_channel, victim.bank,
             len(aggressors), hammer_count, extra_open_cycles),
            tuple(aggressors) if hammer_count else (),
            lambda: build_rowpress_program(victim, aggressors, hammer_count,
                                           extra_open_cycles),
            verify=verify)
        read_bits = host.read_row(victim)
        expected = byte_fill_bits(self._pattern.victim_byte,
                                  geometry.row_bytes)
        report = flip_report(read_bits, expected)
        return RowPressPoint(
            aggressor_on_cycles=(host.device.timing.ras_cycles +
                                 extra_open_cycles),
            hammer_count=hammer_count,
            flips=report.flips,
            duration_s=host.device.timing.seconds(
                execution.duration_cycles))

    def sweep(self, victim: DramAddress, hammer_count: int,
              extra_open_cycles: Sequence[int]) -> List[RowPressPoint]:
        """One point per aggressor-on time, same hammer count."""
        return [self.run_point(victim, hammer_count, extra)
                for extra in extra_open_cycles]

    def first_flip_hammers(self, victim: DramAddress,
                           extra_open_cycles: int,
                           max_hammers: int = 256 * 1024,
                           start: int = 512) -> Optional[int]:
        """HC_first under extended aggressor-on time (None if censored).

        Exponential ramp + bisection, as in
        :class:`~repro.core.hcfirst.HcFirstSearch`, but with RowPress
        kernels.
        """
        def flips_at(count: int) -> int:
            return self.run_point(victim, count, extra_open_cycles).flips

        if flips_at(max_hammers) == 0:
            return None
        low, high = 0, max_hammers
        probe = min(start, max_hammers)
        while probe < max_hammers:
            if flips_at(probe) > 0:
                high = probe
                break
            low = probe
            probe *= 2
        while high - low > 1:
            middle = (low + high) // 2
            if flips_at(middle) > 0:
                high = middle
            else:
                low = middle
        return high

"""Subarray-boundary reverse engineering via single-sided RowHammer.

Paper footnote 3: *"We reverse engineer subarray boundaries by performing
single-sided RH that induces bitflips in only one of the victim rows if
the aggressor row is at the edge of a subarray."*  Wordline disturbance
does not cross the sense-amplifier stripes between subarrays, so an
aggressor on the first row of a subarray flips cells only in the row
above it, and an aggressor on the last row only in the row below.

The scan hammers aggressors across a physical row range and classifies
each as interior (both sides flip), lower edge (only the higher-address
side flips), or upper edge (only the lower side flips).  The paper finds
832- and 768-row subarrays this way (Fig. 5's SA X / SA Y / SA Z).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bender.host import HostInterface
from repro.core.hammer import SingleSidedHammer
from repro.core.patterns import ROWSTRIPE0, DataPattern
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError

#: Classification labels for scanned aggressor rows.
INTERIOR = "interior"
LOWER_EDGE = "lower_edge"   # first row of a subarray
UPPER_EDGE = "upper_edge"   # last row of a subarray
ISOLATED = "isolated"       # no side flipped (should not happen mid-bank)


@dataclass(frozen=True)
class EdgeObservation:
    """Single-sided scan outcome for one aggressor wordline.

    ``min_flips`` guards against sampling noise: a side only counts as
    coupled when it shows at least that many flips.  At the default
    hammer count an in-subarray victim shows tens of flips, a
    cross-boundary victim exactly zero, so a small threshold removes
    false edges without risking false negatives.
    """

    physical_row: int
    flips_below: Optional[int]  # None: no row exists on that side
    flips_above: Optional[int]
    min_flips: int = 2

    @property
    def classification(self) -> str:
        below = (self.flips_below or 0) >= self.min_flips
        above = (self.flips_above or 0) >= self.min_flips
        if below and above:
            return INTERIOR
        if above and not below:
            return LOWER_EDGE
        if below and not above:
            return UPPER_EDGE
        return ISOLATED


@dataclass(frozen=True)
class SubarrayScanResult:
    """Discovered subarray structure of one scanned physical range."""

    observations: Tuple[EdgeObservation, ...]

    def boundaries(self) -> List[int]:
        """Physical rows that start a subarray, per the scan."""
        return sorted(observation.physical_row
                      for observation in self.observations
                      if observation.classification == LOWER_EDGE)

    def subarray_sizes(self) -> List[int]:
        """Sizes implied by consecutive discovered boundaries."""
        starts = self.boundaries()
        return [second - first
                for first, second in zip(starts, starts[1:])]


class SubarrayReverseEngineer:
    """Runs the footnote-3 single-sided scan."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 hammer_count: int = 500_000,
                 pattern: DataPattern = ROWSTRIPE0,
                 min_flips: int = 2) -> None:
        """
        Args:
            hammer_count: single-sided activations per probe.  500K takes
                ~24 ms of DRAM time — the most disturbance that fits the
                27 ms retention-safe budget — giving tens of flips on the
                coupled side of every probed wordline.
            min_flips: flips a side needs to count as coupled.
        """
        if hammer_count <= 0:
            raise ExperimentError("hammer_count must be positive")
        if min_flips < 1:
            raise ExperimentError("min_flips must be >= 1")
        self._host = host
        self._mapper = mapper
        self._hammer = SingleSidedHammer(host, mapper)
        self._hammer_count = hammer_count
        self._pattern = pattern
        self._min_flips = min_flips

    def probe(self, channel: int, pseudo_channel: int, bank: int,
              physical_row: int) -> EdgeObservation:
        """Single-sided hammer one wordline; report per-side flips."""
        geometry = self._host.device.geometry
        logical = self._mapper.physical_to_logical(physical_row)
        reports = self._hammer.run(
            DramAddress(channel, pseudo_channel, bank, logical),
            self._pattern, self._hammer_count)
        flips_below = (reports[-1].flips if -1 in reports else None)
        flips_above = (reports[+1].flips if +1 in reports else None)
        del geometry
        return EdgeObservation(physical_row=physical_row,
                               flips_below=flips_below,
                               flips_above=flips_above,
                               min_flips=self._min_flips)

    def scan(self, channel: int = 0, pseudo_channel: int = 0, bank: int = 0,
             start: int = 0, end: Optional[int] = None,
             stride: int = 1) -> SubarrayScanResult:
        """Scan physical rows [start, end) and classify each.

        A ``stride`` above 1 trades boundary resolution for speed: the
        coarse pass finds the neighbourhood of each boundary, and
        :meth:`refine_boundary` pins it down exactly.
        """
        geometry = self._host.device.geometry
        if end is None:
            end = geometry.rows
        if not 0 <= start < end <= geometry.rows:
            raise ExperimentError(
                f"bad scan range [{start}, {end}) for {geometry.rows} rows")
        if stride < 1:
            raise ExperimentError(f"stride must be >= 1, got {stride}")
        observations = [
            self.probe(channel, pseudo_channel, bank, physical_row)
            for physical_row in range(start, end, stride)
        ]
        return SubarrayScanResult(observations=tuple(observations))

    def refine_boundary(self, channel: int, pseudo_channel: int, bank: int,
                        low: int, high: int) -> int:
        """Locate the exact subarray start within (low, high].

        Precondition: exactly one boundary lies in the range (e.g. the
        gap between two coarse-scan probes that straddled it).  An
        interior probe carries no directional information — disturbance
        is symmetric inside a subarray — so the refinement is a linear
        scan of the gap, which a coarse scan keeps small (``stride``
        probes at most).
        """
        if not low < high:
            raise ExperimentError(f"need low < high, got [{low}, {high}]")
        for physical_row in range(low + 1, high + 1):
            observation = self.probe(channel, pseudo_channel, bank,
                                     physical_row)
            if observation.classification == LOWER_EDGE:
                return physical_row
            if observation.classification == UPPER_EDGE:
                return physical_row + 1
        raise ExperimentError(
            f"no subarray boundary found in ({low}, {high}]")

"""Spatial sweep orchestration for the Figs. 3-6 campaigns.

The paper measures BER and HC_first over the first, middle, and last 3K
rows of a bank in every channel (Figs. 3-5), and a 300-row slice of all
256 banks (Fig. 6).  A :class:`SpatialSweep` reproduces those campaigns
with configurable subsampling: hammering every row of a 3K region is
dominated by simulation time exactly as it is dominated by hammering time
on the FPGA, so benchmarks default to evenly-spaced samples per region and
scale up via environment variables:

============================  =============================================
``REPRO_ROWS_PER_REGION``     BER victims sampled per 3K-row region
``REPRO_HCFIRST_ROWS``        HC_first victims per region (searches are
                              ~20x the cost of one BER test)
``REPRO_REPETITIONS``         independent repetitions of each measurement
``REPRO_REGION_SIZE``         region size in rows (paper: 3072)
``REPRO_JOBS``                worker processes for the sweep (1 = serial)
============================  =============================================

Setting ``jobs > 1`` does not change this module: :class:`SpatialSweep`
is always the serial reference implementation.  The parallel executor in
:mod:`repro.core.parallel` shards a sweep by (channel, pseudo channel,
bank, region) and merges the per-shard datasets back into exactly the
record order the serial path produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bender.board import BenderBoard
from repro.core.ber import BerExperiment
from repro.core.experiment import ExperimentConfig
from repro.core.hcfirst import HcFirstSearch
from repro.core.patterns import DataPattern, STANDARD_PATTERNS
from repro.core.results import (
    REGION_FIRST,
    REGION_LAST,
    REGION_MIDDLE,
    REGIONS,
    CharacterizationDataset,
)
from repro.core.wcdp import append_wcdp_records
from repro.dram.address import DramAddress, RowAddressMapper
from repro.engine import EngineSession, ExecutionPlan, WorkItem
from repro.envutil import env_int
from repro.errors import ExperimentError
from repro.faults.plan import FaultSpec
from repro.faults.thermal import ThermalGuard
from repro.obs import ObsConfig, get_metrics, get_tracer

ProgressCallback = Callable[[str], None]


@dataclass(frozen=True)
class SweepConfig:
    """Axes and sampling density of one spatial sweep."""

    channels: Tuple[int, ...] = tuple(range(8))
    pseudo_channels: Tuple[int, ...] = (0,)
    banks: Tuple[int, ...] = (0,)
    regions: Tuple[str, ...] = REGIONS
    #: Rows per region in the paper's campaign (first/middle/last 3K).
    region_size: int = 3072
    #: BER victims sampled per region.
    rows_per_region: int = 16
    #: HC_first victims sampled per region (subset of the BER victims).
    hcfirst_rows_per_region: int = 6
    patterns: Tuple[DataPattern, ...] = STANDARD_PATTERNS
    include_ber: bool = True
    include_hcfirst: bool = True
    repetitions: int = 1
    #: Drop stored row data between regions to bound memory in big sweeps.
    release_rows_between_regions: bool = True
    #: Synthesize the WCDP records after the sweep (Figs. 3-5 need them).
    append_wcdp: bool = True
    #: Worker processes for the sweep; 1 = the serial path in this module,
    #: > 1 = :class:`repro.core.parallel.ParallelSweepRunner` sharding.
    jobs: int = 1
    #: Per-shard wall-clock timeout for parallel runs (None = unlimited).
    shard_timeout_s: Optional[float] = None
    #: Observability carried across the process boundary: the parallel
    #: executor injects this into shard configs so workers know what to
    #: collect and where to spool it (None = nothing; the serial path
    #: ignores it and uses the process's current collectors instead).
    obs: Optional[ObsConfig] = None
    #: Deterministic fault plan for resilience testing (None = consult
    #: ``$REPRO_FAULTS``, see :meth:`repro.faults.FaultSpec.from_env`).
    faults: Optional[FaultSpec] = None
    experiment: ExperimentConfig = field(default_factory=ExperimentConfig)

    def __post_init__(self) -> None:
        if self.region_size <= 0:
            raise ExperimentError("region_size must be positive")
        if self.rows_per_region <= 0:
            raise ExperimentError("rows_per_region must be positive")
        if self.hcfirst_rows_per_region < 0:
            raise ExperimentError("hcfirst_rows_per_region must be >= 0")
        if self.repetitions <= 0:
            raise ExperimentError("repetitions must be positive")
        if self.jobs <= 0:
            raise ExperimentError("jobs must be positive")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ExperimentError("shard_timeout_s must be positive")
        unknown = set(self.regions) - set(REGIONS)
        if unknown:
            raise ExperimentError(f"unknown regions: {sorted(unknown)}")

    #: Environment knobs :meth:`from_env` consults, as
    #: field -> (variable, default, minimum).
    ENV_FIELDS = {
        "rows_per_region": ("REPRO_ROWS_PER_REGION", 16, 0),
        "hcfirst_rows_per_region": ("REPRO_HCFIRST_ROWS", 6, 0),
        "repetitions": ("REPRO_REPETITIONS", 1, 0),
        "region_size": ("REPRO_REGION_SIZE", 3072, 0),
        "jobs": ("REPRO_JOBS", 1, 1),
    }

    @classmethod
    def from_env(cls, **overrides) -> "SweepConfig":
        """Default config with sampling density read from the environment.

        Explicit ``overrides`` always win: the environment variable for
        an overridden field is not even read, so e.g. an invalid
        ``$REPRO_JOBS`` cannot poison a call that passes ``jobs=``
        explicitly.
        """
        values = dict(overrides)
        for name, (variable, default, minimum) in cls.ENV_FIELDS.items():
            if name not in values:
                values[name] = env_int(variable, default, minimum=minimum)
        return cls(**values)


def sweep_metadata(config: SweepConfig) -> dict:
    """The dataset metadata a sweep with ``config`` records.

    Shared by the serial and parallel executors so that both produce
    byte-identical exported datasets for the same config.  Deliberately
    excludes execution details (``jobs``): how a dataset was computed is
    not part of what was measured.
    """
    return {
        "channels": list(config.channels),
        "pseudo_channels": list(config.pseudo_channels),
        "banks": list(config.banks),
        "regions": list(config.regions),
        "region_size": config.region_size,
        "rows_per_region": config.rows_per_region,
        "hcfirst_rows_per_region": config.hcfirst_rows_per_region,
        "patterns": [pattern.name for pattern in config.patterns],
        "repetitions": config.repetitions,
        "ber_hammer_count": config.experiment.ber_hammer_count,
        "temperature_c": config.experiment.temperature_c,
        "profile": config.experiment.profile,
    }


class SpatialSweep:
    """Runs one characterization campaign over a device."""

    def __init__(self, board: BenderBoard, config: Optional[SweepConfig] = None,
                 mapper: Optional[RowAddressMapper] = None) -> None:
        """
        Args:
            board: the testing station (one physical chip).
            config: sweep axes and sampling density.
            mapper: the logical->physical row mapping to address physical
                neighbourhoods with.  Defaults to the device's mapping;
                pass the result of
                :func:`repro.core.mapping_re.reverse_engineer_mapping`
                to run the fully self-contained methodology (the two are
                verified equivalent in the integration tests).
        """
        self._board = board
        self._config = config or SweepConfig()
        wanted = self._config.experiment.profile
        actual = board.device.profile_name
        if wanted is not None and actual is not None and wanted != actual:
            raise ExperimentError(
                f"sweep is configured for device profile {wanted!r} but "
                f"the station was built as {actual!r}")
        self._session = EngineSession(board=board,
                                      experiment=self._config.experiment)
        self._mapper = mapper or board.device.mapper
        self._ber = BerExperiment(board.host, self._mapper,
                                  self._config.experiment)
        self._hcfirst = HcFirstSearch(board.host, self._mapper,
                                      self._config.experiment)
        self._thermal_guard: Optional[ThermalGuard] = None

    @property
    def config(self) -> SweepConfig:
        return self._config

    # ------------------------------------------------------------------
    def region_start(self, region: str) -> int:
        """First row of a named region (paper §3.1 regions)."""
        rows = self._board.device.geometry.rows
        size = min(self._config.region_size, rows)
        if region == REGION_FIRST:
            return 0
        if region == REGION_MIDDLE:
            return (rows - size) // 2
        if region == REGION_LAST:
            return rows - size
        raise ExperimentError(f"unknown region {region!r}")

    def region_rows(self, region: str, count: int) -> List[int]:
        """``count`` evenly spaced victim rows within a region.

        Rows whose wordline sits at a bank edge (only one physical
        neighbour) cannot be double-sided hammered and are skipped in
        favour of the nearest usable row.

        The even-spacing grid is computed first and each gridpoint is
        then bumped independently past edge rows, so one skip does not
        drag every subsequent sample off the grid (which would compress
        the spacing for the rest of the region).  A gridpoint whose
        forward bump would run past the region end falls back to the
        nearest unused row before it.
        """
        geometry = self._board.device.geometry
        start = self.region_start(region)
        size = min(self._config.region_size, geometry.rows)
        count = min(count, size)
        stride = max(1, size // count)
        end = start + size

        def usable(row: int) -> bool:
            return len(self._mapper.physical_neighbors(row)) == 2

        rows: List[int] = []
        previous = start - 1
        for index in range(count):
            gridpoint = max(start + index * stride, previous + 1)
            candidate = gridpoint
            while candidate < end and not usable(candidate):
                candidate += 1
            if candidate >= end:
                # Off the region end: take the closest unused row below
                # the gridpoint instead of silently dropping the sample.
                candidate = min(gridpoint, end - 1)
                while candidate > previous and not usable(candidate):
                    candidate -= 1
                if candidate <= previous:
                    continue  # no usable row left for this gridpoint
            rows.append(candidate)
            previous = candidate
        if len(set(rows)) != len(rows):
            raise ExperimentError(
                f"region_rows produced duplicate rows for region "
                f"{region!r}: {rows}")
        return rows

    # ------------------------------------------------------------------
    def run(self, progress: Optional[ProgressCallback] = None, *,
            apply_interference_controls: bool = True
            ) -> CharacterizationDataset:
        """Execute the campaign; returns the dataset (with WCDP records).

        Applies the §3.1 interference controls first: sets the chip
        temperature through the PID rig and writes the ECC mode register
        (forgetting the latter silently halves measured vulnerability —
        on-die ECC eats isolated bitflips).  Parallel sweep workers pass
        ``apply_interference_controls=False`` for the shards after a
        station's first, having applied the controls exactly once per
        station as this method does for a whole serial campaign.
        """
        config = self._config
        tracer = get_tracer()
        metrics = get_metrics()
        counts_before = (dict(self._board.device.command_counts)
                         if metrics.enabled else None)
        self._session.prepare(apply_interference_controls)
        # The thermal guard is armed *after* the controls settle the rig
        # so it captures the calibrated operating point to snap back to.
        self._thermal_guard = self._session.thermal_guard(config.faults)
        dataset = CharacterizationDataset(metadata=sweep_metadata(config))
        plan = ExecutionPlan.from_config(config)
        with tracer.span("sweep", channels=list(config.channels),
                         pseudo_channels=list(config.pseudo_channels),
                         banks=list(config.banks),
                         regions=list(config.regions)):
            for item in plan:
                self._sweep_item(dataset, item, progress)
            measured_ber, measured_hcfirst = dataset.record_counts()
            if self._thermal_guard is not None:
                thermal = self._thermal_guard.metadata()
                if thermal is not None:
                    dataset.metadata["thermal"] = thermal
            if config.append_wcdp:
                with tracer.span("wcdp"):
                    append_wcdp_records(dataset)
        if counts_before is not None:
            metrics.count_commands(counts_before,
                                   self._board.device.command_counts)
            metrics.counter("sweep.ber_records").inc(measured_ber)
            metrics.counter("sweep.hcfirst_records").inc(measured_hcfirst)
        return dataset

    def _sweep_item(self, dataset: CharacterizationDataset, item: WorkItem,
                    progress: Optional[ProgressCallback]) -> None:
        """Measure one :class:`~repro.engine.plan.WorkItem` (bank region)."""
        config = self._config
        device = self._board.device
        tracer = get_tracer()
        channel, pseudo_channel = item.channel, item.pseudo_channel
        bank, region = item.bank, item.region
        if progress is not None:
            progress(f"ch{channel} pc{pseudo_channel} ba{bank} "
                     f"region={region}")
        with tracer.span("region", channel=channel,
                         pseudo_channel=pseudo_channel, bank=bank,
                         region=region):
            ber_rows = self.region_rows(region, config.rows_per_region)
            hcfirst_rows = ber_rows[:config.hcfirst_rows_per_region]
            for row in ber_rows:
                victim = DramAddress(channel, pseudo_channel, bank, row)
                guard = self._thermal_guard
                if guard is not None:
                    guard.before_cell(channel, pseudo_channel, bank, row)
                with tracer.span("cell", row=row):
                    for repetition in range(config.repetitions):
                        if config.include_ber:
                            with tracer.span("ber",
                                             repetition=repetition):
                                dataset.extend(self._ber.run_patterns(
                                    victim, config.patterns, region,
                                    repetition))
                        if (config.include_hcfirst
                                and row in hcfirst_rows):
                            with tracer.span("hcfirst",
                                             repetition=repetition):
                                dataset.extend(
                                    self._hcfirst.record_patterns(
                                        victim, config.patterns,
                                        region, repetition))
                if guard is not None:
                    guard.after_cell()
        if config.release_rows_between_regions:
            device.bank(channel, pseudo_channel, bank).release_all_rows()

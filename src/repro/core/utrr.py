"""The U-TRR experiment: uncovering the undisclosed in-DRAM TRR (§5).

U-TRR [Hassan+ MICRO'21] turns retention failures into a side channel
that reveals whether the DRAM chip internally refreshed a row.  One
iteration of the paper's experiment:

1. profile row R's retention time T (done once, by
   :class:`~repro.core.retention_profiler.RetentionProfiler`),
2. refresh R (activate + precharge once) — here: rewrite its data, which
   also restores charge,
3. wait T/2,
4. activate and precharge row R+1 (the physical neighbour): if a hidden
   TRR exists, its sampler records R+1 as a potential aggressor,
5. issue one periodic REF — the only opportunity a TRR mechanism has to
   preventively refresh R+1's victims (including R),
6. wait another T/2, then read R: **no retention flips means something
   refreshed R mid-iteration** — a TRR fingerprint.

Running 100 iterations, the paper observes R is refreshed once every 17
iterations, concluding the chip implements a proprietary TRR that acts on
every 17th REF.  :class:`UTrrExperiment` reproduces the procedure and
infers the period from the observed refresh iterations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bender.host import HostInterface
from repro.core.retention_profiler import RetentionProfile, RetentionProfiler
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError


@dataclass(frozen=True)
class UTrrResult:
    """Outcome of one U-TRR campaign on one profiled row."""

    row: DramAddress
    profile: RetentionProfile
    #: Per-iteration flag: True where the read showed *no* retention
    #: flips, i.e. the row was refreshed inside the iteration.
    refreshed: Tuple[bool, ...]
    #: Inferred TRR activation period in REF commands (None if no
    #: periodic refreshes were observed).
    inferred_period: Optional[int]

    @property
    def iterations(self) -> int:
        return len(self.refreshed)

    @property
    def refresh_iterations(self) -> List[int]:
        return [index for index, flag in enumerate(self.refreshed) if flag]

    @property
    def trr_detected(self) -> bool:
        return self.inferred_period is not None


def infer_period(refresh_iterations: List[int]) -> Optional[int]:
    """Modal gap between consecutive refresh observations.

    A sampler-based TRR firing every Nth REF with one REF per iteration
    produces refreshes exactly N iterations apart; noise (e.g. the
    regular refresh pointer sweeping over the row) shows up as outlier
    gaps, which the mode discards.
    """
    if len(refresh_iterations) < 2:
        return None
    gaps = [second - first for first, second in
            zip(refresh_iterations, refresh_iterations[1:])]
    (modal_gap, count), = Counter(gaps).most_common(1)
    if count < max(2, len(gaps) // 2):
        return None  # No dominant periodicity.
    return modal_gap


class UTrrExperiment:
    """Runs the six-step U-TRR loop against a testing station."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 profiler: Optional[RetentionProfiler] = None,
                 fill_byte: int = 0x00,
                 half_wait_factor: float = 0.55) -> None:
        """
        Args:
            host: testing-station interface.
            mapper: reverse-engineered row mapping (to find R's physical
                neighbour for step 4).
            profiler: retention profiler (defaults to one with matching
                fill byte).
            fill_byte: data written into R each iteration.
            half_wait_factor: each half-wait is this fraction of the
                profiled T.  Slightly above 0.5 so an un-refreshed
                iteration (2 x factor > 1) reliably crosses the failure
                onset while a mid-iteration refresh (factor < 1) reliably
                does not.
        """
        if not 0.5 <= half_wait_factor < 1.0:
            raise ExperimentError(
                "half_wait_factor must be in [0.5, 1.0) so that a "
                "refreshed iteration stays under T and an unrefreshed "
                "one exceeds it")
        self._host = host
        self._mapper = mapper
        self._profiler = profiler or RetentionProfiler(host,
                                                       fill_byte=fill_byte)
        self._fill_byte = fill_byte
        self._half_wait_factor = half_wait_factor

    def run(self, row: DramAddress, iterations: int = 100,
            profile: Optional[RetentionProfile] = None) -> UTrrResult:
        """Execute the campaign on row R.

        Args:
            row: the canary row R (pick one away from the refresh
                pointer's sweep during the campaign; with one REF per
                iteration the pointer covers ``2 * iterations`` rows
                from its current position).
            iterations: experiment iterations (paper: 100).
            profile: reuse an existing retention profile of ``row``.
        """
        if iterations < 1:
            raise ExperimentError("iterations must be >= 1")
        host = self._host
        geometry = host.device.geometry

        if profile is None:
            profile = self._profiler.profile(row)
        half_wait_s = self._half_wait_factor * profile.retention_time_s

        physical = self._mapper.logical_to_physical(row.row)
        if physical + 1 >= geometry.rows:
            raise ExperimentError(
                f"row {row} has no higher-address physical neighbour")
        neighbor_logical = self._mapper.physical_to_logical(physical + 1)

        fill = bytes([self._fill_byte]) * geometry.row_bytes
        expected = byte_fill_bits(self._fill_byte, geometry.row_bytes)

        refreshed: List[bool] = []
        for _ in range(iterations):
            # Step 2: refresh R (restore charge and data).
            host.write_row(row, fill)
            # Step 3: first half wait.
            host.wait_seconds(half_wait_s)
            # Step 4: activate the neighbour once (sampler bait).
            host.activate_precharge(row.with_row(neighbor_logical))
            # Step 5: one periodic REF (the TRR's firing opportunity).
            host.refresh(row.channel, row.pseudo_channel)
            # Step 6: second half wait, then check for retention flips.
            host.wait_seconds(half_wait_s)
            read_bits = host.read_row(row)
            flips = count_flips(read_bits, expected)
            refreshed.append(flips == 0)

        period = infer_period(
            [index for index, flag in enumerate(refreshed) if flag])
        return UTrrResult(row=row, profile=profile,
                          refreshed=tuple(refreshed),
                          inferred_period=period)

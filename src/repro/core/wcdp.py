"""Per-row worst-case data pattern (WCDP) selection.

Paper §3.1: *"We define the worst-case data pattern (WCDP) as the data
pattern that causes the smallest HC_first for a given row.  When multiple
data patterns cause the smallest HC_first, we select WCDP as the data
pattern that causes the largest BER at a hammer count of 256K."*

Figures 3 and 4 plot WCDP as a fifth column next to the four Table 1
patterns; Figure 5 uses the per-row WCDP for its row sweep.  This module
derives WCDP views from a dataset containing per-pattern BER and HC_first
records and emits synthesized records carrying ``pattern="WCDP"``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.patterns import WCDP_NAME
from repro.core.results import (
    BerRecord,
    CharacterizationDataset,
    HcFirstRecord,
    RowKey,
)
from repro.errors import AnalysisError


def _mean_ber_by_pattern(records: List[BerRecord]) -> Dict[str, float]:
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for record in records:
        sums[record.pattern] = sums.get(record.pattern, 0.0) + record.ber
        counts[record.pattern] = counts.get(record.pattern, 0) + 1
    return {pattern: sums[pattern] / counts[pattern] for pattern in sums}


def _best_hcfirst_by_pattern(
        records: List[HcFirstRecord]) -> Dict[str, Optional[int]]:
    best: Dict[str, Optional[int]] = {}
    for record in records:
        current = best.get(record.pattern, "unset")
        if current == "unset":
            best[record.pattern] = record.hc_first
            continue
        if record.hc_first is None:
            continue
        if current is None or record.hc_first < current:
            best[record.pattern] = record.hc_first
    return best


def select_wcdp(dataset: CharacterizationDataset,
                row_key: RowKey) -> str:
    """The WCDP name for one row, by the paper's rule.

    Smallest (uncensored) HC_first wins; ties — including the case where
    every pattern is censored — are broken by largest BER at 256K.  Rows
    with no HC_first data at all fall back to the largest-BER rule.
    """
    hc_records = [r for r in dataset.hcfirst_records if r.row_key == row_key]
    ber_records = [r for r in dataset.ber_records
                   if r.row_key == row_key and r.pattern != WCDP_NAME]
    if not hc_records and not ber_records:
        raise AnalysisError(f"no records for row {row_key}")

    mean_ber = _mean_ber_by_pattern(ber_records)

    if hc_records:
        best_hc = _best_hcfirst_by_pattern(
            [r for r in hc_records if r.pattern != WCDP_NAME])
        uncensored = {pattern: hc for pattern, hc in best_hc.items()
                      if hc is not None}
        if uncensored:
            smallest = min(uncensored.values())
            tied = sorted(pattern for pattern, hc in uncensored.items()
                          if hc == smallest)
        else:
            tied = sorted(best_hc)
        if len(tied) == 1:
            return tied[0]
        if mean_ber:
            return max(tied, key=lambda pattern: (
                mean_ber.get(pattern, -1.0), pattern))
        return tied[0]

    if not mean_ber:
        raise AnalysisError(f"no per-pattern BER for row {row_key}")
    return max(mean_ber, key=lambda pattern: (mean_ber[pattern], pattern))


def wcdp_assignments(
        dataset: CharacterizationDataset) -> Dict[RowKey, str]:
    """WCDP name for every row present in the dataset."""
    row_keys = {record.row_key for record in dataset.ber_records}
    row_keys.update(record.row_key for record in dataset.hcfirst_records)
    return {row_key: select_wcdp(dataset, row_key)
            for row_key in sorted(row_keys)}


def derive_wcdp_records(
        dataset: CharacterizationDataset
) -> Tuple[List[BerRecord], List[HcFirstRecord]]:
    """Synthesize ``pattern="WCDP"`` records for plotting.

    For each row, copies the records of its selected WCDP with the
    pattern field rewritten — the exact construction behind the WCDP
    columns of Figs. 3 and 4.
    """
    assignments = wcdp_assignments(dataset)
    ber_out: List[BerRecord] = []
    hc_out: List[HcFirstRecord] = []
    for record in dataset.ber_records:
        if record.pattern == WCDP_NAME:
            continue
        if assignments.get(record.row_key) == record.pattern:
            ber_out.append(replace(record, pattern=WCDP_NAME))
    for record in dataset.hcfirst_records:
        if record.pattern == WCDP_NAME:
            continue
        if assignments.get(record.row_key) == record.pattern:
            hc_out.append(replace(record, pattern=WCDP_NAME))
    return ber_out, hc_out


def append_wcdp_records(dataset: CharacterizationDataset) -> None:
    """Add the synthesized WCDP records to the dataset in place."""
    ber_records, hc_records = derive_wcdp_records(dataset)
    dataset.ber_records.extend(ber_records)
    dataset.hcfirst_records.extend(hc_records)

"""Defense implications of the spatial-variation findings (§4 summary).

The paper's second implication: *"an RH defense mechanism can adapt
itself to the heterogeneous distribution of the RH vulnerability across
channels and subarrays, which may allow the defense mechanism to more
efficiently prevent RH bitflips."*

This subpackage quantifies that suggestion with a PARA-style
probabilistic defense:

* :mod:`repro.defenses.para` — the classic uniform-probability baseline,
* :mod:`repro.defenses.adaptive` — a per-channel probability derived
  from characterization data,
* :mod:`repro.defenses.evaluation` — the harness comparing both at equal
  protection (ablation A4).
"""

from repro.defenses.adaptive import (
    AdaptivePolicy,
    SubarrayAdaptivePara,
    SubarrayAdaptivePolicy,
    adaptive_policy_from_dataset,
)
from repro.defenses.para import DefenseOutcome, ParaDefense
from repro.defenses.evaluation import DefenseComparison, compare_defenses

__all__ = [
    "AdaptivePolicy",
    "SubarrayAdaptivePara",
    "SubarrayAdaptivePolicy",
    "DefenseComparison",
    "DefenseOutcome",
    "ParaDefense",
    "adaptive_policy_from_dataset",
    "compare_defenses",
]

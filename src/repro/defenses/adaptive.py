"""Vulnerability-adaptive PARA (the paper's §4 defense implication).

Uniform PARA must provision its refresh probability for the *most*
vulnerable channel of the stack: protection degrades exponentially once
an aggressor can reach ``HC_first`` activations between two preventive
refreshes, and the stack's security is its weakest channel's.  But the
paper shows channels differ substantially in vulnerability — so a
defense that knows the per-channel ``HC_first`` (e.g. from a
manufacturing-time characterization like this library performs) can run
robust channels at proportionally lower probability and save refreshes.

:class:`AdaptivePolicy` scales a base probability by the ratio of the
stack-wide minimum ``HC_first`` to each channel's own minimum:
``p_ch = p_base * (min_hc_stack / min_hc_ch)`` — equalizing the expected
number of preventive refreshes an aggressor sees within one HC_first
window across channels, i.e. equal protection at lower total overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.bender.host import HostInterface
from repro.core.results import CharacterizationDataset
from repro.defenses.para import ParaDefense
from repro.dram.address import RowAddressMapper
from repro.errors import ExperimentError


@dataclass(frozen=True)
class AdaptivePolicy:
    """Per-channel refresh probabilities derived from characterization."""

    base_probability: float
    per_channel: Mapping[int, float]

    def probability_for(self, channel: int) -> float:
        try:
            return self.per_channel[channel]
        except KeyError:
            # Unknown channels get the conservative base probability.
            return self.base_probability

    def mean_probability(self) -> float:
        values = list(self.per_channel.values())
        if not values:
            return self.base_probability
        return float(np.mean(values))


def adaptive_policy_from_dataset(dataset: CharacterizationDataset,
                                 base_probability: float,
                                 statistic: str = "mean") -> AdaptivePolicy:
    """Build the per-channel policy from measured HC_first data.

    ``base_probability`` is what a uniform PARA would use — provisioned
    for the stack's minimum HC_first.  Each channel's probability is
    scaled down by how much more robust that channel is, measured by
    ``statistic``:

    * ``"mean"`` (default) — per-channel mean HC_first.  Statistically
      stable at the small sample sizes a quick characterization yields;
      conservative, because the scaling never exceeds the worst/best
      mean ratio.
    * ``"min"`` — per-channel minimum HC_first.  The theoretically exact
      choice for equalized protection, but a noisy estimator unless the
      characterization covered many rows per channel.
    """
    if not 0.0 < base_probability <= 1.0:
        raise ExperimentError(
            f"base_probability must be in (0, 1], got {base_probability}")
    if statistic not in ("mean", "min"):
        raise ExperimentError(
            f"statistic must be 'mean' or 'min', got {statistic!r}")
    per_channel_values: Dict[int, list] = {}
    for record in dataset.hcfirst(include_censored=False):
        per_channel_values.setdefault(record.channel, []).append(
            record.hc_first)
    if not per_channel_values:
        raise ExperimentError(
            "dataset has no uncensored HC_first records to adapt to")
    if statistic == "mean":
        per_channel_stat = {
            channel: float(np.mean(values))
            for channel, values in per_channel_values.items()}
    else:
        per_channel_stat = {
            channel: float(min(values))
            for channel, values in per_channel_values.items()}
    stack_worst = min(per_channel_stat.values())
    per_channel = {
        channel: min(1.0, base_probability * stack_worst / value)
        for channel, value in per_channel_stat.items()
    }
    return AdaptivePolicy(base_probability=base_probability,
                          per_channel=per_channel)


class AdaptivePara(ParaDefense):
    """PARA whose probability follows an :class:`AdaptivePolicy`."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 policy: AdaptivePolicy, seed: int = 0) -> None:
        super().__init__(host, mapper, policy.base_probability, seed=seed)
        self._policy = policy

    @property
    def policy(self) -> AdaptivePolicy:
        return self._policy

    def probability_for(self, channel: int) -> float:
        return self._policy.probability_for(channel)


@dataclass(frozen=True)
class SubarrayAdaptivePolicy:
    """Per-(channel, subarray-class) probabilities.

    The paper's §4 suggestion covers subarrays too: the bank's final
    subarray is several times more robust than the rest (observation
    O9), so a defense that knows the discovered subarray layout can run
    victims there at a proportionally lower probability.

    ``last_subarray_relief`` is the measured robustness ratio of the
    final subarray (e.g. from the Fig. 5 campaign: mean middle-region
    BER over mean final-subarray BER, conservatively capped).
    """

    channel_policy: AdaptivePolicy
    #: First physical row of the bank's final subarray (from the
    #: footnote-3 reverse engineering).
    last_subarray_start: int
    #: Probability divisor inside the final subarray (>= 1).
    last_subarray_relief: float

    def __post_init__(self) -> None:
        if self.last_subarray_relief < 1.0:
            raise ExperimentError(
                "last_subarray_relief must be >= 1 (the final subarray "
                "is more robust, never less)")
        if self.last_subarray_start < 0:
            raise ExperimentError("last_subarray_start must be >= 0")

    def probability_for(self, channel: int, physical_row: int) -> float:
        base = self.channel_policy.probability_for(channel)
        if physical_row >= self.last_subarray_start:
            return base / self.last_subarray_relief
        return base


class SubarrayAdaptivePara(ParaDefense):
    """PARA adapting to both channel and subarray vulnerability."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 policy: SubarrayAdaptivePolicy, seed: int = 0) -> None:
        super().__init__(host, mapper,
                         policy.channel_policy.base_probability, seed=seed)
        self._subarray_policy = policy
        self._mapper_for_rows = mapper

    def probability_for(self, channel: int) -> float:
        # Channel-only view (used when no row context is available).
        return self._subarray_policy.channel_policy.probability_for(channel)

    def probability_for_victim(self, victim) -> float:
        physical = self._mapper_for_rows.logical_to_physical(victim.row)
        return self._subarray_policy.probability_for(victim.channel,
                                                     physical)

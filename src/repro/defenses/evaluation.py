"""Defense evaluation harness: uniform vs adaptive PARA (ablation A4).

Runs the same double-sided attack workload against both defenses and
reports flips (protection) and refreshes issued (overhead).  The claim
under test — the paper's §4 implication — is that the adaptive policy
matches uniform PARA's protection at measurably lower overhead, because
only the most vulnerable channels pay the worst-case probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bender.board import BenderBoard
from repro.core.patterns import DataPattern, ROWSTRIPE0
from repro.core.results import CharacterizationDataset
from repro.defenses.adaptive import AdaptivePara, adaptive_policy_from_dataset
from repro.defenses.para import DefenseOutcome, ParaDefense
from repro.dram.address import DramAddress, RowAddressMapper


@dataclass(frozen=True)
class DefenseComparison:
    """Aggregate outcome of one defense over the attack workload."""

    name: str
    outcomes: Sequence[DefenseOutcome]

    @property
    def total_flips(self) -> int:
        return sum(outcome.flips for outcome in self.outcomes)

    @property
    def victims_compromised(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.prevented)

    @property
    def total_refreshes(self) -> int:
        return sum(outcome.refreshes_issued for outcome in self.outcomes)

    @property
    def mean_overhead_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(outcome.overhead_fraction for outcome in self.outcomes)
                / len(self.outcomes))

    def summary(self) -> str:
        return (f"{self.name:<10} victims compromised: "
                f"{self.victims_compromised}/{len(self.outcomes)}  "
                f"flips: {self.total_flips}  refreshes: "
                f"{self.total_refreshes}  overhead: "
                f"{self.mean_overhead_fraction:.5%}")


def compare_defenses(board: BenderBoard, dataset: CharacterizationDataset,
                     victims: Sequence[DramAddress],
                     base_probability: float,
                     hammer_count: int = 256 * 1024,
                     pattern: DataPattern = ROWSTRIPE0,
                     mapper: RowAddressMapper = None,
                     seed: int = 0) -> Dict[str, DefenseComparison]:
    """Attack each victim under no defense, uniform PARA, and adaptive
    PARA; returns per-defense aggregates.

    ``dataset`` must contain HC_first records (it feeds the adaptive
    policy).  ``base_probability`` is the uniform PARA provisioning.
    """
    mapper = mapper or board.device.mapper
    host = board.host

    policy = adaptive_policy_from_dataset(dataset, base_probability)
    defenses = {
        "none": ParaDefense(host, mapper, probability=0.0, seed=seed),
        "uniform": ParaDefense(host, mapper, probability=base_probability,
                               seed=seed),
        "adaptive": AdaptivePara(host, mapper, policy, seed=seed),
    }

    results: Dict[str, DefenseComparison] = {}
    for name, defense in defenses.items():
        outcomes: List[DefenseOutcome] = []
        for victim in victims:
            outcomes.append(defense.defend_attack(victim, pattern,
                                                  hammer_count))
        results[name] = DefenseComparison(name=name, outcomes=outcomes)
    return results

"""PARA: Probabilistic Adjacent Row Activation (Kim+ ISCA'14).

PARA is the canonical low-cost RowHammer defense: on every activation,
the memory controller refreshes the activated row's physical neighbours
with a small probability ``p``.  An aggressor then cannot accumulate
``HC_first`` activations against a victim without the victim being
refreshed in between, except with probability that shrinks exponentially
in ``p * HC_first``.

The simulation is exact with respect to the defense's probabilistic
semantics: trigger positions are sampled per activation (Bernoulli(p)
over the attack's activation stream), hammering between triggers runs
through the normal bulk path, and each trigger issues real ACT/PRE pairs
to the neighbours — paying the same overhead a hardware PARA would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bender.host import HostInterface
from repro.core.hammer import DoubleSidedHammer, prepare_neighborhood
from repro.core.patterns import DataPattern
from repro.core.rowdata import byte_fill_bits, count_flips
from repro.dram.address import DramAddress, RowAddressMapper
from repro.errors import ExperimentError


@dataclass(frozen=True)
class DefenseOutcome:
    """Result of one defended double-sided attack."""

    victim: DramAddress
    hammer_count: int
    probability: float
    flips: int
    #: Neighbour-refresh activations the defense issued (its overhead).
    refreshes_issued: int

    @property
    def prevented(self) -> bool:
        return self.flips == 0

    @property
    def overhead_fraction(self) -> float:
        """Defense activations per attack activation."""
        if self.hammer_count == 0:
            return 0.0
        return self.refreshes_issued / (2 * self.hammer_count)


class ParaDefense:
    """Uniform-probability PARA protecting a testing station."""

    def __init__(self, host: HostInterface, mapper: RowAddressMapper,
                 probability: float, seed: int = 0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ExperimentError(
                f"probability must be in [0, 1], got {probability}")
        self._host = host
        self._mapper = mapper
        self._probability = probability
        self._rng = np.random.Generator(np.random.Philox(seed))

    @property
    def probability(self) -> float:
        return self._probability

    def probability_for(self, channel: int) -> float:
        """Uniform PARA ignores the channel (adaptive variants override)."""
        return self._probability

    def probability_for_victim(self, victim: DramAddress) -> float:
        """Refresh probability in effect while attacking ``victim``.

        Defaults to the channel-level policy; subarray-aware variants
        override this with row-resolved probabilities.
        """
        return self.probability_for(victim.channel)

    # ------------------------------------------------------------------
    def defend_attack(self, victim: DramAddress, pattern: DataPattern,
                      hammer_count: int) -> DefenseOutcome:
        """Run a double-sided attack on ``victim`` under this defense.

        Samples the defense's trigger positions over the attack's
        ``2 * hammer_count`` activations, hammers the gaps between
        triggers, and refreshes the triggering aggressor's neighbours at
        each trigger — semantically identical to checking a Bernoulli(p)
        coin on every activation.
        """
        host = self._host
        mapper = self._mapper
        hammer = DoubleSidedHammer(host, mapper)
        probability = self.probability_for_victim(victim)

        prepare_neighborhood(host, mapper, victim, pattern)
        aggressors = hammer.aggressors_of(victim)
        if len(aggressors) < 2:
            raise ExperimentError(
                f"victim {victim} lacks two physical neighbours")

        activations = 2 * hammer_count
        trigger_count = int(self._rng.binomial(activations, probability))
        triggers = np.sort(self._rng.choice(
            activations, size=trigger_count, replace=False))

        refreshes = 0
        cursor = 0
        for trigger in triggers:
            gap_hammers = (int(trigger) - cursor) // 2
            if gap_hammers > 0:
                self._run_hammers(victim, aggressors, gap_hammers)
            cursor = int(trigger)
            # The triggering activation is one of the two aggressors;
            # refresh that aggressor's physical neighbours (the victim is
            # always among them in a double-sided attack).
            aggressor_row = aggressors[cursor % len(aggressors)]
            for neighbor in mapper.physical_neighbors(aggressor_row):
                host.activate_precharge(victim.with_row(neighbor))
                refreshes += 1
        remaining = (activations - cursor) // 2
        if remaining > 0:
            self._run_hammers(victim, aggressors, remaining)

        read_bits = host.read_row(victim)
        expected = byte_fill_bits(pattern.victim_byte,
                                  host.device.geometry.row_bytes)
        return DefenseOutcome(victim=victim, hammer_count=hammer_count,
                              probability=probability,
                              flips=count_flips(read_bits, expected),
                              refreshes_issued=refreshes)

    def _run_hammers(self, victim: DramAddress, aggressors, count: int
                     ) -> None:
        builder = self._host.builder()
        with builder.loop(count):
            for row in aggressors:
                builder.act(victim.channel, victim.pseudo_channel,
                            victim.bank, row)
                builder.pre(victim.channel, victim.pseudo_channel,
                            victim.bank)
        self._host.run(builder.build())

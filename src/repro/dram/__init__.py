"""Behavioural model of a DRAM device.

This subpackage is the hardware substitute for the real chips the
methodology targets — by default the 4 GiB HBM2 stack the paper
characterizes, with DDR4/DDR5 families available through
:mod:`repro.dram.profiles`.  It exposes the same observation surface a
memory controller has — ACT/PRE/RD/WR/REF commands and mode registers —
while the hidden ground truth (per-cell RowHammer thresholds, cell
orientations, retention times, the proprietary TRR engine) lives behind
that interface.

Layering, bottom to top::

    geometry / address / commands / timing / modereg    (vocabulary)
    cellmodel / subarrays / calibration                 (ground truth)
    disturb / retention / ecc / trr                     (behaviour engines)
    bank -> channel -> device                           (state machines)
    profiles                                            (device families)

Naming note: the family-level bundle (geometry + timing + TRR policy +
calibration) is :class:`repro.dram.profiles.DeviceProfile`; the name
``DeviceProfile`` exported *here* remains the calibration ground truth
(:class:`~repro.dram.calibration.CalibrationProfile`) for backward
compatibility with pre-refactor callers.
"""

from repro.dram.address import DramAddress, RowAddressMapper
from repro.dram.calibration import (CalibrationProfile, DeviceProfile,
                                    default_profile)
from repro.dram.commands import (
    Activate,
    Command,
    Precharge,
    PrechargeAll,
    Read,
    Refresh,
    Write,
)
from repro.dram.device import Device, HBM2Device
from repro.dram.geometry import Geometry, HBM2Geometry
from repro.dram.modereg import ModeRegisters
from repro.dram.profiles import (get_profile, list_profiles,
                                 register_profile, resolve_profile)
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingParameters
from repro.dram.trr import TrrConfig

__all__ = [
    "Activate",
    "CalibrationProfile",
    "Command",
    "Device",
    "DeviceProfile",
    "DramAddress",
    "Geometry",
    "HBM2Device",
    "HBM2Geometry",
    "ModeRegisters",
    "Precharge",
    "PrechargeAll",
    "Read",
    "Refresh",
    "RowAddressMapper",
    "SubarrayLayout",
    "TimingParameters",
    "TrrConfig",
    "Write",
    "default_profile",
    "get_profile",
    "list_profiles",
    "register_profile",
    "resolve_profile",
]

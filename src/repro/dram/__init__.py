"""Behavioural model of an HBM2 DRAM device.

This subpackage is the hardware substitute for the real 4 GiB HBM2 stack
the paper characterizes.  It exposes the same observation surface a memory
controller has — ACT/PRE/RD/WR/REF commands and mode registers — while the
hidden ground truth (per-cell RowHammer thresholds, cell orientations,
retention times, the proprietary TRR engine) lives behind that interface.

Layering, bottom to top::

    geometry / address / commands / timing / modereg    (vocabulary)
    cellmodel / subarrays / calibration                 (ground truth)
    disturb / retention / ecc / trr                     (behaviour engines)
    bank -> channel -> device                           (state machines)
"""

from repro.dram.address import DramAddress, RowAddressMapper
from repro.dram.calibration import DeviceProfile, default_profile
from repro.dram.commands import (
    Activate,
    Command,
    Precharge,
    PrechargeAll,
    Read,
    Refresh,
    Write,
)
from repro.dram.device import HBM2Device
from repro.dram.geometry import HBM2Geometry
from repro.dram.modereg import ModeRegisters
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingParameters
from repro.dram.trr import TrrConfig

__all__ = [
    "Activate",
    "Command",
    "DeviceProfile",
    "DramAddress",
    "HBM2Device",
    "HBM2Geometry",
    "ModeRegisters",
    "Precharge",
    "PrechargeAll",
    "Read",
    "Refresh",
    "RowAddressMapper",
    "SubarrayLayout",
    "TimingParameters",
    "TrrConfig",
    "Write",
    "default_profile",
]

"""DRAM addresses and logical-to-physical row address mapping.

DRAM vendors remap the row addresses the memory controller uses (logical
addresses) onto in-silicon wordline positions (physical addresses), e.g.
to simplify routing or implement post-manufacturing repair.  RowHammer
adjacency is *physical*, so the paper reverse-engineers the mapping before
hammering (§3.1, following Orosa et al. MICRO'21).

The device model implements a configurable mapper so the reverse-
engineering methodology in :mod:`repro.core.mapping_re` has something real
to discover.  The default scheme XOR-swizzles a low address bit with a
higher one — a simplified version of mappings observed on real DDR4
devices — and is an involution (applying it twice is the identity), which
is also true of real vendor mappings built from bit permutations and XORs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.dram.geometry import HBM2Geometry
from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class DramAddress:
    """A fully-qualified DRAM row (and optionally column) address.

    Rows here are *logical* (memory-controller-visible) unless a function
    explicitly says otherwise.
    """

    channel: int
    pseudo_channel: int
    bank: int
    row: int
    column: int = 0

    def with_row(self, row: int) -> "DramAddress":
        """Same bank coordinates, different row."""
        return DramAddress(self.channel, self.pseudo_channel, self.bank,
                           row, self.column)

    def with_column(self, column: int) -> "DramAddress":
        """Same row coordinates, different column."""
        return DramAddress(self.channel, self.pseudo_channel, self.bank,
                           self.row, column)

    def bank_key(self) -> Tuple[int, int, int]:
        """Hashable identity of the containing bank."""
        return (self.channel, self.pseudo_channel, self.bank)

    def validate(self, geometry: HBM2Geometry) -> None:
        """Raise :class:`~repro.errors.AddressError` if out of range."""
        geometry.check_channel(self.channel)
        geometry.check_pseudo_channel(self.pseudo_channel)
        geometry.check_bank(self.bank)
        geometry.check_row(self.row)
        geometry.check_column(self.column)

    def __str__(self) -> str:
        return (f"ch{self.channel}.pc{self.pseudo_channel}."
                f"ba{self.bank}.row{self.row}")


class RowAddressMapper:
    """Logical <-> physical row address translation.

    The mapping operates within one bank (all banks share the scheme, as
    on real devices).  The default scheme swaps two address-bit groups
    when a control bit is set::

        physical = logical XOR (swizzle_mask if logical & control_bit else 0)

    With ``control_bit = 0b1000`` and ``swizzle_mask = 0b0110`` this
    scrambles rows within every 16-row block while preserving block
    order, mimicking the locally-scrambled/globally-linear structure that
    reverse-engineering studies report.

    The identity mapping (``swizzle_mask = 0``) is available for tests.
    """

    def __init__(self, geometry: HBM2Geometry, *, control_bit: int = 0x8,
                 swizzle_mask: int = 0x6) -> None:
        if control_bit < 0 or swizzle_mask < 0:
            raise ConfigurationError("control_bit/swizzle_mask must be >= 0")
        if control_bit and control_bit & (control_bit - 1):
            raise ConfigurationError(
                f"control_bit must be a single bit, got {control_bit:#x}")
        if swizzle_mask & control_bit:
            raise ConfigurationError(
                "swizzle_mask must not overlap control_bit, got "
                f"mask={swizzle_mask:#x} control={control_bit:#x}")
        if control_bit >= geometry.rows or swizzle_mask >= geometry.rows:
            raise ConfigurationError(
                "control_bit/swizzle_mask outside row address width")
        self._geometry = geometry
        self._control_bit = control_bit
        self._swizzle_mask = swizzle_mask

    @classmethod
    def identity(cls, geometry: HBM2Geometry) -> "RowAddressMapper":
        """A mapper where logical == physical (for tests and baselines)."""
        return cls(geometry, control_bit=0, swizzle_mask=0)

    @property
    def is_identity(self) -> bool:
        return self._swizzle_mask == 0 or self._control_bit == 0

    def logical_to_physical(self, row: int) -> int:
        """Translate a controller-visible row number to a wordline index."""
        self._geometry.check_row(row)
        if self._control_bit and (row & self._control_bit):
            return row ^ self._swizzle_mask
        return row

    def physical_to_logical(self, row: int) -> int:
        """Translate a wordline index back to a controller-visible row.

        The default scheme is an involution, so this mirrors
        :meth:`logical_to_physical`; kept separate for clarity and for
        subclasses with non-involutive schemes.
        """
        return self.logical_to_physical(row)

    def physical_neighbors(self, row: int, distance: int = 1) -> Sequence[int]:
        """Logical rows physically adjacent to logical ``row``.

        Returns the logical addresses whose wordlines sit ``distance``
        wordlines above/below ``row``'s wordline, clipped at bank edges.
        This is what a double-sided hammer needs: the *logical* rows to
        activate so that the *physical* neighbours of the victim toggle.
        """
        if distance < 1:
            raise ConfigurationError(f"distance must be >= 1, got {distance}")
        physical = self.logical_to_physical(row)
        neighbors = []
        for candidate in (physical - distance, physical + distance):
            if 0 <= candidate < self._geometry.rows:
                neighbors.append(self.physical_to_logical(candidate))
        return neighbors

    def physical_distance(self, row_a: int, row_b: int) -> int:
        """Wordline distance between two logical rows."""
        return abs(self.logical_to_physical(row_a) -
                   self.logical_to_physical(row_b))

"""Bank state machine: row buffer, stored data, and flip materialization.

The bank is where the physics happens.  Data is stored per physical row as
an unpacked bit array; accumulated disturbance and charge age determine
bitflips, which *materialize* whenever a row's charge is sensed — on its
own activation, on a periodic refresh, or on a hidden TRR victim refresh.
Sensing writes the (possibly flipped) values back fully charged, exactly
like a real DRAM sense amplifier: once a flip is sensed it is locked into
the stored data, and the disturbance/retention clocks restart.

A row that has never been written holds no charge (all cells read as
their discharged value), so it can neither gain RowHammer nor retention
flips — which keeps untouched rows free.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.calibration import DeviceProfile
from repro.dram.cellmodel import (
    ECC_PARITY_BITS,
    ECC_WORD_BITS,
    GroundTruthProvider,
)
from repro.dram.disturb import DisturbanceTracker
from repro.dram.ecc import decode_words, encode_words
from repro.dram.geometry import HBM2Geometry
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingParameters
from repro.errors import CommandError

BankKey = Tuple[int, int, int]


class DeviceEnvironment:
    """Mutable ambient state shared by every bank of a device."""

    def __init__(self, temperature_c: float,
                 wordline_voltage_v: float = 2.5) -> None:
        self.temperature_c = temperature_c
        self.wordline_voltage_v = wordline_voltage_v


class Bank:
    """One DRAM bank of the simulated HBM2 stack."""

    def __init__(self, key: BankKey, geometry: HBM2Geometry,
                 profile: DeviceProfile, layout: SubarrayLayout,
                 truth: GroundTruthProvider, timing: TimingParameters,
                 environment: DeviceEnvironment) -> None:
        self._key = key
        self._geometry = geometry
        self._profile = profile
        self._layout = layout
        self._truth = truth
        self._timing = timing
        self._environment = environment

        rows = geometry.rows
        self._bits: Dict[int, np.ndarray] = {}
        self._parity: Dict[int, np.ndarray] = {}
        self._last_restore = np.zeros(rows, dtype=np.int64)
        self.disturbance = DisturbanceTracker(rows, layout, profile)
        self._open_physical: Optional[int] = None
        self._open_since: int = 0
        #: Most recent RowPress amplification per physical row; the
        #: bulk-loop fast path replays these for skipped iterations.
        self._last_open_factor: Dict[int, float] = {}

        # Cheap guards that skip materialization when no flip is possible.
        # The smallest threshold any cell of this bank can have is bounded
        # below by the floor times the most favourable scales; stay well
        # under it to be safe against hash-tail scale draws.
        channel = key[0]
        orientation_min = min(profile.true_scale_for(channel),
                              profile.anti_scale_for(channel))
        self._disturb_guard = (profile.threshold_floor *
                               profile.channel_scale(channel) *
                               orientation_min * 0.25)
        # Retention guard: ~5.5 sigma below the median covers the weakest
        # plausible cell at the reference temperature.
        self._retention_guard_s = (profile.retention_median_s *
                                   float(np.exp(-5.5 * profile.retention_sigma)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key(self) -> BankKey:
        return self._key

    @property
    def open_physical_row(self) -> Optional[int]:
        return self._open_physical

    @property
    def is_open(self) -> bool:
        return self._open_physical is not None

    def row_is_written(self, physical_row: int) -> bool:
        return physical_row in self._bits

    # ------------------------------------------------------------------
    # Command-level operations (physical row addressing; the device maps
    # logical addresses before calling in)
    # ------------------------------------------------------------------
    def activate(self, physical_row: int, cycle: int) -> None:
        """ACT: sense ``physical_row`` (materializing its flips) and
        restore its charge.  The neighbour disturbance is accounted at
        the closing PRE, because its magnitude depends on how long the
        row stays open (the RowPress effect, Luo+ ISCA'23)."""
        if self._open_physical is not None:
            raise CommandError(
                f"bank {self._key}: ACT while row "
                f"{self._open_physical} is open")
        self._geometry.check_row(physical_row)
        self.restore_row(physical_row, cycle)
        self._open_physical = physical_row
        self._open_since = cycle

    def precharge(self, cycle: int) -> Optional[Tuple[int, float]]:
        """PRE: close the open row, disturbing its in-subarray
        neighbours by the open-time-amplified activation dose.

        Returns (physical row, dose factor) of the closed activation so
        the device can route any cross-channel leakage — None when no
        row was open.
        """
        if self._open_physical is None:
            return None
        physical_row = self._open_physical
        open_cycles = max(0, int(cycle) - self._open_since)
        factor = self._profile.rowpress_amplification(
            open_cycles, self._timing.ras_cycles)
        self._last_open_factor[physical_row] = factor
        self.disturbance.record_activation(physical_row, factor)
        self._open_physical = None
        return physical_row, factor

    def last_open_factor(self, physical_row: int) -> float:
        """Most recent RowPress amplification observed for a row."""
        return self._last_open_factor.get(physical_row, 1.0)

    def read_column(self, column: int, cycle: int,
                    ecc_enabled: bool) -> bytes:
        """RD: return one column (column_bytes) of the open row."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: RD with no open row")
        self._geometry.check_column(column)
        bits = self._row_bits(self._open_physical)
        bit_start = column * self._geometry.column_bytes * 8
        bit_end = bit_start + self._geometry.column_bytes * 8
        data_bits = bits[bit_start:bit_end]
        if ecc_enabled:
            data_bits = self._ecc_corrected_slice(
                self._open_physical, bit_start, bit_end)
        return np.packbits(data_bits).tobytes()

    def write_column(self, column: int, data: bytes, cycle: int) -> None:
        """WR: store one column (column_bytes) into the open row."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: WR with no open row")
        self._geometry.check_column(column)
        if len(data) != self._geometry.column_bytes:
            raise CommandError(
                f"WR data must be {self._geometry.column_bytes} bytes, "
                f"got {len(data)}")
        bits = self._row_bits(self._open_physical)
        bit_start = column * self._geometry.column_bytes * 8
        bit_end = bit_start + self._geometry.column_bytes * 8
        bits[bit_start:bit_end] = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8))
        self._update_parity(self._open_physical, bit_start, bit_end)

    def read_open_row_bits(self, cycle: int, ecc_enabled: bool) -> np.ndarray:
        """Whole-row read (infrastructure batching of 32 column reads)."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: row read with no open row")
        bits = self._row_bits(self._open_physical)
        if ecc_enabled:
            parity = self._parity[self._open_physical]
            corrected, _, _ = decode_words(bits, parity)
            return corrected
        return bits.copy()

    def write_open_row_bits(self, bits: np.ndarray, cycle: int,
                            parity: Optional[np.ndarray] = None) -> None:
        """Whole-row write (infrastructure batching of 32 column writes).

        ``parity`` must be ``encode_words(bits & 1)`` when given; the
        payload-lowering cache passes it so the encode is paid once per
        distinct payload rather than once per row write.
        """
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: row write with no open row")
        if bits.shape != (self._geometry.row_bits,):
            raise CommandError(
                f"row write needs {self._geometry.row_bits} bits, "
                f"got shape {bits.shape}")
        stored = self._row_bits(self._open_physical)
        stored[:] = bits & 1
        if parity is None:
            self._parity[self._open_physical] = encode_words(stored)
        else:
            self._parity[self._open_physical] = parity.copy()

    # ------------------------------------------------------------------
    # Charge restoration (shared by ACT, periodic refresh, TRR refresh)
    # ------------------------------------------------------------------
    def restore_row(self, physical_row: int, cycle: int) -> None:
        """Sense + rewrite one row: materialize flips, reset its clocks."""
        self._materialize(physical_row, cycle)
        self._last_restore[physical_row] = cycle
        self.disturbance.reset(physical_row)

    def mark_restored(self, physical_row: int, cycle: int) -> None:
        """Reset a row's disturbance/retention clocks without sensing.

        Used by the bulk-loop fast path for rows that were just
        materialized and are then activated every iteration: their state
        at loop exit is "freshly restored at the final activation".
        """
        self._last_restore[physical_row] = cycle
        self.disturbance.reset(physical_row)

    def refresh_rows(self, start: int, end: int, cycle: int) -> None:
        """Periodic refresh of physical rows [start, end)."""
        for physical_row in range(start, min(end, self._geometry.rows)):
            if physical_row in self._bits:
                self._materialize(physical_row, cycle)
        self._last_restore[start:end] = cycle
        self.disturbance.reset_range(start, end)

    def release_all_rows(self) -> None:
        """Drop stored data for every row of this bank.

        A memory-management hook for long sweeps over thousands of rows:
        semantically the rows return to the never-written (fully
        discharged) state, so this must only be called between tests —
        after a victim's readback, before the next test region.
        """
        self._bits.clear()
        self._parity.clear()
        self.disturbance.reset_range(0, self._geometry.rows)

    def trr_refresh(self, physical_row: int, cycle: int) -> None:
        """Hidden TRR victim refresh of one row (no-op outside the bank)."""
        if not 0 <= physical_row < self._geometry.rows:
            return
        self.restore_row(physical_row, cycle)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _row_bits(self, physical_row: int) -> np.ndarray:
        bits = self._bits.get(physical_row)
        if bits is None:
            # First touch: the row powers up fully discharged (data and
            # parity cells alike; the parity cells therefore do not form
            # valid codewords until the row is written — as on silicon).
            cells = self._truth.powerup_cells(*self._key, physical_row)
            data_bits = self._geometry.row_bits
            bits = cells[:data_bits].copy()
            self._bits[physical_row] = bits
            self._parity[physical_row] = cells[data_bits:].copy()
        return bits

    def _update_parity(self, physical_row: int, bit_start: int,
                       bit_end: int) -> None:
        bits = self._bits[physical_row]
        parity = self._parity[physical_row]
        word_start = bit_start // ECC_WORD_BITS
        word_end = (bit_end + ECC_WORD_BITS - 1) // ECC_WORD_BITS
        fresh = encode_words(
            bits[word_start * ECC_WORD_BITS:word_end * ECC_WORD_BITS])
        parity[word_start * ECC_PARITY_BITS:word_end * ECC_PARITY_BITS] = fresh

    def _ecc_corrected_slice(self, physical_row: int, bit_start: int,
                             bit_end: int) -> np.ndarray:
        bits = self._bits[physical_row]
        parity = self._parity[physical_row]
        word_start = bit_start // ECC_WORD_BITS
        word_end = (bit_end + ECC_WORD_BITS - 1) // ECC_WORD_BITS
        corrected, _, _ = decode_words(
            bits[word_start * ECC_WORD_BITS:word_end * ECC_WORD_BITS],
            parity[word_start * ECC_PARITY_BITS:word_end * ECC_PARITY_BITS])
        offset = bit_start - word_start * ECC_WORD_BITS
        return corrected[offset:offset + (bit_end - bit_start)]

    def _neighbor_bits(self, physical_row: int,
                       direction: int) -> Optional[np.ndarray]:
        """Stored bits of the in-subarray neighbour, or None if absent.

        Absent means: outside the bank, across a subarray boundary, or
        never written (a discharged row exerts the weak same-charge
        coupling on charged victims; we return its power-up values).
        """
        neighbor = physical_row + direction
        if not 0 <= neighbor < self._geometry.rows:
            return None
        if not self._layout.same_subarray(physical_row, neighbor):
            return None
        bits = self._bits.get(neighbor)
        if bits is not None:
            return bits
        cells = self._truth.powerup_cells(*self._key, neighbor)
        return cells[:self._geometry.row_bits]

    def _materialize(self, physical_row: int, cycle: int) -> None:
        """Apply pending RowHammer and retention flips to stored data."""
        stored = self._bits.get(physical_row)
        if stored is None:
            return  # Never written: fully discharged, nothing can flip.

        profile = self._profile
        below, above = self.disturbance.get_sides(physical_row)
        direct = self.disturbance.get_direct(physical_row)
        elapsed_s = self._timing.seconds(
            int(cycle - self._last_restore[physical_row]))
        retention_scale = profile.retention_temperature_scale(
            self._environment.temperature_c)
        retention_possible = elapsed_s >= self._retention_guard_s * retention_scale
        hammer_possible = (below + above + direct) > self._disturb_guard
        if not retention_possible and not hammer_possible:
            return

        truth = self._truth.row(*self._key, physical_row)
        data_bits = self._geometry.row_bits
        parity = self._parity[physical_row]
        cells = np.concatenate([stored, parity])

        charged = truth.charged_values
        vulnerable = cells == charged

        flips = np.zeros(cells.shape[0], dtype=bool)
        if hammer_possible:
            effective = self._effective_disturbance(
                physical_row, cells, data_bits, below, above)
            if direct > 0.0:
                # Cross-channel leakage couples through the stack, not
                # through in-die wordline fields: no neighbour-data
                # weighting applies.
                effective = effective + direct
            temp_scale = profile.temperature_threshold_scale(
                self._environment.temperature_c)
            voltage_scale = profile.voltage_threshold_scale(
                self._environment.wordline_voltage_v)
            horizontal = self._horizontal_penalty(cells, data_bits)
            thresholds = (truth.thresholds * horizontal *
                          temp_scale * voltage_scale)
            flips |= vulnerable & (effective >= thresholds)
        if retention_possible:
            flips |= vulnerable & (
                elapsed_s >= truth.retention_s * retention_scale)

        if flips.any():
            cells[flips] ^= 1
            stored[:] = cells[:data_bits]
            parity[:] = cells[data_bits:]

    def _effective_disturbance(self, physical_row: int, cells: np.ndarray,
                               data_bits: int, below: float,
                               above: float) -> np.ndarray:
        """Per-cell disturbance, weighted by aggressor-data coupling."""
        profile = self._profile
        effective = np.zeros(cells.shape[0], dtype=np.float64)
        for amount, direction in ((below, -1), (above, +1)):
            if amount <= 0.0:
                continue
            neighbor = self._neighbor_bits(physical_row, direction)
            if neighbor is None:
                continue
            neighbor_parity = self._neighbor_parity(physical_row, direction)
            neighbor_cells = np.concatenate([neighbor, neighbor_parity])
            coupling = np.where(neighbor_cells != cells, 1.0,
                                profile.same_bit_coupling)
            effective += amount * coupling
        return effective

    def _neighbor_parity(self, physical_row: int,
                         direction: int) -> np.ndarray:
        neighbor = physical_row + direction
        parity = self._parity.get(neighbor)
        if parity is not None:
            return parity
        cells = self._truth.powerup_cells(*self._key, max(
            0, min(neighbor, self._geometry.rows - 1)))
        return cells[self._geometry.row_bits:]

    def _horizontal_penalty(self, cells: np.ndarray,
                            data_bits: int) -> np.ndarray:
        """1 + penalty * (fraction of differing horizontal neighbours).

        Cells whose left/right bitline neighbours store the opposite value
        are slightly harder to flip (checkered patterns pay this relative
        to rowstripe patterns).  Row-edge cells see only one neighbour.
        """
        penalty = self._profile.intra_row_penalty
        if penalty == 0.0:
            return np.ones(cells.shape[0], dtype=np.float64)
        diff_count = np.zeros(cells.shape[0], dtype=np.float64)
        data = cells[:data_bits]
        diff_count[1:data_bits] += data[1:] != data[:-1]
        diff_count[:data_bits - 1] += data[:-1] != data[1:]
        parity = cells[data_bits:]
        if parity.size > 1:
            diff_count[data_bits + 1:] += parity[1:] != parity[:-1]
            diff_count[data_bits:-1] += parity[:-1] != parity[1:]
        return 1.0 + penalty * (diff_count / 2.0)

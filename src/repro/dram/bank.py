"""Bank state machine: row buffer, stored data, and flip materialization.

The bank is where the physics happens.  Data is stored per physical row as
an unpacked bit array; accumulated disturbance and charge age determine
bitflips, which *materialize* whenever a row's charge is sensed — on its
own activation, on a periodic refresh, or on a hidden TRR victim refresh.
Sensing writes the (possibly flipped) values back fully charged, exactly
like a real DRAM sense amplifier: once a flip is sensed it is locked into
the stored data, and the disturbance/retention clocks restart.

A row that has never been written holds no charge (all cells read as
their discharged value), so it can neither gain RowHammer nor retention
flips — which keeps untouched rows free.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.calibration import DeviceProfile
from repro.dram.cellmodel import (
    ECC_PARITY_BITS,
    ECC_WORD_BITS,
    GroundTruthProvider,
)
from repro.dram.disturb import DisturbanceTracker
from repro.dram.ecc import decode_words, encode_words
from repro.dram.geometry import HBM2Geometry
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingParameters
from repro.errors import CommandError

BankKey = Tuple[int, int, int]


class DeviceEnvironment:
    """Mutable ambient state shared by every bank of a device."""

    def __init__(self, temperature_c: float,
                 wordline_voltage_v: float = 2.5) -> None:
        self.temperature_c = temperature_c
        self.wordline_voltage_v = wordline_voltage_v
        # Payload-pattern caches for the analytic write path, shared
        # device-wide (the arrays depend only on payload bytes and
        # geometry, never on row or bank).  A row is *tagged* with its
        # payload while its stored data is provably the pristine
        # lowered payload — tagged only by ``store_full_row`` (which
        # only the engine fast path calls) and untagged on any partial
        # write or materialized flip — so interpreted execution never
        # reads or populates these caches.  Cached arrays are the
        # results of the exact expressions `_materialize` would
        # recompute, so cache hits are value-identical; they are
        # treated as immutable (copy-on-write before any flip
        # writeback).
        #: payload tag -> concat(stored bits, parity) cell array.
        self.pattern_cells: Dict[bytes, np.ndarray] = {}
        #: (victim tag, neighbour tag) -> aggressor-data coupling.
        self.pattern_coupling: Dict[Tuple[bytes, bytes], np.ndarray] = {}
        #: payload tag -> intra-row (bitline neighbour) penalty.
        self.pattern_horizontal: Dict[bytes, np.ndarray] = {}


class Bank:
    """One DRAM bank of the simulated HBM2 stack."""

    def __init__(self, key: BankKey, geometry: HBM2Geometry,
                 profile: DeviceProfile, layout: SubarrayLayout,
                 truth: GroundTruthProvider, timing: TimingParameters,
                 environment: DeviceEnvironment) -> None:
        self._key = key
        self._geometry = geometry
        self._profile = profile
        self._layout = layout
        self._truth = truth
        self._timing = timing
        self._environment = environment

        rows = geometry.rows
        self._bits: Dict[int, np.ndarray] = {}
        self._parity: Dict[int, np.ndarray] = {}
        self._last_restore = np.zeros(rows, dtype=np.int64)
        self.disturbance = DisturbanceTracker(rows, layout, profile)
        self._open_physical: Optional[int] = None
        self._open_since: int = 0
        #: Most recent RowPress amplification per physical row; the
        #: bulk-loop fast path replays these for skipped iterations.
        self._last_open_factor: Dict[int, float] = {}
        #: Physical row -> payload tag, maintained while the row's
        #: stored data is exactly the pristine lowered payload (see
        #: :class:`DeviceEnvironment` pattern caches).
        self._payload_tags: Dict[int, bytes] = {}
        #: Rows whose bits/parity arrays are adopted payload-cache
        #: arrays, shared read-only; every mutation path must call
        #: :meth:`_own_row` first (copy-on-write).
        self._shared_rows: set = set()

        # Cheap guards that skip materialization when no flip is possible.
        # The smallest threshold any cell of this bank can have is bounded
        # below by the floor times the most favourable scales; stay well
        # under it to be safe against hash-tail scale draws.
        channel = key[0]
        orientation_min = min(profile.true_scale_for(channel),
                              profile.anti_scale_for(channel))
        self._disturb_guard = (profile.threshold_floor *
                               profile.channel_scale(channel) *
                               orientation_min * 0.25)
        # Retention guard: ~5.5 sigma below the median covers the weakest
        # plausible cell at the reference temperature.
        self._retention_guard_s = (profile.retention_median_s *
                                   float(np.exp(-5.5 * profile.retention_sigma)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def key(self) -> BankKey:
        return self._key

    @property
    def open_physical_row(self) -> Optional[int]:
        return self._open_physical

    @property
    def is_open(self) -> bool:
        return self._open_physical is not None

    def row_is_written(self, physical_row: int) -> bool:
        return physical_row in self._bits

    # ------------------------------------------------------------------
    # Command-level operations (physical row addressing; the device maps
    # logical addresses before calling in)
    # ------------------------------------------------------------------
    def activate(self, physical_row: int, cycle: int) -> None:
        """ACT: sense ``physical_row`` (materializing its flips) and
        restore its charge.  The neighbour disturbance is accounted at
        the closing PRE, because its magnitude depends on how long the
        row stays open (the RowPress effect, Luo+ ISCA'23)."""
        if self._open_physical is not None:
            raise CommandError(
                f"bank {self._key}: ACT while row "
                f"{self._open_physical} is open")
        self._geometry.check_row(physical_row)
        self.restore_row(physical_row, cycle)
        self._open_physical = physical_row
        self._open_since = cycle

    def precharge(self, cycle: int) -> Optional[Tuple[int, float]]:
        """PRE: close the open row, disturbing its in-subarray
        neighbours by the open-time-amplified activation dose.

        Returns (physical row, dose factor) of the closed activation so
        the device can route any cross-channel leakage — None when no
        row was open.
        """
        if self._open_physical is None:
            return None
        physical_row = self._open_physical
        open_cycles = max(0, int(cycle) - self._open_since)
        factor = self._profile.rowpress_amplification(
            open_cycles, self._timing.ras_cycles)
        self._last_open_factor[physical_row] = factor
        self.disturbance.record_activation(physical_row, factor)
        self._open_physical = None
        return physical_row, factor

    def last_open_factor(self, physical_row: int) -> float:
        """Most recent RowPress amplification observed for a row."""
        return self._last_open_factor.get(physical_row, 1.0)

    def read_column(self, column: int, cycle: int,
                    ecc_enabled: bool) -> bytes:
        """RD: return one column (column_bytes) of the open row."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: RD with no open row")
        self._geometry.check_column(column)
        bits = self._row_bits(self._open_physical)
        bit_start = column * self._geometry.column_bytes * 8
        bit_end = bit_start + self._geometry.column_bytes * 8
        data_bits = bits[bit_start:bit_end]
        if ecc_enabled:
            data_bits = self._ecc_corrected_slice(
                self._open_physical, bit_start, bit_end)
        return np.packbits(data_bits).tobytes()

    def write_column(self, column: int, data: bytes, cycle: int) -> None:
        """WR: store one column (column_bytes) into the open row."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: WR with no open row")
        self._geometry.check_column(column)
        if len(data) != self._geometry.column_bytes:
            raise CommandError(
                f"WR data must be {self._geometry.column_bytes} bytes, "
                f"got {len(data)}")
        self._payload_tags.pop(self._open_physical, None)
        self._own_row(self._open_physical)
        bits = self._row_bits(self._open_physical)
        bit_start = column * self._geometry.column_bytes * 8
        bit_end = bit_start + self._geometry.column_bytes * 8
        bits[bit_start:bit_end] = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8))
        self._update_parity(self._open_physical, bit_start, bit_end)

    def read_open_row_bits(self, cycle: int, ecc_enabled: bool) -> np.ndarray:
        """Whole-row read (infrastructure batching of 32 column reads)."""
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: row read with no open row")
        bits = self._row_bits(self._open_physical)
        if ecc_enabled:
            parity = self._parity[self._open_physical]
            corrected, _, _ = decode_words(bits, parity)
            return corrected
        return bits.copy()

    def write_open_row_bits(self, bits: np.ndarray, cycle: int,
                            parity: Optional[np.ndarray] = None) -> None:
        """Whole-row write (infrastructure batching of 32 column writes).

        ``parity`` must be ``encode_words(bits & 1)`` when given; the
        payload-lowering cache passes it so the encode is paid once per
        distinct payload rather than once per row write.
        """
        if self._open_physical is None:
            raise CommandError(f"bank {self._key}: row write with no open row")
        if bits.shape != (self._geometry.row_bits,):
            raise CommandError(
                f"row write needs {self._geometry.row_bits} bits, "
                f"got shape {bits.shape}")
        self._payload_tags.pop(self._open_physical, None)
        self._own_row(self._open_physical)
        stored = self._row_bits(self._open_physical)
        stored[:] = bits & 1
        if parity is None:
            self._parity[self._open_physical] = encode_words(stored)
        else:
            self._parity[self._open_physical] = parity.copy()

    def store_full_row(self, physical_row: int, bits: np.ndarray,
                       parity: np.ndarray, cycle: int,
                       tag: Optional[bytes] = None) -> None:
        """Analytic ACT + full-row WRROW: overwrite a closed row's data.

        State-identical to ``activate()`` followed by
        ``write_open_row_bits()`` for a *full-row* overwrite, skipping
        the sense step: opening the row would only materialize pending
        flips into data (and parity) that this write replaces wholesale,
        and sample power-up values for never-written rows that are
        likewise replaced.  The restore bookkeeping an ACT performs —
        retention clock and accumulated-disturbance reset — is applied
        directly.  The caller owns timing, TRR observation, and the
        close-of-row accounting (:meth:`note_closed_activation`).
        """
        if self._open_physical is not None:
            raise CommandError(
                f"bank {self._key}: analytic row store while row "
                f"{self._open_physical} is open")
        self._geometry.check_row(physical_row)
        if bits.shape != (self._geometry.row_bits,):
            raise CommandError(
                f"row store needs {self._geometry.row_bits} bits, "
                f"got shape {bits.shape}")
        if tag is not None:
            # Tagged store: ``bits``/``parity`` are the pristine lowered
            # payload (0/1 values), so the arrays are adopted wholesale
            # as shared read-only storage instead of being copied in —
            # content-identical to a copy, and every mutation path runs
            # :meth:`_own_row` (copy-on-write) first.
            self._bits[physical_row] = bits
            self._parity[physical_row] = parity
            self._shared_rows.add(physical_row)
            self._payload_tags[physical_row] = tag
        else:
            self._payload_tags.pop(physical_row, None)
            stored = self._bits.get(physical_row)
            if stored is None or physical_row in self._shared_rows:
                # First touch (the write defines the row; a fresh array
                # — never the caller's — replaces the power-up sample an
                # ACT would take) or a previously shared array that must
                # not be written through.
                self._shared_rows.discard(physical_row)
                self._bits[physical_row] = (bits & 1).astype(np.uint8)
            else:
                stored[:] = bits & 1
            self._parity[physical_row] = parity.copy()
        self._last_restore[physical_row] = cycle
        self.disturbance.reset(physical_row)

    def note_closed_activation(self, physical_row: int,
                               factor: float) -> None:
        """The close-of-row accounting of :meth:`precharge`, for an
        analytically applied activation whose open-time amplification
        ``factor`` the caller computed from its own cycle stamps."""
        self._last_open_factor[physical_row] = factor
        self.disturbance.record_activation(physical_row, factor)

    def replay_activate(self, physical_row: int, cycle: int) -> None:
        """:meth:`activate` minus validation, for memoized replays.

        The caller replays a command sequence whose probe already
        passed the open-row and row-range checks; the same sequence
        re-issued leaves the same open/close pattern, so the checks
        cannot fire and are skipped.
        """
        self.restore_row(physical_row, cycle)
        self._open_physical = physical_row
        self._open_since = cycle

    def replay_precharge(self, physical_row: int, factor: float) -> None:
        """:meth:`precharge` with a memoized RowPress ``factor``.

        Under a schedule replay the ACT and PRE cycles are identical
        to the probe's, so the open time — and with it the
        amplification factor — is too; the caller passes the recorded
        value and the open-cycle arithmetic is skipped.
        """
        self._last_open_factor[physical_row] = factor
        self.disturbance.record_activation(physical_row, factor)
        self._open_physical = None

    # ------------------------------------------------------------------
    # Charge restoration (shared by ACT, periodic refresh, TRR refresh)
    # ------------------------------------------------------------------
    def restore_row(self, physical_row: int, cycle: int) -> None:
        """Sense + rewrite one row: materialize flips, reset its clocks."""
        self._materialize(physical_row, cycle)
        self._last_restore[physical_row] = cycle
        self.disturbance.reset(physical_row)

    def mark_restored(self, physical_row: int, cycle: int) -> None:
        """Reset a row's disturbance/retention clocks without sensing.

        Used by the bulk-loop fast path for rows that were just
        materialized and are then activated every iteration: their state
        at loop exit is "freshly restored at the final activation".
        """
        self._last_restore[physical_row] = cycle
        self.disturbance.reset(physical_row)

    def refresh_rows(self, start: int, end: int, cycle: int) -> None:
        """Periodic refresh of physical rows [start, end)."""
        for physical_row in range(start, min(end, self._geometry.rows)):
            if physical_row in self._bits:
                self._materialize(physical_row, cycle)
        self._last_restore[start:end] = cycle
        self.disturbance.reset_range(start, end)

    def release_all_rows(self) -> None:
        """Drop stored data for every row of this bank.

        A memory-management hook for long sweeps over thousands of rows:
        semantically the rows return to the never-written (fully
        discharged) state, so this must only be called between tests —
        after a victim's readback, before the next test region.
        """
        self._bits.clear()
        self._parity.clear()
        self._payload_tags.clear()
        self._shared_rows.clear()
        self.disturbance.reset_range(0, self._geometry.rows)

    def trr_refresh(self, physical_row: int, cycle: int) -> None:
        """Hidden TRR victim refresh of one row (no-op outside the bank)."""
        if not 0 <= physical_row < self._geometry.rows:
            return
        self.restore_row(physical_row, cycle)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _own_row(self, physical_row: int) -> None:
        """Copy-on-write: give a row private bits/parity arrays when its
        storage is an adopted (shared, read-only) payload-cache array."""
        if physical_row in self._shared_rows:
            self._bits[physical_row] = self._bits[physical_row].copy()
            self._parity[physical_row] = self._parity[physical_row].copy()
            self._shared_rows.discard(physical_row)

    def _row_bits(self, physical_row: int) -> np.ndarray:
        bits = self._bits.get(physical_row)
        if bits is None:
            # First touch: the row powers up fully discharged (data and
            # parity cells alike; the parity cells therefore do not form
            # valid codewords until the row is written — as on silicon).
            cells = self._truth.powerup_cells(*self._key, physical_row)
            data_bits = self._geometry.row_bits
            bits = cells[:data_bits].copy()
            self._bits[physical_row] = bits
            self._parity[physical_row] = cells[data_bits:].copy()
        return bits

    def _update_parity(self, physical_row: int, bit_start: int,
                       bit_end: int) -> None:
        bits = self._bits[physical_row]
        parity = self._parity[physical_row]
        word_start = bit_start // ECC_WORD_BITS
        word_end = (bit_end + ECC_WORD_BITS - 1) // ECC_WORD_BITS
        fresh = encode_words(
            bits[word_start * ECC_WORD_BITS:word_end * ECC_WORD_BITS])
        parity[word_start * ECC_PARITY_BITS:word_end * ECC_PARITY_BITS] = fresh

    def _ecc_corrected_slice(self, physical_row: int, bit_start: int,
                             bit_end: int) -> np.ndarray:
        bits = self._bits[physical_row]
        parity = self._parity[physical_row]
        word_start = bit_start // ECC_WORD_BITS
        word_end = (bit_end + ECC_WORD_BITS - 1) // ECC_WORD_BITS
        corrected, _, _ = decode_words(
            bits[word_start * ECC_WORD_BITS:word_end * ECC_WORD_BITS],
            parity[word_start * ECC_PARITY_BITS:word_end * ECC_PARITY_BITS])
        offset = bit_start - word_start * ECC_WORD_BITS
        return corrected[offset:offset + (bit_end - bit_start)]

    def _neighbor_bits(self, physical_row: int,
                       direction: int) -> Optional[np.ndarray]:
        """Stored bits of the in-subarray neighbour, or None if absent.

        Absent means: outside the bank, across a subarray boundary, or
        never written (a discharged row exerts the weak same-charge
        coupling on charged victims; we return its power-up values).
        """
        neighbor = physical_row + direction
        if not 0 <= neighbor < self._geometry.rows:
            return None
        if not self._layout.same_subarray(physical_row, neighbor):
            return None
        bits = self._bits.get(neighbor)
        if bits is not None:
            return bits
        cells = self._truth.powerup_cells(*self._key, neighbor)
        return cells[:self._geometry.row_bits]

    def _materialize(self, physical_row: int, cycle: int) -> None:
        """Apply pending RowHammer and retention flips to stored data."""
        stored = self._bits.get(physical_row)
        if stored is None:
            return  # Never written: fully discharged, nothing can flip.

        profile = self._profile
        below, above = self.disturbance.get_sides(physical_row)
        direct = self.disturbance.get_direct(physical_row)
        elapsed_s = self._timing.seconds(
            int(cycle - self._last_restore[physical_row]))
        retention_scale = profile.retention_temperature_scale(
            self._environment.temperature_c)
        retention_possible = elapsed_s >= self._retention_guard_s * retention_scale
        hammer_possible = (below + above + direct) > self._disturb_guard
        if not retention_possible and not hammer_possible:
            return

        truth = self._truth.row(*self._key, physical_row)
        data_bits = self._geometry.row_bits
        parity = self._parity[physical_row]
        environment = self._environment
        # A tagged row's stored data is exactly the pristine lowered
        # payload, so the payload-keyed arrays below are value-identical
        # to recomputation; untagged rows (all interpreted execution)
        # take the compute branches unconditionally.
        tag = self._payload_tags.get(physical_row)
        cells = None
        if tag is not None:
            cells = environment.pattern_cells.get(tag)
        if cells is None:
            cells = np.concatenate([stored, parity])
            if tag is not None:
                environment.pattern_cells[tag] = cells

        charged = truth.charged_values
        vulnerable = cells == charged

        flips = np.zeros(cells.shape[0], dtype=bool)
        if hammer_possible:
            effective = self._effective_disturbance(
                physical_row, cells, data_bits, below, above, tag)
            if direct > 0.0:
                # Cross-channel leakage couples through the stack, not
                # through in-die wordline fields: no neighbour-data
                # weighting applies.
                effective = effective + direct
            temp_scale = profile.temperature_threshold_scale(
                self._environment.temperature_c)
            voltage_scale = profile.voltage_threshold_scale(
                self._environment.wordline_voltage_v)
            horizontal = None
            if tag is not None:
                horizontal = environment.pattern_horizontal.get(tag)
            if horizontal is None:
                horizontal = self._horizontal_penalty(cells, data_bits)
                if tag is not None:
                    environment.pattern_horizontal[tag] = horizontal
            thresholds = (truth.thresholds * horizontal *
                          temp_scale * voltage_scale)
            flips |= vulnerable & (effective >= thresholds)
        if retention_possible:
            flips |= vulnerable & (
                elapsed_s >= truth.retention_s * retention_scale)

        if flips.any():
            if tag is not None:
                # The cached array is shared; flips belong to this row
                # only, and the row's data is no longer the payload.
                cells = cells.copy()
                self._payload_tags.pop(physical_row, None)
            self._own_row(physical_row)
            stored = self._bits[physical_row]
            parity = self._parity[physical_row]
            cells[flips] ^= 1
            stored[:] = cells[:data_bits]
            parity[:] = cells[data_bits:]

    def _effective_disturbance(self, physical_row: int, cells: np.ndarray,
                               data_bits: int, below: float,
                               above: float,
                               victim_tag: Optional[bytes] = None
                               ) -> np.ndarray:
        """Per-cell disturbance, weighted by aggressor-data coupling."""
        profile = self._profile
        effective = np.zeros(cells.shape[0], dtype=np.float64)
        for amount, direction in ((below, -1), (above, +1)):
            if amount <= 0.0:
                continue
            coupling = None
            if victim_tag is not None:
                neighbor_row = physical_row + direction
                if (0 <= neighbor_row < self._geometry.rows and
                        self._layout.same_subarray(physical_row,
                                                   neighbor_row)):
                    neighbor_tag = self._payload_tags.get(neighbor_row)
                    if neighbor_tag is not None:
                        cache_key = (victim_tag, neighbor_tag)
                        cache = self._environment.pattern_coupling
                        coupling = cache.get(cache_key)
                        if coupling is None:
                            neighbor_cells = np.concatenate(
                                [self._bits[neighbor_row],
                                 self._parity[neighbor_row]])
                            coupling = np.where(
                                neighbor_cells != cells, 1.0,
                                profile.same_bit_coupling)
                            cache[cache_key] = coupling
            if coupling is None:
                neighbor = self._neighbor_bits(physical_row, direction)
                if neighbor is None:
                    continue
                neighbor_parity = self._neighbor_parity(physical_row,
                                                        direction)
                neighbor_cells = np.concatenate([neighbor, neighbor_parity])
                coupling = np.where(neighbor_cells != cells, 1.0,
                                    profile.same_bit_coupling)
            effective += amount * coupling
        return effective

    def _neighbor_parity(self, physical_row: int,
                         direction: int) -> np.ndarray:
        neighbor = physical_row + direction
        parity = self._parity.get(neighbor)
        if parity is not None:
            return parity
        cells = self._truth.powerup_cells(*self._key, max(
            0, min(neighbor, self._geometry.rows - 1)))
        return cells[self._geometry.row_bits:]

    def _horizontal_penalty(self, cells: np.ndarray,
                            data_bits: int) -> np.ndarray:
        """1 + penalty * (fraction of differing horizontal neighbours).

        Cells whose left/right bitline neighbours store the opposite value
        are slightly harder to flip (checkered patterns pay this relative
        to rowstripe patterns).  Row-edge cells see only one neighbour.
        """
        penalty = self._profile.intra_row_penalty
        if penalty == 0.0:
            return np.ones(cells.shape[0], dtype=np.float64)
        diff_count = np.zeros(cells.shape[0], dtype=np.float64)
        data = cells[:data_bits]
        diff_count[1:data_bits] += data[1:] != data[:-1]
        diff_count[:data_bits - 1] += data[:-1] != data[1:]
        parity = cells[data_bits:]
        if parity.size > 1:
            diff_count[data_bits + 1:] += parity[1:] != parity[:-1]
            diff_count[data_bits:-1] += parity[:-1] != parity[1:]
        return 1.0 + penalty * (diff_count / 2.0)

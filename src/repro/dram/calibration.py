"""Calibrated variation profile — the simulated chip's hidden ground truth.

A :class:`CalibrationProfile` bundles every physical-variation parameter
of a simulated device.  The default profile is calibrated so that the
*measured* results of the paper's methodology (run blindly through the
command interface) reproduce the paper's observations O1–O11 (see
DESIGN.md §1): channel-to-channel BER ratios, die-pair grouping,
pattern-dependent HC_first, subarray-position BER shape, the weak last
subarray, small bank-level spread, and a retention-time distribution that
supports the U-TRR side channel.

Threshold model (evaluated in :mod:`repro.dram.cellmodel`).  Cells come
in two populations:

* a **weak** population (RowHammer-susceptible cells; a few percent of
  all cells, with a per-channel density), with lognormal thresholds
  around ``weak_median``;
* a **strong** population (the bulk) whose thresholds sit orders of
  magnitude higher and never flip within the paper's 256K-hammer budget.

::

    T_cell = orientation_scale * (floor * S + S * median_pop * LogN(sigma_pop))
    S      = channel_scale * bank_scale * subarray_position * row_scale

where ``T_cell`` is in *disturbance units*: one unit is one activation of
a distance-1 physical neighbour.  A double-sided hammer (one ACT per
aggressor) contributes 2 units to the victim, so ``HC_first`` in hammers
is roughly ``T_row_min / 2``.

The two-population structure is what lets the model reproduce the
paper's seemingly inconsistent channel ratios: BER scales linearly with
weak-cell *density* (2.03x between channels 7 and 0), while HC_first —
the minimum over a row's weak cells — moves only logarithmically with
density (~20% between the same channels).  A single scale factor cannot
produce both.

Nothing outside :mod:`repro.dram` may read these parameters; the
characterization pipeline must (re)discover their consequences.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import CalibrationError


@dataclass(frozen=True)
class CalibrationProfile:
    """Ground-truth variation parameters for one simulated device.

    The defaults describe the paper's HBM2 stack (8 channels in die
    pairs); other device families supply their own per-channel tuples
    (see :func:`ddr4_calibration` / :func:`ddr5_calibration`).
    Attributes are grouped by the observation they encode; tuning
    guidance lives in ``tools/calibrate.py``.
    """

    # -- per-cell RowHammer threshold distribution ----------------------
    #: Median threshold of the weak (RowHammer-susceptible) population.
    weak_median: float = 8.4e5
    #: Lognormal sigma of weak-cell thresholds.
    weak_sigma: float = 0.85
    #: Median threshold of the strong population (far beyond any
    #: achievable disturbance within the refresh-safe window).
    strong_median: float = 5.0e7
    #: Lognormal sigma of strong-cell thresholds.
    strong_sigma: float = 0.6
    #: Additive threshold floor (disturbance units) — real chips show a
    #: hard minimum HC_first; the paper's global minimum is 14,531 hammers.
    threshold_floor: float = 28_000.0

    # -- channel / die variation (O2, O3, O6) ---------------------------
    #: Weak-cell density per channel.  BER scales linearly with this, so
    #: the 2.03x channel-7-to-channel-0 BER ratio lives here; channels
    #: sharing a die get near-identical densities (groups of two).
    weak_fraction: Tuple[float, ...] = (
        0.0545, 0.0560,  # die 0
        0.0630, 0.0645,  # die 1
        0.0705, 0.0725,  # die 2
        0.1070, 0.1110,  # die 3 (channels 6, 7: highest BER)
    )
    #: Mild multiplicative threshold scale per channel (die-paired); adds
    #: the second-order HC_first spread on top of the density effect.
    channel_scales: Tuple[float, ...] = (
        1.00, 0.995,   # die 0
        0.980, 0.975,  # die 1
        0.955, 0.950,  # die 2
        0.920, 0.910,  # die 3
    )

    # -- orientation (true-/anti-cell) effects (O4, O7) ------------------
    #: Fraction of true cells (logical 1 = charged) per die.
    true_cell_fraction: Tuple[float, ...] = (0.50, 0.55, 0.47, 0.52)
    #: Threshold scale applied to true cells, per die.
    true_cell_scale: Tuple[float, ...] = (1.22, 0.90, 1.05, 0.94)
    #: Threshold scale applied to anti cells, per die.
    anti_cell_scale: Tuple[float, ...] = (0.89, 1.14, 0.96, 1.06)

    # -- data-pattern coupling (O4) --------------------------------------
    #: Effectiveness of disturbance arriving from an aggressor cell whose
    #: stored bit *equals* the victim bit (differing bits count fully).
    same_bit_coupling: float = 0.03
    #: Extra threshold fraction when the victim row's own horizontal
    #: neighbour bits differ (checkered patterns pay this; rowstripe not).
    intra_row_penalty: float = 0.22

    # -- spatial structure within a bank (O8, O9) ------------------------
    #: Vulnerability droop towards subarray edges: the position factor is
    #: 1 / (1 - droop * (2p - 1)^2) for position fraction p.
    subarray_edge_droop: float = 0.42
    #: Threshold multiplier for every row of the bank's last subarray.
    last_subarray_scale: float = 2.9

    # -- fine-grained variation (O10) -------------------------------------
    #: Lognormal sigma of the per-bank threshold scale (kept well below the
    #: channel spread so bank variation is channel-dominated, Fig. 6).
    bank_sigma: float = 0.025
    #: Lognormal sigma of the per-row threshold scale.
    row_sigma: float = 0.20

    # -- disturbance mechanics -------------------------------------------
    #: Disturbance delivered to a distance-1 neighbour per aggressor ACT.
    blast_weight_1: float = 1.0
    #: Disturbance delivered to a distance-2 neighbour per aggressor ACT.
    blast_weight_2: float = 0.04
    #: Hypothesised cross-channel (inter-die) coupling: the fraction of
    #: an activation's disturbance that leaks to the same row of the
    #: vertically adjacent channels through the stack.  The paper lists
    #: investigating this as future work 3; no published evidence of
    #: cross-channel RowHammer exists, so the default chip has none —
    #: the experiment in :mod:`repro.core.cross_channel` exists to
    #: *detect* it, and a nonzero-coupling profile to validate the
    #: detector.
    cross_channel_coupling: float = 0.0
    #: RowPress (Luo+ ISCA'23, the paper's §6 future work): keeping an
    #: aggressor row open beyond tRAS amplifies its per-activation
    #: disturbance by 1 + coeff * log2(t_open / tRAS).  At tAggON ~7.8 us
    #: (~236 x tRAS) this yields ~17x, matching RowPress's reported
    #: order-of-magnitude HC_first reduction.
    rowpress_coeff: float = 2.0

    # -- retention (U-TRR side channel, §5) --------------------------------
    #: Median per-cell retention time at 85 degC, in seconds.
    retention_median_s: float = 30.0
    #: Lognormal sigma of per-cell retention times.
    retention_sigma: float = 1.3
    #: Retention times double for every this many degC of cooling.
    retention_temp_double_c: float = 10.0

    # -- temperature sensitivity of RowHammer ------------------------------
    #: Fractional threshold change per degC away from the 85 degC reference
    #: (negative: hotter chips flip slightly earlier).
    threshold_temp_coeff: float = -0.005
    #: Reference temperature for all scales above, degC.
    reference_temperature_c: float = 85.0

    # -- wordline-voltage sensitivity (§6 future work 2.4) ------------------
    #: Nominal wordline (VPP) voltage, volts.
    nominal_wordline_voltage_v: float = 2.5
    #: Minimum voltage at which row accesses still work reliably; below
    #: this the device refuses to operate (reduced-voltage studies hit
    #: access failures there).
    min_wordline_voltage_v: float = 2.0
    #: Threshold gain per fractional volt of underscaling: reducing the
    #: wordline voltage weakens aggressor-to-victim coupling, so cells
    #: survive more activations (Yaglikci+ DSN'22 observe substantially
    #: fewer RowHammer bitflips at reduced wordline voltage).
    voltage_threshold_coeff: float = 3.0

    def __post_init__(self) -> None:
        if self.weak_median <= 0 or self.strong_median <= 0:
            raise CalibrationError("population medians must be positive")
        if self.weak_median >= self.strong_median:
            raise CalibrationError(
                "weak_median must be below strong_median")
        if self.weak_sigma <= 0 or self.strong_sigma <= 0:
            raise CalibrationError("population sigmas must be positive")
        if self.threshold_floor < 0:
            raise CalibrationError("threshold_floor must be non-negative")
        if any(scale <= 0 for scale in self.channel_scales):
            raise CalibrationError("channel_scales must be positive")
        if len(self.weak_fraction) != len(self.channel_scales):
            raise CalibrationError(
                "weak_fraction needs one entry per channel")
        if not all(0.0 <= fraction <= 1.0 for fraction in self.weak_fraction):
            raise CalibrationError("weak_fraction entries must be in [0, 1]")
        for name in ("true_cell_fraction", "true_cell_scale", "anti_cell_scale"):
            values = getattr(self, name)
            if len(values) != len(self.channel_scales) // 2 and len(values) != len(self.channel_scales):
                # One entry per die (channels come in die pairs) or per channel.
                raise CalibrationError(
                    f"{name} must have one entry per die or per channel")
        if not all(0.0 <= fraction <= 1.0 for fraction in self.true_cell_fraction):
            raise CalibrationError("true_cell_fraction entries must be in [0, 1]")
        if not 0.0 <= self.subarray_edge_droop < 1.0:
            raise CalibrationError("subarray_edge_droop must be in [0, 1)")
        if not 0.0 <= self.same_bit_coupling <= 1.0:
            raise CalibrationError(
                "same_bit_coupling must be in [0, 1] (an equal-bit aggressor "
                "cannot disturb more than a differing-bit one)")
        if self.intra_row_penalty < 0:
            raise CalibrationError("intra_row_penalty must be non-negative")
        if self.last_subarray_scale < 1.0:
            raise CalibrationError("last_subarray_scale must be >= 1")
        if self.blast_weight_1 <= 0 or self.blast_weight_2 < 0:
            raise CalibrationError("blast weights must be positive / non-negative")
        if self.blast_weight_2 > self.blast_weight_1:
            raise CalibrationError(
                "distance-2 disturbance cannot exceed distance-1 disturbance")
        if self.rowpress_coeff < 0:
            raise CalibrationError("rowpress_coeff must be non-negative")
        if not 0.0 <= self.cross_channel_coupling < 1.0:
            raise CalibrationError(
                "cross_channel_coupling must be in [0, 1) (leakage cannot "
                "exceed the in-die dose)")
        if not 0 < self.min_wordline_voltage_v <= \
                self.nominal_wordline_voltage_v:
            raise CalibrationError(
                "need 0 < min_wordline_voltage_v <= nominal voltage")
        if self.voltage_threshold_coeff < 0:
            raise CalibrationError(
                "voltage_threshold_coeff must be non-negative")
        if self.retention_median_s <= 0 or self.retention_sigma <= 0:
            raise CalibrationError("retention distribution must be positive")
        if self.retention_temp_double_c <= 0:
            raise CalibrationError("retention_temp_double_c must be positive")

    # ------------------------------------------------------------------
    def channel_scale(self, channel: int) -> float:
        if not 0 <= channel < len(self.channel_scales):
            raise CalibrationError(
                f"no channel scale for channel {channel}")
        return self.channel_scales[channel]

    def weak_fraction_for(self, channel: int) -> float:
        if not 0 <= channel < len(self.weak_fraction):
            raise CalibrationError(
                f"no weak-cell fraction for channel {channel}")
        return self.weak_fraction[channel]

    def _die_entry(self, values: Tuple[float, ...], channel: int,
                   channels_per_die: int = 2) -> float:
        if len(values) == len(self.channel_scales):
            return values[channel]
        return values[channel // channels_per_die]

    def true_fraction_for(self, channel: int) -> float:
        return self._die_entry(self.true_cell_fraction, channel)

    def true_scale_for(self, channel: int) -> float:
        return self._die_entry(self.true_cell_scale, channel)

    def anti_scale_for(self, channel: int) -> float:
        return self._die_entry(self.anti_cell_scale, channel)

    def subarray_position_scale(self, position_fraction: float) -> float:
        """Threshold multiplier for a row at ``position_fraction`` (0..1).

        Minimal (1.0, most vulnerable) mid-subarray, rising to
        1 / (1 - droop) at the edges — producing Fig. 5's periodic
        BER-across-rows shape.
        """
        centered = 2.0 * position_fraction - 1.0
        vulnerability = 1.0 - self.subarray_edge_droop * centered * centered
        return 1.0 / vulnerability

    def rowpress_amplification(self, open_cycles: int,
                               ras_cycles: int) -> float:
        """Per-activation disturbance multiplier for a row held open
        ``open_cycles`` (RowPress effect).

        1.0 for a minimum-latency ACT/PRE cycle (open <= tRAS); grows
        logarithmically with the open time beyond tRAS.
        """
        if open_cycles <= ras_cycles or self.rowpress_coeff == 0.0:
            return 1.0
        return 1.0 + self.rowpress_coeff * math.log2(
            open_cycles / ras_cycles)

    def temperature_threshold_scale(self, temperature_c: float) -> float:
        """Threshold multiplier at ``temperature_c`` (1.0 at the reference)."""
        delta = temperature_c - self.reference_temperature_c
        scale = 1.0 + self.threshold_temp_coeff * delta
        return max(scale, 0.05)

    def voltage_threshold_scale(self, wordline_voltage_v: float) -> float:
        """Threshold multiplier at ``wordline_voltage_v``.

        1.0 at the nominal voltage; grows as the wordline is underscaled
        (weaker aggressor coupling — fewer RowHammer bitflips).
        Operating below ``min_wordline_voltage_v`` is the caller's error.
        """
        if wordline_voltage_v < self.min_wordline_voltage_v:
            raise CalibrationError(
                f"wordline voltage {wordline_voltage_v} V below the "
                f"operational minimum {self.min_wordline_voltage_v} V")
        underscale = (self.nominal_wordline_voltage_v -
                      wordline_voltage_v) / self.nominal_wordline_voltage_v
        return 1.0 + self.voltage_threshold_coeff * max(0.0, underscale)

    def retention_temperature_scale(self, temperature_c: float) -> float:
        """Retention-time multiplier at ``temperature_c``."""
        delta = self.reference_temperature_c - temperature_c
        return 2.0 ** (delta / self.retention_temp_double_c)

    def with_overrides(self, **kwargs) -> "CalibrationProfile":
        """A copy of this profile with selected fields replaced."""
        return replace(self, **kwargs)


#: Back-compat alias from before the device-family refactor, when the
#: calibration bundle was the only "device profile" in the codebase.
#: The family-level bundle now lives in :mod:`repro.dram.profiles`.
DeviceProfile = CalibrationProfile


def default_profile() -> CalibrationProfile:
    """The profile calibrated against the paper's reported numbers."""
    return CalibrationProfile()


def uniform_profile() -> CalibrationProfile:
    """A variation-free profile (all channels/banks/rows identical).

    Useful in tests that need to isolate one mechanism: any measured
    spatial difference under this profile is a bug.
    """
    return CalibrationProfile(
        weak_fraction=(0.06,) * 8,
        channel_scales=(1.0,) * 8,
        true_cell_fraction=(0.5, 0.5, 0.5, 0.5),
        true_cell_scale=(1.0, 1.0, 1.0, 1.0),
        anti_cell_scale=(1.0, 1.0, 1.0, 1.0),
        subarray_edge_droop=0.0,
        last_subarray_scale=1.0,
        bank_sigma=1e-9,
        row_sigma=1e-9,
    )


def ddr4_calibration() -> CalibrationProfile:
    """Plausible ground truth for a two-channel DDR4 module.

    Not fit to any single published module; the shape follows the
    *Revisiting RowHammer* population data — DDR4 HC_first medians are
    several times higher than this paper's HBM2 stack, with milder
    spatial variation (planar dies, one channel per die, so every
    per-channel tuple is full-length and die pairing plays no role).
    """
    return CalibrationProfile(
        weak_median=2.1e6,
        weak_sigma=0.75,
        threshold_floor=60_000.0,
        weak_fraction=(0.0310, 0.0355),
        channel_scales=(1.00, 0.97),
        true_cell_fraction=(0.51, 0.49),
        true_cell_scale=(1.12, 0.93),
        anti_cell_scale=(0.92, 1.08),
        subarray_edge_droop=0.30,
        last_subarray_scale=1.8,
        retention_median_s=64.0,
    )


def ddr5_calibration() -> CalibrationProfile:
    """Plausible ground truth for a two-channel DDR5 module.

    DDR5 nodes are denser and markedly more RowHammer-vulnerable than
    DDR4 (thresholds below the HBM2 stack's), with on-die ECC assumed
    *off* in this model — the paper's methodology reads raw cells.
    """
    return CalibrationProfile(
        weak_median=4.2e5,
        weak_sigma=0.90,
        threshold_floor=9_000.0,
        weak_fraction=(0.0880, 0.0935),
        channel_scales=(1.00, 0.94),
        true_cell_fraction=(0.53, 0.48),
        true_cell_scale=(1.18, 0.91),
        anti_cell_scale=(0.88, 1.10),
        subarray_edge_droop=0.38,
        last_subarray_scale=2.2,
        retention_median_s=18.0,
        retention_sigma=1.4,
    )

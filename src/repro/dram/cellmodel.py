"""Per-cell ground truth: RowHammer thresholds, orientation, retention.

Every DRAM cell in the simulated stack has three immutable physical
properties, sampled deterministically from the device seed and the cell's
coordinates (so the same cell behaves identically across experiments and
repetitions, as silicon does):

* **RowHammer threshold** — the accumulated neighbour-activation count at
  which the cell flips, before data-pattern coupling adjustments.
* **Orientation** — *true cell* (logical 1 stored as charged) or *anti
  cell* (logical 0 stored as charged).  Charge-loss mechanisms (RowHammer
  and retention decay) can only flip a cell that currently holds its
  charged value, which is what makes RowHammer data-pattern dependent.
* **Retention time** — how long the cell holds charge without refresh,
  the side channel U-TRR exploits (§5).

A row's ground truth covers its 8,192 data cells plus 1,024 on-die-ECC
parity cells (one 8-bit parity word per 64 data bits).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.dram.calibration import DeviceProfile
from repro.dram.geometry import HBM2Geometry
from repro.dram.subarrays import SubarrayLayout
from repro.rng import generator_for, normal_hash

#: ECC granularity: one parity byte per this many data bits.
ECC_WORD_BITS = 64
#: Parity bits stored per ECC word.
ECC_PARITY_BITS = 8


@dataclass(frozen=True)
class RowGroundTruth:
    """Immutable physical properties of one row's cells.

    Arrays cover data cells followed by parity cells:
    ``thresholds[:row_bits]`` are the data cells, the rest are parity.
    """

    #: Base RowHammer threshold per cell (disturbance units), before
    #: data-pattern coupling multipliers and temperature scaling.
    thresholds: np.ndarray
    #: True where the cell is a true cell (charged == logical 1).
    true_cell: np.ndarray
    #: Retention time per cell at the reference temperature, seconds.
    retention_s: np.ndarray

    @property
    def charged_values(self) -> np.ndarray:
        """Logical value at which each cell is charged (uint8 0/1)."""
        return self.true_cell.astype(np.uint8)


class GroundTruthProvider:
    """Samples and caches per-row ground truth for one device.

    The provider is shared by every bank of the device; rows are keyed by
    (channel, pseudo channel, bank, physical row).  A bounded LRU cache
    keeps memory flat during full-bank sweeps.
    """

    def __init__(self, geometry: HBM2Geometry, profile: DeviceProfile,
                 layout: SubarrayLayout, seed: int,
                 cache_rows: int = 768) -> None:
        self._geometry = geometry
        self._profile = profile
        self._layout = layout
        self._seed = seed
        self._cache: "OrderedDict[Tuple[int, int, int, int], RowGroundTruth]" = \
            OrderedDict()
        self._cache_rows = cache_rows

    @property
    def cells_per_row(self) -> int:
        """Data cells + parity cells per row."""
        data_bits = self._geometry.row_bits
        words = data_bits // ECC_WORD_BITS
        return data_bits + words * ECC_PARITY_BITS

    def row(self, channel: int, pseudo_channel: int, bank: int,
            physical_row: int) -> RowGroundTruth:
        """Ground truth for one physical row (cached)."""
        key = (channel, pseudo_channel, bank, physical_row)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        truth = self._sample_row(channel, pseudo_channel, bank, physical_row)
        self._cache[key] = truth
        if len(self._cache) > self._cache_rows:
            self._cache.popitem(last=False)
        return truth

    # ------------------------------------------------------------------
    def _row_scale(self, channel: int, pseudo_channel: int, bank: int,
                   physical_row: int) -> float:
        """Deterministic multiplicative scale shared by a row's cells."""
        profile = self._profile
        scale = profile.channel_scale(channel)
        scale *= float(np.exp(profile.bank_sigma * normal_hash(
            self._seed, ("bank-scale", channel, pseudo_channel, bank))))
        scale *= float(np.exp(profile.row_sigma * normal_hash(
            self._seed,
            ("row-scale", channel, pseudo_channel, bank, physical_row))))
        scale *= profile.subarray_position_scale(
            self._layout.position_fraction(physical_row))
        if self._layout.is_last_subarray(physical_row):
            scale *= profile.last_subarray_scale
        return scale

    def _sample_row(self, channel: int, pseudo_channel: int, bank: int,
                    physical_row: int) -> RowGroundTruth:
        profile = self._profile
        cells = self.cells_per_row
        rng = generator_for(
            self._seed, ("cells", channel, pseudo_channel, bank, physical_row))

        # Orientation first so the draw layout is stable if knobs change.
        true_cell = rng.random(cells) < profile.true_fraction_for(channel)

        # Two threshold populations: RowHammer-susceptible weak cells (a
        # few percent, channel-dependent density) and the strong bulk.
        weak = rng.random(cells) < profile.weak_fraction_for(channel)
        standard_normals = rng.standard_normal(cells)
        medians = np.where(weak, profile.weak_median, profile.strong_median)
        sigmas = np.where(weak, profile.weak_sigma, profile.strong_sigma)
        scale = self._row_scale(channel, pseudo_channel, bank, physical_row)
        thresholds = (profile.threshold_floor * scale +
                      medians * scale * np.exp(standard_normals * sigmas))

        orientation_scale = np.where(
            true_cell,
            profile.true_scale_for(channel),
            profile.anti_scale_for(channel))
        thresholds = (thresholds * orientation_scale).astype(np.float32)

        retention = (profile.retention_median_s * np.exp(
            rng.standard_normal(cells) * profile.retention_sigma)
        ).astype(np.float32)

        thresholds.setflags(write=False)
        true_cell.setflags(write=False)
        retention.setflags(write=False)
        return RowGroundTruth(thresholds=thresholds, true_cell=true_cell,
                              retention_s=retention)

    def powerup_cells(self, channel: int, pseudo_channel: int, bank: int,
                      physical_row: int) -> np.ndarray:
        """Deterministic power-up content of a never-written row.

        Covers data cells followed by parity cells.  A never-written,
        never-refreshed cell has fully decayed and reads as its
        *discharged* logical value — which is also why untouched rows can
        never gain RowHammer or retention flips (nothing is charged).
        """
        truth = self.row(channel, pseudo_channel, bank, physical_row)
        return (1 - truth.charged_values).astype(np.uint8)

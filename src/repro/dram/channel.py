"""Per-channel device state: mode registers, TRR engines, refresh pointers.

A channel is an independent DRAM interface with its own mode registers;
its pseudo channels (HBM2) or sub-channels (DDR5) share I/O but have
independent bank state, refresh sequencing, and (in our model)
independent hidden TRR engines.  Banks are created lazily — a full HBM2
stack has 256 banks but a typical experiment touches a handful.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dram.bank import Bank, BankKey, DeviceEnvironment
from repro.dram.calibration import CalibrationProfile
from repro.dram.cellmodel import GroundTruthProvider
from repro.dram.geometry import Geometry
from repro.dram.modereg import ModeRegisters
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingParameters
from repro.dram.trr import TrrConfig, TrrEngine


class PseudoChannelState:
    """Refresh sequencing and TRR engine of one pseudo channel."""

    def __init__(self, geometry: Geometry, timing: TimingParameters,
                 trr_config: TrrConfig, seed: int = 0) -> None:
        self.trr = TrrEngine(trr_config, seed=seed)
        refs_per_window = max(1, round(timing.t_refw / timing.t_refi))
        self.rows_per_ref = -(-geometry.rows // refs_per_window)  # ceil div
        self.refresh_pointer = 0
        self.ref_count = 0

    def next_refresh_range(self, rows: int) -> Tuple[int, int]:
        """Physical row range the next REF refreshes (wraps around)."""
        start = self.refresh_pointer
        end = min(start + self.rows_per_ref, rows)
        self.refresh_pointer = end % rows
        self.ref_count += 1
        return start, end


class Channel:
    """One channel: mode registers plus per-pseudo-channel state."""

    def __init__(self, index: int, geometry: Geometry,
                 profile: CalibrationProfile, layout: SubarrayLayout,
                 truth: GroundTruthProvider, timing: TimingParameters,
                 environment: DeviceEnvironment,
                 trr_config: TrrConfig, seed: int = 0) -> None:
        self.index = index
        self.mode_registers = ModeRegisters()
        self._geometry = geometry
        self._profile = profile
        self._layout = layout
        self._truth = truth
        self._timing = timing
        self._environment = environment
        self._banks: Dict[BankKey, Bank] = {}
        self.pseudo_channels = [
            PseudoChannelState(geometry, timing, trr_config, seed=seed)
            for _ in range(geometry.pseudo_channels)
        ]

    def bank(self, pseudo_channel: int, bank: int) -> Bank:
        """The Bank object, created on first touch."""
        self._geometry.check_pseudo_channel(pseudo_channel)
        self._geometry.check_bank(bank)
        key: BankKey = (self.index, pseudo_channel, bank)
        existing = self._banks.get(key)
        if existing is not None:
            return existing
        created = Bank(key, self._geometry, self._profile, self._layout,
                       self._truth, self._timing, self._environment)
        self._banks[key] = created
        return created

    def existing_bank(self, pseudo_channel: int, bank: int) -> Optional[Bank]:
        """The Bank object if it has been touched, else None."""
        return self._banks.get((self.index, pseudo_channel, bank))

    def touched_banks(self, pseudo_channel: int):
        """Iterate over the pseudo channel's already-created banks."""
        for key, bank in self._banks.items():
            if key[1] == pseudo_channel:
                yield bank

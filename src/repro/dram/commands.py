"""DRAM command vocabulary.

These are the commands a DRAM Bender test program can issue to the device,
mirroring the subset of the HBM2 command set the paper's experiments use:
ACT, PRE (and PREA), RD, WR, and REF.  Commands are plain frozen
dataclasses so programs are cheap to construct, hash, and compare in
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True)
class Activate:
    """Open ``row`` in a bank, copying it into the row buffer.

    This is the command RowHammer abuses: every ACT/PRE cycle on an
    aggressor row disturbs the wordline's physical neighbours.
    """

    channel: int
    pseudo_channel: int
    bank: int
    row: int


@dataclass(frozen=True)
class Precharge:
    """Close the open row in one bank."""

    channel: int
    pseudo_channel: int
    bank: int


@dataclass(frozen=True)
class PrechargeAll:
    """Close the open row in every bank of a pseudo channel."""

    channel: int
    pseudo_channel: int


@dataclass(frozen=True)
class Read:
    """Read one column (32 bytes) from the open row of a bank."""

    channel: int
    pseudo_channel: int
    bank: int
    column: int


@dataclass(frozen=True)
class Write:
    """Write one column (32 bytes) to the open row of a bank.

    ``data`` must be exactly ``column_bytes`` long.
    """

    channel: int
    pseudo_channel: int
    bank: int
    column: int
    data: bytes


@dataclass(frozen=True)
class Refresh:
    """Periodic refresh command for a pseudo channel.

    Each REF refreshes the next group of rows in every bank (all-bank
    refresh) and — crucially for §5 — gives any in-DRAM TRR engine an
    opportunity to sneak in victim-row refreshes.
    """

    channel: int
    pseudo_channel: int


Command = Union[Activate, Precharge, PrechargeAll, Read, Write, Refresh]


def command_name(command: Command) -> str:
    """Mnemonic for logging and disassembly."""
    return {
        Activate: "ACT",
        Precharge: "PRE",
        PrechargeAll: "PREA",
        Read: "RD",
        Write: "WR",
        Refresh: "REF",
    }[type(command)]


def bank_key_of(command: Command) -> Optional[tuple]:
    """(channel, pc, bank) for bank-scoped commands, else None."""
    if isinstance(command, (Activate, Precharge, Read, Write)):
        return (command.channel, command.pseudo_channel, command.bank)
    return None

"""Top-level DRAM device model.

:class:`Device` is the only object the testing infrastructure talks
to.  It owns the command clock (in interface cycles), enforces timing,
maps logical to physical row addresses, dispatches to banks, drives the
refresh machinery, and hosts the hidden TRR engines.  The defaults
describe the paper's HBM2 stack; other families are built from a
:class:`~repro.dram.profiles.DeviceProfile`.

Commands are *scheduled*: each issuing method waits (advances the clock)
until the earliest cycle at which the command is legal, mirroring how the
paper's DRAM Bender programs are compiled against timing parameters.  A
command occupies one command-bus cycle.

The device also exposes a **bulk activation** entry point used by the
interpreter's loop fast path.  Its semantics are defined to match an
unrolled sequence of ACT/PRE iterations exactly for loops whose activated
rows do not flip themselves (the normal case: an activated row's charge is
restored on every iteration); see :meth:`Device.bulk_activations`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dram.bank import Bank, BankKey, DeviceEnvironment
from repro.dram.calibration import CalibrationProfile, default_profile
from repro.dram.cellmodel import GroundTruthProvider
from repro.dram.channel import Channel
from repro.dram.commands import (
    Activate,
    Command,
    Precharge,
    PrechargeAll,
    Read,
    Refresh,
    Write,
)
from repro.dram.geometry import Geometry
from repro.dram.modereg import ModeRegisters
from repro.dram.subarrays import SubarrayLayout
from repro.dram.timing import TimingChecker, TimingParameters
from repro.dram.trr import TrrConfig
from repro.dram.address import RowAddressMapper
from repro.errors import CommandError


class Device:
    """A simulated DRAM device behind a memory-controller interface.

    ``profile`` is the hidden *calibration* ground truth
    (:class:`~repro.dram.calibration.CalibrationProfile`);
    ``profile_name`` records which family-level
    :class:`~repro.dram.profiles.DeviceProfile` the device was built
    from (``None`` for hand-assembled devices) so the engine can thread
    device identity into cache digests and fingerprints.
    """

    def __init__(self, geometry: Optional[Geometry] = None,
                 timing: Optional[TimingParameters] = None,
                 profile: Optional[CalibrationProfile] = None,
                 seed: int = 0,
                 mapper: Optional[RowAddressMapper] = None,
                 trr_config: Optional[TrrConfig] = None,
                 subarray_layout: Optional[SubarrayLayout] = None,
                 temperature_c: float = 85.0,
                 profile_name: Optional[str] = None) -> None:
        self.geometry = geometry or Geometry()
        self.timing = timing or TimingParameters()
        self.profile = profile or default_profile()
        self.profile_name = profile_name
        self.seed = seed
        self.mapper = mapper or RowAddressMapper(self.geometry)
        self.subarray_layout = (subarray_layout or
                                SubarrayLayout.paper_default(self.geometry.rows))
        if self.subarray_layout.total_rows != self.geometry.rows:
            raise CommandError(
                f"subarray layout covers {self.subarray_layout.total_rows} "
                f"rows, geometry has {self.geometry.rows}")
        self.trr_config = (trr_config if trr_config is not None
                           else TrrConfig())

        self._environment = DeviceEnvironment(
            temperature_c, self.profile.nominal_wordline_voltage_v)
        self._truth = GroundTruthProvider(
            self.geometry, self.profile, self.subarray_layout, seed)
        self._channels = [
            Channel(index, self.geometry, self.profile, self.subarray_layout,
                    self._truth, self.timing, self._environment,
                    self.trr_config, seed=seed)
            for index in range(self.geometry.channels)
        ]
        self._timing_checker = TimingChecker(self.timing)
        self.now = 0
        self.command_counts: Dict[str, int] = {}
        #: Memoized batch-write schedules, keyed by (bank key, batch
        #: length) and guarded by the checker's entry replay signature;
        #: see :meth:`apply_row_writes`.
        self._write_replay: Dict[Tuple[BankKey, int], tuple] = {}
        #: Memoized hammer-iteration schedules, keyed by the resolved
        #: step tuple and guarded the same way; see
        #: :meth:`apply_hammer_steps`.
        self._hammer_replay: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Environment / introspection
    # ------------------------------------------------------------------
    @property
    def temperature_c(self) -> float:
        return self._environment.temperature_c

    def set_temperature(self, celsius: float) -> None:
        """Set the ambient chip temperature (the PID loop calls this)."""
        self._environment.temperature_c = celsius

    @property
    def wordline_voltage_v(self) -> float:
        return self._environment.wordline_voltage_v

    def set_wordline_voltage(self, volts: float) -> None:
        """Set the wordline (VPP) rail voltage.

        Rejected below the profile's operational minimum (real
        reduced-voltage studies hit access failures there).
        """
        # Validate eagerly so a bad rail setting fails at the knob, not
        # at the first read.
        self.profile.voltage_threshold_scale(volts)
        self._environment.wordline_voltage_v = volts

    def channel(self, index: int) -> Channel:
        self.geometry.check_channel(index)
        return self._channels[index]

    def mode_registers(self, channel: int) -> ModeRegisters:
        return self.channel(channel).mode_registers

    def set_ecc_enabled(self, enabled: bool,
                        channel: Optional[int] = None) -> None:
        """Convenience MR write: toggle on-die ECC (per channel or all)."""
        targets = ([channel] if channel is not None
                   else range(self.geometry.channels))
        for index in targets:
            self.mode_registers(index).set_ecc_enabled(enabled)

    def bank(self, channel: int, pseudo_channel: int, bank: int) -> Bank:
        return self.channel(channel).bank(pseudo_channel, bank)

    def now_seconds(self) -> float:
        """Current in-DRAM time in seconds."""
        return self.timing.seconds(self.now)

    def _count(self, mnemonic: str, amount: int = 1) -> None:
        self.command_counts[mnemonic] = (
            self.command_counts.get(mnemonic, 0) + amount)

    # ------------------------------------------------------------------
    # Command interface (logical row addressing)
    # ------------------------------------------------------------------
    def activate(self, channel: int, pseudo_channel: int, bank: int,
                 row: int) -> int:
        """Issue ACT at the earliest legal cycle; returns that cycle."""
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_activate(key, self.now)
        self._timing_checker.record_activate(key, cycle)
        target = self.bank(channel, pseudo_channel, bank)
        physical = self.mapper.logical_to_physical(row)
        target.activate(physical, cycle)
        pc_state = self.channel(channel).pseudo_channels[pseudo_channel]
        pc_state.trr.observe_activation(key, physical)
        self.now = cycle + 1
        self._count("ACT")
        return cycle

    def precharge(self, channel: int, pseudo_channel: int, bank: int) -> int:
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_precharge(key, self.now)
        self._timing_checker.record_precharge(key, cycle)
        closed = self.bank(channel, pseudo_channel, bank).precharge(cycle)
        if closed is not None:
            self._route_cross_channel(channel, pseudo_channel, bank,
                                      closed[0], closed[1])
        self.now = cycle + 1
        self._count("PRE")
        return cycle

    def _route_cross_channel(self, channel: int, pseudo_channel: int,
                             bank: int, physical_row: int,
                             dose: float) -> None:
        """Leak a fraction of an activation dose to the same row of the
        vertically adjacent channels (future work 3's hypothesis)."""
        coupling = self.profile.cross_channel_coupling
        if coupling <= 0.0:
            return
        step = self.geometry.channels_per_die
        for neighbor_channel in (channel - step, channel + step):
            if not 0 <= neighbor_channel < self.geometry.channels:
                continue
            victim_bank = self.bank(neighbor_channel, pseudo_channel, bank)
            victim_bank.disturbance.add_direct(physical_row,
                                               coupling * dose)

    def precharge_all(self, channel: int, pseudo_channel: int) -> int:
        cycle = self.now
        for bank_index in range(self.geometry.banks):
            existing = self.channel(channel).existing_bank(
                pseudo_channel, bank_index)
            if existing is None or not existing.is_open:
                continue
            key: BankKey = (channel, pseudo_channel, bank_index)
            cycle = max(cycle,
                        self._timing_checker.earliest_precharge(key, cycle))
            self._timing_checker.record_precharge(key, cycle)
            closed = existing.precharge(cycle)
            if closed is not None:
                self._route_cross_channel(channel, pseudo_channel,
                                          bank_index, closed[0], closed[1])
        self.now = cycle + 1
        self._count("PREA")
        return cycle

    def read(self, channel: int, pseudo_channel: int, bank: int,
             column: int) -> bytes:
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_rdwr(key, self.now)
        self._timing_checker.record_rdwr(key, cycle, is_write=False)
        data = self.bank(channel, pseudo_channel, bank).read_column(
            column, cycle, self.mode_registers(channel).ecc_enabled)
        self.now = cycle + 1
        self._count("RD")
        return data

    def write(self, channel: int, pseudo_channel: int, bank: int,
              column: int, data: bytes) -> int:
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_rdwr(key, self.now)
        self._timing_checker.record_rdwr(key, cycle, is_write=True)
        self.bank(channel, pseudo_channel, bank).write_column(
            column, data, cycle)
        self.now = cycle + 1
        self._count("WR")
        return cycle

    def refresh(self, channel: int, pseudo_channel: int) -> int:
        """Periodic REF: refresh the next row group in every bank, and
        give the hidden TRR engine its firing opportunity."""
        pc = (channel, pseudo_channel)
        chan = self.channel(channel)
        for bank_obj in chan.touched_banks(pseudo_channel):
            if bank_obj.is_open:
                raise CommandError(
                    f"REF to {pc} with bank {bank_obj.key} open")
        cycle = self._timing_checker.earliest_refresh(pc, self.now)
        self._timing_checker.record_refresh(pc, cycle)

        pc_state = chan.pseudo_channels[pseudo_channel]
        start, end = pc_state.next_refresh_range(self.geometry.rows)
        for bank_obj in chan.touched_banks(pseudo_channel):
            bank_obj.refresh_rows(start, end, cycle)

        for bank_key, victim in pc_state.trr.on_refresh():
            victim_bank = chan.existing_bank(bank_key[1], bank_key[2])
            if victim_bank is not None:
                victim_bank.trr_refresh(victim, cycle)

        # The HBM2 standard's *documented* TRR mode (§2 footnote 1): the
        # controller flags an aggressor via mode registers, and every
        # REF preventively refreshes its neighbours.
        if chan.mode_registers.documented_trr_mode:
            target_bank, target_row = \
                chan.mode_registers.documented_trr_target
            flagged = chan.existing_bank(pseudo_channel, target_bank)
            if flagged is not None and target_row < self.geometry.rows:
                physical = self.mapper.logical_to_physical(target_row)
                flagged.trr_refresh(physical - 1, cycle)
                flagged.trr_refresh(physical + 1, cycle)

        self.now = cycle + self.timing.rfc_cycles
        self._count("REF")
        return cycle

    def wait(self, cycles: int) -> None:
        """Advance the command clock without issuing anything."""
        if cycles < 0:
            raise CommandError(f"cannot wait a negative time: {cycles}")
        self.now += cycles

    # ------------------------------------------------------------------
    # Wide (batched) row access — infrastructure convenience equivalent
    # to `columns` back-to-back RD/WR commands.
    # ------------------------------------------------------------------
    def read_open_row(self, channel: int, pseudo_channel: int,
                      bank: int) -> np.ndarray:
        """All row bits of the open row (models 32 pipelined RDs)."""
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_rdwr(key, self.now)
        self._timing_checker.record_rdwr(key, cycle, is_write=False)
        bits = self.bank(channel, pseudo_channel, bank).read_open_row_bits(
            cycle, self.mode_registers(channel).ecc_enabled)
        self.now = cycle + self.geometry.columns * self.timing.ccd_cycles
        self._count("RD", self.geometry.columns)
        return bits

    def write_open_row(self, channel: int, pseudo_channel: int, bank: int,
                       bits: np.ndarray,
                       parity: Optional[np.ndarray] = None) -> None:
        """Store all row bits of the open row (models 32 pipelined WRs).

        ``parity`` lets a caller that already holds the payload's ECC
        parity words (the interpreter's payload-lowering cache) skip
        the re-encode; it must equal ``encode_words(bits & 1)``.
        """
        key: BankKey = (channel, pseudo_channel, bank)
        cycle = self._timing_checker.earliest_rdwr(key, self.now)
        self._timing_checker.record_rdwr(key, cycle, is_write=True)
        self.bank(channel, pseudo_channel, bank).write_open_row_bits(
            bits, cycle, parity=parity)
        self.now = cycle + self.geometry.columns * self.timing.ccd_cycles
        self._count("WR", self.geometry.columns)

    def apply_row_write(self, channel: int, pseudo_channel: int, bank: int,
                        row: int, bits: np.ndarray, parity: np.ndarray,
                        tag: Optional[bytes] = None) -> None:
        """Analytic ACT / WRROW / PRE: fill one row with a known payload.

        The execution engine's fast path uses this for summarized
        full-row writes.  Cycle- and state-identical to issuing the
        three commands through :meth:`activate` /
        :meth:`write_open_row` / :meth:`precharge`: the same timing
        checker records, clock advances, TRR observation, command
        counts, RowPress open-time factor and cross-channel routing —
        only the row sense is skipped, which
        :meth:`~repro.dram.bank.Bank.store_full_row` proves is
        unobservable under a full-row overwrite.
        """
        key: BankKey = (channel, pseudo_channel, bank)
        target = self.bank(channel, pseudo_channel, bank)
        physical = self.mapper.logical_to_physical(row)

        act_cycle = self._timing_checker.earliest_activate(key, self.now)
        self._timing_checker.record_activate(key, act_cycle)
        pc_state = self.channel(channel).pseudo_channels[pseudo_channel]
        pc_state.trr.observe_activation(key, physical)
        self.now = act_cycle + 1
        self._count("ACT")

        wr_cycle = self._timing_checker.earliest_rdwr(key, self.now)
        self._timing_checker.record_rdwr(key, wr_cycle, is_write=True)
        target.store_full_row(physical, bits, parity, act_cycle, tag=tag)
        self.now = wr_cycle + self.geometry.columns * self.timing.ccd_cycles
        self._count("WR", self.geometry.columns)

        pre_cycle = self._timing_checker.earliest_precharge(key, self.now)
        self._timing_checker.record_precharge(key, pre_cycle)
        factor = self.profile.rowpress_amplification(
            pre_cycle - act_cycle, self.timing.ras_cycles)
        target.note_closed_activation(physical, factor)
        self._route_cross_channel(channel, pseudo_channel, bank,
                                  physical, factor)
        self.now = pre_cycle + 1
        self._count("PRE")

    #: Minimum same-bank run length worth the bulk write path below:
    #: the steady-state probe spends a few fully-scheduled triads
    #: before it can start skipping the timing checker.
    BULK_WRITE_THRESHOLD = 8

    def apply_row_writes(self, channel: int, pseudo_channel: int,
                         bank: int,
                         writes: Sequence[Tuple[int, np.ndarray,
                                                np.ndarray,
                                                Optional[bytes]]]
                         ) -> None:
        """Analytic batch of full-row writes to one bank.

        ``writes`` is a sequence of ``(logical row, bits, parity,
        payload tag)``;
        cycle- and state-identical to one :meth:`apply_row_write` per
        entry, in order.  Uniform triads settle into a steady schedule
        exactly like the interpreter's hammer loops, so after a probe
        of fully-scheduled triads shows two consecutive triads with
        identical period *and* intra-triad offsets — proof that no
        absolute horizon (a stale REF window, a cold bank) still
        binds, leaving only relative constraints, which repeat — the
        middle triads skip the timing checker: their cycles are
        arithmetic, the checker state is translated with
        :meth:`~repro.dram.timing.TimingChecker.shift_state`, and the
        last triad runs fully scheduled to re-anchor the trailing
        state.  Row effects (payload store, restore stamp, RowPress
        open-time factor, neighbour disturbance, cross-channel
        routing) are applied per write, in write order, with the same
        float operations as the unrolled sequence.  Every triad — probe,
        bulk, and trailing — observes its ACT on the TRR sampler, so any
        sampler strategy ends exactly where the unrolled sequence would
        (no REF can interleave inside a batch).

        The first batch of each (bank, length) also *records* its
        schedule — per-write ACT offsets and RowPress factors, the
        checker's exit offsets, and the clock advance — under the
        checker's entry :meth:`~repro.dram.timing.TimingChecker.
        replay_signature`.  A later batch whose entry signature
        matches replays the recording without consulting the checker
        at all: scheduling is a pure function of the clamped-relative
        entry state (see ``replay_signature``), so the cycle offsets
        are provably identical, and only the per-row effects — which
        depend on row and payload, never on absolute time — are
        re-executed.
        """
        if len(writes) < self.BULK_WRITE_THRESHOLD:
            for row, bits, parity, tag in writes:
                self.apply_row_write(channel, pseudo_channel, bank,
                                     row, bits, parity, tag=tag)
            return
        key: BankKey = (channel, pseudo_channel, bank)
        checker = self._timing_checker
        count = len(writes)
        entry_now = self.now
        signature = checker.replay_signature(key, entry_now)
        memo_key = (key, count)
        memo = self._write_replay.get(memo_key)
        if memo is not None and memo[0] == signature:
            self._replay_row_writes(channel, pseudo_channel, bank,
                                    writes, memo)
            return
        target = self.bank(channel, pseudo_channel, bank)
        pc_state = self.channel(channel).pseudo_channels[pseudo_channel]
        mapper = self.mapper
        wr_advance = self.geometry.columns * self.timing.ccd_cycles
        acts: List[int] = []
        factors: List[float] = []

        def one_triad(row: int, bits: np.ndarray, parity: np.ndarray,
                      tag: Optional[bytes]
                      ) -> Tuple[int, int, int, float]:
            physical = mapper.logical_to_physical(row)
            act_cycle = checker.earliest_activate(key, self.now)
            checker.record_activate(key, act_cycle)
            pc_state.trr.observe_activation(key, physical)
            self.now = act_cycle + 1
            self._count("ACT")
            wr_cycle = checker.earliest_rdwr(key, self.now)
            checker.record_rdwr(key, wr_cycle, is_write=True)
            target.store_full_row(physical, bits, parity, act_cycle,
                                  tag=tag)
            self.now = wr_cycle + wr_advance
            self._count("WR", self.geometry.columns)
            pre_cycle = checker.earliest_precharge(key, self.now)
            checker.record_precharge(key, pre_cycle)
            factor = self.profile.rowpress_amplification(
                pre_cycle - act_cycle, self.timing.ras_cycles)
            target.note_closed_activation(physical, factor)
            self._route_cross_channel(channel, pseudo_channel, bank,
                                      physical, factor)
            self.now = pre_cycle + 1
            self._count("PRE")
            acts.append(act_cycle)
            factors.append(factor)
            return act_cycle, wr_cycle, pre_cycle, factor

        # Probe: schedule triads for real until two consecutive ones
        # have the same shape (ACT period, WR and PRE offsets).
        index = 0
        shapes = []   # (period, wr - act, pre - act)
        last_act = None
        steady = None
        while index < count - 1:
            act_cycle, wr_cycle, pre_cycle, factor = one_triad(
                *writes[index])
            index += 1
            if last_act is not None:
                shapes.append((act_cycle - last_act, wr_cycle - act_cycle,
                               pre_cycle - act_cycle))
            last_act = act_cycle
            if len(shapes) >= 2 and shapes[-1] == shapes[-2]:
                steady = (shapes[-1][0], factor)
                break

        if steady is not None and index < count - 1:
            period, factor = steady
            bulk = count - 1 - index
            for offset in range(bulk):
                row, bits, parity, tag = writes[index + offset]
                physical = mapper.logical_to_physical(row)
                act_cycle = last_act + period * (offset + 1)
                pc_state.trr.observe_activation(key, physical)
                target.store_full_row(physical, bits, parity, act_cycle,
                                      tag=tag)
                target.note_closed_activation(physical, factor)
                self._route_cross_channel(channel, pseudo_channel, bank,
                                          physical, factor)
                acts.append(act_cycle)
                factors.append(factor)
            checker.shift_state((key,), bulk * period)
            self.now += bulk * period
            self._count("ACT", bulk)
            self._count("WR", bulk * self.geometry.columns)
            self._count("PRE", bulk)
            index += bulk

        while index < count:
            one_triad(*writes[index])
            index += 1

        self._write_replay[memo_key] = (
            signature,
            tuple(act - entry_now for act in acts),
            tuple(factors),
            checker.capture_offsets(key, entry_now),
            self.now - entry_now,
        )

    def _replay_row_writes(self, channel: int, pseudo_channel: int,
                           bank: int,
                           writes: Sequence[Tuple[int, np.ndarray,
                                                  np.ndarray,
                                                  Optional[bytes]]],
                           memo: tuple) -> None:
        """Replay a memoized batch-write schedule (see above).

        Applies the per-row effects in write order with the recorded
        ACT cycles and RowPress factors, installs the recorded checker
        exit state, advances the clock, and feeds the batch's ACT
        sequence to the TRR sampler in bulk form — exactly equivalent
        to per-ACT observation for every sampler strategy, since no
        REF can interleave inside a batch.
        """
        _, act_offsets, factors, exit_offsets, advance = memo
        key: BankKey = (channel, pseudo_channel, bank)
        target = self.bank(channel, pseudo_channel, bank)
        mapper = self.mapper
        entry_now = self.now
        act_events: List[Tuple[BankKey, int]] = []
        for (row, bits, parity, tag), act_offset, factor in zip(
                writes, act_offsets, factors):
            physical = mapper.logical_to_physical(row)
            act_events.append((key, physical))
            target.store_full_row(physical, bits, parity,
                                  entry_now + act_offset, tag=tag)
            target.note_closed_activation(physical, factor)
            self._route_cross_channel(channel, pseudo_channel, bank,
                                      physical, factor)
        pc_state = self.channel(channel).pseudo_channels[pseudo_channel]
        pc_state.trr.observe_run(act_events, 1)
        self._timing_checker.restore_offsets(key, entry_now, exit_offsets)
        self.now = entry_now + advance
        count = len(writes)
        self._count("ACT", count)
        self._count("WR", count * self.geometry.columns)
        self._count("PRE", count)

    def apply_hammer_steps(self, steps: tuple) -> None:
        """Analytic single hammer iteration: resolved ACT/PRE/Wait steps.

        ``steps`` is a tuple of ``("act", ch, pc, bank, logical_row)``,
        ``("pre", ch, pc, bank)`` and ``("wait", cycles)`` tuples —
        one unrolled loop iteration with row slots already bound.
        Cycle- and state-identical to issuing each step through
        :meth:`activate` / :meth:`precharge` / :meth:`wait`, and the
        first execution does exactly that, while recording each step's
        cycle offset and RowPress factor under the involved banks'
        entry :meth:`~repro.dram.timing.TimingChecker.
        replay_signature` tuple.  A later iteration entering with the
        same signatures replays the recording: scheduling is a pure
        function of the clamped-relative entry state (per key, and
        the interleaving across keys is fixed by step order), so the
        cycles and open times are provably identical, and only the
        bank physics — row restore, TRR observation, neighbour
        disturbance, cross-channel routing — re-executes, in step
        order, with the same float operations.
        """
        checker = self._timing_checker
        entry_now = self.now
        keys: List[BankKey] = []
        for step in steps:
            if step[0] != "wait":
                key = (step[1], step[2], step[3])
                if key not in keys:
                    keys.append(key)
        signature = tuple(checker.replay_signature(key, entry_now)
                          for key in keys)
        memo = self._hammer_replay.get(steps)
        if memo is not None and memo[0] == signature:
            _, events, exit_offsets, advance, n_act, n_pre = memo
            banks = {key: self.bank(*key) for key in keys}
            trrs = {key: self.channel(key[0]).pseudo_channels[key[1]].trr
                    for key in keys}
            for event in events:
                if event[0] == "act":
                    _, key, physical, offset = event
                    banks[key].replay_activate(physical,
                                               entry_now + offset)
                    trrs[key].observe_activation(key, physical)
                else:
                    _, key, physical, factor = event
                    banks[key].replay_precharge(physical, factor)
                    self._route_cross_channel(key[0], key[1], key[2],
                                              physical, factor)
            for key, offsets in zip(keys, exit_offsets):
                checker.restore_offsets(key, entry_now, offsets)
            self.now = entry_now + advance
            if n_act:
                self._count("ACT", n_act)
            if n_pre:
                self._count("PRE", n_pre)
            return

        events_out: List[tuple] = []
        n_act = n_pre = 0
        for step in steps:
            tag = step[0]
            if tag == "act":
                key = (step[1], step[2], step[3])
                physical = self.mapper.logical_to_physical(step[4])
                cycle = self.activate(step[1], step[2], step[3], step[4])
                events_out.append(("act", key, physical,
                                   cycle - entry_now))
                n_act += 1
            elif tag == "pre":
                key = (step[1], step[2], step[3])
                target = self.bank(*key)
                physical = target.open_physical_row
                self.precharge(step[1], step[2], step[3])
                if physical is not None:
                    events_out.append(("pre", key, physical,
                                       target.last_open_factor(physical)))
                n_pre += 1
            else:
                self.wait(step[1])
        self._hammer_replay[steps] = (
            signature,
            tuple(events_out),
            tuple(checker.capture_offsets(key, entry_now)
                  for key in keys),
            self.now - entry_now,
            n_act,
            n_pre,
        )

    # ------------------------------------------------------------------
    # Generic dispatch for Command objects
    # ------------------------------------------------------------------
    def execute(self, command: Command):
        """Execute one :mod:`repro.dram.commands` object."""
        if isinstance(command, Activate):
            return self.activate(command.channel, command.pseudo_channel,
                                 command.bank, command.row)
        if isinstance(command, Precharge):
            return self.precharge(command.channel, command.pseudo_channel,
                                  command.bank)
        if isinstance(command, PrechargeAll):
            return self.precharge_all(command.channel, command.pseudo_channel)
        if isinstance(command, Read):
            return self.read(command.channel, command.pseudo_channel,
                             command.bank, command.column)
        if isinstance(command, Write):
            return self.write(command.channel, command.pseudo_channel,
                              command.bank, command.column, command.data)
        if isinstance(command, Refresh):
            return self.refresh(command.channel, command.pseudo_channel)
        raise CommandError(f"unknown command: {command!r}")

    # ------------------------------------------------------------------
    # Bulk activation fast path (interpreter loops)
    # ------------------------------------------------------------------
    def bulk_activations(self,
                         body: Sequence[Tuple[int, int, int, int]],
                         iterations: int,
                         total_cycles: int) -> None:
        """Apply ``iterations`` repetitions of an ACT/PRE loop body.

        Args:
            body: ACT targets, in body order, as (channel, pseudo_channel,
                bank, logical row) tuples; each is activated (and
                precharged) once per iteration.
            iterations: number of repetitions to apply.
            total_cycles: command-bus cycles the repetitions take (the
                interpreter measures one steady-state iteration and
                multiplies).

        Semantics: identical to the unrolled loop for every row *not*
        activated inside the body.  Rows activated in the body have their
        charge restored every iteration; their small intra-iteration
        residual disturbance (at most one iteration's worth) is dropped,
        which cannot flip any cell because thresholds exceed it by orders
        of magnitude.
        """
        if iterations < 0:
            raise CommandError("iterations must be >= 0")
        if iterations == 0:
            return
        start_cycle = self.now
        end_cycle = start_cycle + total_cycles

        physical_body: List[Tuple[BankKey, int]] = []
        activated_per_bank: Dict[BankKey, set] = {}
        for channel, pseudo_channel, bank_index, row in body:
            key: BankKey = (channel, pseudo_channel, bank_index)
            physical = self.mapper.logical_to_physical(row)
            physical_body.append((key, physical))
            activated_per_bank.setdefault(key, set()).add(physical)

        # Materialize any pre-loop pending state on the activated rows,
        # exactly as their first in-loop ACT would.
        for key, physical in physical_body:
            self.bank(*key).restore_row(physical, start_cycle)

        # Accumulate disturbance on non-activated victims.  Each body
        # ACT's per-iteration dose carries the RowPress amplification the
        # warm-up iterations measured for that row (steady-state loops
        # hold every row open for the same duration each iteration).
        for key, physical in physical_body:
            bank_obj = self.bank(*key)
            activated = activated_per_bank[key]
            dose = iterations * bank_obj.last_open_factor(physical)
            for victim, side, amount in \
                    bank_obj.disturbance.contributions(physical, dose):
                if victim in activated:
                    continue
                bank_obj.disturbance.add(victim, side, amount)
            self._route_cross_channel(key[0], key[1], key[2], physical,
                                      dose)

        # Activated rows end the loop freshly restored.
        for key, activated in activated_per_bank.items():
            bank_obj = self.bank(*key)
            for physical in activated:
                bank_obj.mark_restored(physical, end_cycle)

        # TRR samplers see the full ACT stream in bulk form, grouped by
        # pseudo channel in body order: equivalent to per-ACT
        # observation of ``iterations`` repetitions for every sampler
        # strategy (no REF can occur inside the loop — refresh is held
        # off while hammering).
        events_per_pc: Dict[Tuple[int, int],
                            List[Tuple[BankKey, int]]] = {}
        for key, physical in physical_body:
            events_per_pc.setdefault((key[0], key[1]), []).append(
                (key, physical))
        for (chan_index, pc_index), events in events_per_pc.items():
            pc_state = self.channel(chan_index).pseudo_channels[pc_index]
            pc_state.trr.observe_run(events, iterations)

        # A steady-state loop translates its timing horizon by exactly
        # the skipped duration; shift the affected banks' constraints so
        # commands issued after the loop schedule as the unrolled
        # execution would have.
        self._timing_checker.shift_state(activated_per_bank.keys(),
                                         total_cycles)
        self.now = end_cycle
        self._count("ACT", iterations * len(physical_body))
        self._count("PRE", iterations * len(physical_body))


#: Back-compat alias from before the device-family refactor, when the
#: model was HBM2-only.  New code should say :class:`Device`.
HBM2Device = Device

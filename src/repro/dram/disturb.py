"""Per-row, per-side disturbance accounting.

Every activation of a wordline disturbs the physically adjacent rows
*within the same subarray* (wordline coupling does not cross the
sense-amplifier stripes — which is precisely what the paper's subarray
reverse engineering exploits).  Disturbance accumulates per victim row
until the row's charge is restored — by its own activation, by a periodic
refresh, or by a TRR victim refresh — at which point the counter resets.

Disturbance is tracked separately for the two sides of each victim
(aggressors physically *below* vs *above*), because the data-pattern
coupling a cell experiences depends on the aggressor's stored bit on each
side: a victim cell is disturbed effectively only by aggressor cells whose
value differs from its own.  Double-sided hammering therefore delivers
both sides' disturbance; single-sided hammering only one — reproducing the
single-/double-sided asymmetry the paper's methodology relies on.

Distance-2 disturbance (a much weaker, non-adjacent coupling) is folded
into the same side bucket and evaluated against the distance-1
neighbour's data; at ``blast_weight_2`` ≈ 4% of the adjacent weight, the
approximation is far below measurement noise.

The ledger is a sparse dict of ``[below, above, direct]`` float triples,
keyed by physical row: experiments touch a tiny fraction of a bank's
rows, and the accounting is all scalar reads and adds on the hot path
(one per victim per activation), where plain Python floats beat numpy
indexing by an order of magnitude.  Accumulation uses IEEE-754 double
adds in command order either way, so the switch is value-exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.dram.calibration import DeviceProfile
from repro.dram.subarrays import SubarrayLayout

#: Index of the bucket fed by aggressors at lower physical addresses.
SIDE_BELOW = 0
#: Index of the bucket fed by aggressors at higher physical addresses.
SIDE_ABOVE = 1
#: Index of the direct bucket: disturbance that couples into the cell
#: regardless of in-die neighbour data — used for hypothesised
#: cross-channel (inter-die) coupling, the paper's future work 3.
SIDE_DIRECT = 2


class DisturbanceTracker:
    """Accumulated neighbour-activation disturbance for one bank."""

    def __init__(self, rows: int, layout: SubarrayLayout,
                 profile: DeviceProfile) -> None:
        self._layout = layout
        self._profile = profile
        self._rows = rows
        self._counts: Dict[int, List[float]] = {}
        # Per-aggressor (victim, side, weight) triples are a pure
        # function of the static geometry (weights + subarray layout),
        # so they are computed once per row and scaled per call.
        self._blast: Dict[int, Tuple[Tuple[int, int, float], ...]] = {}

    # ------------------------------------------------------------------
    def _blast_triples(self, physical_row: int
                       ) -> Tuple[Tuple[int, int, float], ...]:
        """Memoized single-activation (victim, side, weight) triples."""
        cached = self._blast.get(physical_row)
        if cached is not None:
            return cached
        profile = self._profile
        layout = self._layout
        rows = self._rows
        triples: List[Tuple[int, int, float]] = []
        for distance, weight in ((1, profile.blast_weight_1),
                                 (2, profile.blast_weight_2)):
            if weight <= 0.0:
                continue
            for victim, side in ((physical_row - distance, SIDE_ABOVE),
                                 (physical_row + distance, SIDE_BELOW)):
                if not 0 <= victim < rows:
                    continue
                if not layout.same_subarray(physical_row, victim):
                    continue
                triples.append((victim, side, weight))
        result = tuple(triples)
        self._blast[physical_row] = result
        return result

    def _entry(self, physical_row: int) -> List[float]:
        entry = self._counts.get(physical_row)
        if entry is None:
            entry = self._counts[physical_row] = [0.0, 0.0, 0.0]
        return entry

    def contributions(self, physical_row: int,
                      count: float = 1.0) -> List[Tuple[int, int, float]]:
        """(victim row, side, disturbance) triples for ``count`` ACTs.

        Distance-1 neighbours receive ``blast_weight_1`` per activation,
        distance-2 neighbours ``blast_weight_2``; rows across a subarray
        boundary (or outside the bank) receive nothing.
        """
        return [(victim, side, weight * count)
                for victim, side, weight in self._blast_triples(physical_row)]

    def record_activation(self, physical_row: int, count: float = 1.0) -> None:
        """Disturb the neighbours of ``physical_row`` by ``count`` ACTs.

        Does *not* reset the aggressor's own counters — charge restoration
        is the bank's job (it must also reset the refresh timestamp).
        """
        counts = self._counts
        for victim, side, weight in self._blast_triples(physical_row):
            entry = counts.get(victim)
            if entry is None:
                entry = counts[victim] = [0.0, 0.0, 0.0]
            entry[side] += weight * count

    def add(self, physical_row: int, side: int, amount: float) -> None:
        """Directly add disturbance to one row side (bulk fast path)."""
        self._entry(physical_row)[side] += amount

    def get_sides(self, physical_row: int) -> Tuple[float, float]:
        """(from below, from above) accumulated disturbance of one row."""
        entry = self._counts.get(physical_row)
        if entry is None:
            return 0.0, 0.0
        return entry[SIDE_BELOW], entry[SIDE_ABOVE]

    def get_direct(self, physical_row: int) -> float:
        """Accumulated data-independent (inter-die) disturbance."""
        entry = self._counts.get(physical_row)
        return entry[SIDE_DIRECT] if entry is not None else 0.0

    def add_direct(self, physical_row: int, amount: float) -> None:
        """Add cross-channel disturbance to one row."""
        self._entry(physical_row)[SIDE_DIRECT] += amount

    def get_total(self, physical_row: int) -> float:
        """Total accumulated disturbance of one row (guard checks)."""
        entry = self._counts.get(physical_row)
        if entry is None:
            return 0.0
        return (entry[0] + entry[1]) + entry[2]

    def reset(self, physical_row: int) -> None:
        """Charge restored: the row's accumulated disturbance vanishes."""
        self._counts.pop(physical_row, None)

    def reset_range(self, start: int, end: int) -> None:
        """Reset a contiguous physical-row range (periodic refresh)."""
        stale = [row for row in self._counts if start <= row < end]
        for row in stale:
            del self._counts[row]

    def reset_many(self, physical_rows: Iterable[int]) -> None:
        for row in physical_rows:
            self._counts.pop(row, None)

    def disturbed_rows(self, minimum: float = 0.0) -> np.ndarray:
        """Physical rows with total accumulated disturbance > ``minimum``."""
        rows = [row for row in sorted(self._counts)
                if self.get_total(row) > minimum]
        return np.asarray(rows, dtype=np.intp)

    def total(self) -> float:
        """Sum of all accumulated disturbance (diagnostics)."""
        return float(sum(self.get_total(row)
                         for row in sorted(self._counts)))

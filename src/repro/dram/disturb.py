"""Per-row, per-side disturbance accounting.

Every activation of a wordline disturbs the physically adjacent rows
*within the same subarray* (wordline coupling does not cross the
sense-amplifier stripes — which is precisely what the paper's subarray
reverse engineering exploits).  Disturbance accumulates per victim row
until the row's charge is restored — by its own activation, by a periodic
refresh, or by a TRR victim refresh — at which point the counter resets.

Disturbance is tracked separately for the two sides of each victim
(aggressors physically *below* vs *above*), because the data-pattern
coupling a cell experiences depends on the aggressor's stored bit on each
side: a victim cell is disturbed effectively only by aggressor cells whose
value differs from its own.  Double-sided hammering therefore delivers
both sides' disturbance; single-sided hammering only one — reproducing the
single-/double-sided asymmetry the paper's methodology relies on.

Distance-2 disturbance (a much weaker, non-adjacent coupling) is folded
into the same side bucket and evaluated against the distance-1
neighbour's data; at ``blast_weight_2`` ≈ 4% of the adjacent weight, the
approximation is far below measurement noise.

The tracker stores a dense (rows, 2) float array per bank: 256 KiB for a
16,384-row bank, allocated lazily only for banks an experiment touches.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.dram.calibration import DeviceProfile
from repro.dram.subarrays import SubarrayLayout

#: Index of the bucket fed by aggressors at lower physical addresses.
SIDE_BELOW = 0
#: Index of the bucket fed by aggressors at higher physical addresses.
SIDE_ABOVE = 1
#: Index of the direct bucket: disturbance that couples into the cell
#: regardless of in-die neighbour data — used for hypothesised
#: cross-channel (inter-die) coupling, the paper's future work 3.
SIDE_DIRECT = 2


class DisturbanceTracker:
    """Accumulated neighbour-activation disturbance for one bank."""

    def __init__(self, rows: int, layout: SubarrayLayout,
                 profile: DeviceProfile) -> None:
        self._layout = layout
        self._profile = profile
        self._counts = np.zeros((rows, 3), dtype=np.float64)

    # ------------------------------------------------------------------
    def contributions(self, physical_row: int,
                      count: float = 1.0) -> List[Tuple[int, int, float]]:
        """(victim row, side, disturbance) triples for ``count`` ACTs.

        Distance-1 neighbours receive ``blast_weight_1`` per activation,
        distance-2 neighbours ``blast_weight_2``; rows across a subarray
        boundary (or outside the bank) receive nothing.
        """
        profile = self._profile
        layout = self._layout
        rows = self._counts.shape[0]
        triples: List[Tuple[int, int, float]] = []
        for distance, weight in ((1, profile.blast_weight_1),
                                 (2, profile.blast_weight_2)):
            if weight <= 0.0:
                continue
            for victim, side in ((physical_row - distance, SIDE_ABOVE),
                                 (physical_row + distance, SIDE_BELOW)):
                if not 0 <= victim < rows:
                    continue
                if not layout.same_subarray(physical_row, victim):
                    continue
                triples.append((victim, side, weight * count))
        return triples

    def record_activation(self, physical_row: int, count: float = 1.0) -> None:
        """Disturb the neighbours of ``physical_row`` by ``count`` ACTs.

        Does *not* reset the aggressor's own counters — charge restoration
        is the bank's job (it must also reset the refresh timestamp).
        """
        for victim, side, amount in self.contributions(physical_row, count):
            self._counts[victim, side] += amount

    def add(self, physical_row: int, side: int, amount: float) -> None:
        """Directly add disturbance to one row side (bulk fast path)."""
        self._counts[physical_row, side] += amount

    def get_sides(self, physical_row: int) -> Tuple[float, float]:
        """(from below, from above) accumulated disturbance of one row."""
        below, above = self._counts[physical_row, :2]
        return float(below), float(above)

    def get_direct(self, physical_row: int) -> float:
        """Accumulated data-independent (inter-die) disturbance."""
        return float(self._counts[physical_row, SIDE_DIRECT])

    def add_direct(self, physical_row: int, amount: float) -> None:
        """Add cross-channel disturbance to one row."""
        self._counts[physical_row, SIDE_DIRECT] += amount

    def get_total(self, physical_row: int) -> float:
        """Total accumulated disturbance of one row (guard checks)."""
        return float(self._counts[physical_row].sum())

    def reset(self, physical_row: int) -> None:
        """Charge restored: the row's accumulated disturbance vanishes."""
        self._counts[physical_row, :] = 0.0

    def reset_range(self, start: int, end: int) -> None:
        """Reset a contiguous physical-row range (periodic refresh)."""
        self._counts[start:end, :] = 0.0

    def reset_many(self, physical_rows: Iterable[int]) -> None:
        for row in physical_rows:
            self._counts[row, :] = 0.0

    def disturbed_rows(self, minimum: float = 0.0) -> np.ndarray:
        """Physical rows with total accumulated disturbance > ``minimum``."""
        return np.nonzero(self._counts.sum(axis=1) > minimum)[0]

    def total(self) -> float:
        """Sum of all accumulated disturbance (diagnostics)."""
        return float(self._counts.sum())

"""On-die ECC: a single-error-correcting Hamming code over 64-bit words.

HBM2 devices ship with on-die ECC that silently corrects single-bit errors
per ECC word on read — which would mask most RowHammer bitflips and
corrupt a characterization study.  The paper therefore disables it via a
mode register (§3.1).  We implement the codec honestly so that the
enable/disable step has real behavioural consequences (ablation A3).

The code is systematic: a 72-bit codeword is 64 data bits followed by
8 parity bits.  Each codeword position is assigned a distinct non-zero
8-bit column of the parity-check matrix H (parity positions get unit
vectors), so the syndrome of a single-bit error equals that bit's column,
identifying it uniquely.  Double-bit errors produce a non-column syndrome
and are left uncorrected (this is SEC, not SECDED: miscorrection of some
aliased multi-bit errors is possible, as in real on-die ECC).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.dram.cellmodel import ECC_PARITY_BITS, ECC_WORD_BITS
from repro.errors import ConfigurationError


def _build_code() -> Tuple[np.ndarray, Dict[int, int]]:
    """Construct H columns for all 72 positions and the syndrome map.

    Returns:
        columns: (72,) uint8 array, ``columns[i]`` is position i's 8-bit
            H column.  Positions 0..63 are data bits, 64..71 parity bits.
        syndrome_to_position: maps a non-zero syndrome byte to the single
            position whose flip produces it.
    """
    columns = np.zeros(ECC_WORD_BITS + ECC_PARITY_BITS, dtype=np.uint8)
    # Parity positions get unit vectors so the code is systematic.
    for parity_index in range(ECC_PARITY_BITS):
        columns[ECC_WORD_BITS + parity_index] = 1 << parity_index
    # Data positions get the remaining distinct non-zero bytes, skipping
    # powers of two (taken by parity) — 255 - 8 = 247 >= 64 available.
    data_index = 0
    for value in range(3, 256):
        if value & (value - 1) == 0:  # power of two -> parity column
            continue
        if data_index >= ECC_WORD_BITS:
            break
        columns[data_index] = value
        data_index += 1
    if data_index != ECC_WORD_BITS:
        raise ConfigurationError("could not assign distinct H columns")
    syndrome_to_position = {
        int(columns[position]): position for position in range(len(columns))
    }
    return columns, syndrome_to_position


_COLUMNS, _SYNDROME_TO_POSITION = _build_code()

#: (72, 8) 0/1 matrix: row i is the bit-expansion of position i's column.
_H_BITS = ((_COLUMNS[:, None] >> np.arange(ECC_PARITY_BITS)[None, :]) & 1
           ).astype(np.uint8)


def encode_words(data_bits: np.ndarray) -> np.ndarray:
    """Compute parity bits for data bits.

    Args:
        data_bits: 0/1 uint8 array whose length is a multiple of 64;
            reshaped internally to (words, 64).

    Returns:
        0/1 uint8 array of shape (words * 8,): parity bits per word.
    """
    if data_bits.size % ECC_WORD_BITS != 0:
        raise ConfigurationError(
            f"data length {data_bits.size} not a multiple of {ECC_WORD_BITS}")
    words = data_bits.reshape(-1, ECC_WORD_BITS)
    # Syndrome contribution of the data half must be cancelled by parity:
    # parity = sum(data_i * H_col_i) mod 2 (unit parity columns).
    parity = (words @ _H_BITS[:ECC_WORD_BITS]) & 1
    return parity.astype(np.uint8).reshape(-1)


def decode_words(data_bits: np.ndarray,
                 parity_bits: np.ndarray) -> Tuple[np.ndarray, int, int]:
    """Correct single-bit errors per 64-bit word.

    Args:
        data_bits: 0/1 uint8 array, multiple of 64 long (possibly corrupted).
        parity_bits: 0/1 uint8 array, 8 bits per word (possibly corrupted).

    Returns:
        (corrected_data_bits, corrected_words, uncorrectable_words): the
        corrected copy of the data, how many words had a single-bit error
        fixed, and how many had a syndrome matching no single position.
    """
    if data_bits.size % ECC_WORD_BITS != 0:
        raise ConfigurationError(
            f"data length {data_bits.size} not a multiple of {ECC_WORD_BITS}")
    word_count = data_bits.size // ECC_WORD_BITS
    if parity_bits.size != word_count * ECC_PARITY_BITS:
        raise ConfigurationError(
            f"parity length {parity_bits.size} does not match "
            f"{word_count} words")
    words = data_bits.reshape(word_count, ECC_WORD_BITS).copy()
    parity = parity_bits.reshape(word_count, ECC_PARITY_BITS)

    data_syndrome = (words @ _H_BITS[:ECC_WORD_BITS]) & 1
    syndrome_bits = (data_syndrome ^ parity).astype(np.uint8)
    syndrome_bytes = (syndrome_bits * (1 << np.arange(ECC_PARITY_BITS))).sum(axis=1)

    corrected = 0
    uncorrectable = 0
    for word_index in np.nonzero(syndrome_bytes)[0]:
        position = _SYNDROME_TO_POSITION.get(int(syndrome_bytes[word_index]))
        if position is None:
            uncorrectable += 1
            continue
        if position < ECC_WORD_BITS:
            words[word_index, position] ^= 1
        # A parity-bit error needs no data correction.
        corrected += 1
    return words.reshape(-1), corrected, uncorrectable

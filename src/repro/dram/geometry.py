"""Device geometry, for any supported DRAM family.

The defaults describe the paper's chip (§3): a 4 GiB HBM2 stack,
8 channels, 2 pseudo channels per channel, 16 banks per pseudo channel,
16,384 rows per bank, 32 columns per row.  One column therefore holds
32 bytes and a row holds 1 KiB (8,192 bits), which is the granularity
the BER metric is computed over.

Other device families reuse the same vocabulary
(:mod:`repro.dram.profiles`): a DDR4/DDR5 module has no pseudo
channels (``pseudo_channels=1``) or models its two sub-channels as
pseudo channels, and "channel" means a controller channel rather than
a stack channel — the dimensions are what the memory controller sees
either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, ConfigurationError


@dataclass(frozen=True)
class Geometry:
    """Dimensions of one DRAM device as seen by the memory controller.

    Attributes:
        channels: independent channels on the device.
        pseudo_channels: pseudo channels (HBM2) or sub-channels (DDR5)
            per channel; 1 for families without the concept.
        banks: banks per pseudo channel.
        rows: rows per bank.
        columns: columns per row.
        column_bytes: bytes transferred per column access.
        channels_per_die: channels co-located on one DRAM die.
            The paper observes HBM2 channels cluster in groups of two by
            RowHammer vulnerability and hypothesizes one die per group;
            planar families use 1.
    """

    channels: int = 8
    pseudo_channels: int = 2
    banks: int = 16
    rows: int = 16384
    columns: int = 32
    column_bytes: int = 32
    channels_per_die: int = 2

    def __post_init__(self) -> None:
        for name in ("channels", "pseudo_channels", "banks", "rows",
                     "columns", "column_bytes", "channels_per_die"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"geometry field {name!r} must be a positive int, got {value!r}")
        if self.channels % self.channels_per_die != 0:
            raise ConfigurationError(
                f"channels ({self.channels}) must be divisible by "
                f"channels_per_die ({self.channels_per_die})")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """Bytes in one DRAM row (the BER denominator is 8x this)."""
        return self.columns * self.column_bytes

    @property
    def row_bits(self) -> int:
        """Bits in one DRAM row."""
        return self.row_bytes * 8

    @property
    def bank_bytes(self) -> int:
        """Bytes in one bank."""
        return self.rows * self.row_bytes

    @property
    def stack_bytes(self) -> int:
        """Total stack capacity in bytes."""
        return self.channels * self.pseudo_channels * self.banks * self.bank_bytes

    @property
    def dies(self) -> int:
        """Number of stacked DRAM dies."""
        return self.channels // self.channels_per_die

    @property
    def total_banks(self) -> int:
        """Banks across the whole stack (256 for the paper's chip)."""
        return self.channels * self.pseudo_channels * self.banks

    def die_of_channel(self, channel: int) -> int:
        """Die index hosting ``channel`` (channels are grouped per die)."""
        self.check_channel(channel)
        return channel // self.channels_per_die

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def check_channel(self, channel: int) -> None:
        if not 0 <= channel < self.channels:
            raise AddressError(
                f"channel {channel} out of range [0, {self.channels})")

    def check_pseudo_channel(self, pseudo_channel: int) -> None:
        if not 0 <= pseudo_channel < self.pseudo_channels:
            raise AddressError(
                f"pseudo channel {pseudo_channel} out of range "
                f"[0, {self.pseudo_channels})")

    def check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks:
            raise AddressError(f"bank {bank} out of range [0, {self.banks})")

    def check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise AddressError(f"row {row} out of range [0, {self.rows})")

    def check_column(self, column: int) -> None:
        if not 0 <= column < self.columns:
            raise AddressError(
                f"column {column} out of range [0, {self.columns})")


#: Back-compat alias from before the device-family refactor, when the
#: model was HBM2-only.  New code should say :class:`Geometry`.
HBM2Geometry = Geometry

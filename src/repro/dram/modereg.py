"""HBM2 mode registers relevant to the paper's methodology.

The paper (§3.1) disables on-die ECC "by setting the corresponding HBM2
mode register bit to zero" and notes the HBM2 standard's documented TRR
*mode* (distinct from the undisclosed TRR the paper uncovers).  We model
the small slice of mode-register state those steps touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError

#: Mode register / bit assignments (simplified from JESD235).
MR_ECC = 4          #: mode register holding the ECC enable bit
ECC_ENABLE_BIT = 0  #: bit position of ECC enable within MR_ECC

MR_TRR = 15         #: mode register holding documented-TRR mode controls
TRR_MODE_BIT = 0    #: documented TRR mode enable
TRR_BANK_SHIFT = 4  #: bits [7:4] select the bank under documented TRR

#: Registers holding the documented-TRR target row address (the HBM2
#: standard splits multi-bit fields across mode registers; we model the
#: row as low/high bytes in two registers).
MR_TRR_ROW_LOW = 13
MR_TRR_ROW_HIGH = 14

_NUM_MODE_REGISTERS = 16


@dataclass
class ModeRegisters:
    """Mode register file for one HBM2 channel.

    Real HBM2 has per-channel mode registers; experiments in the paper
    configure every channel identically, so the device exposes one file
    per channel and a convenience broadcast setter.
    """

    values: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # ECC is enabled by default on HBM2 devices; the methodology must
        # explicitly turn it off, exactly as the paper does.
        self.values.setdefault(MR_ECC, 1 << ECC_ENABLE_BIT)
        self.values.setdefault(MR_TRR, 0)

    def read(self, register: int) -> int:
        self._check_register(register)
        return self.values.get(register, 0)

    def write(self, register: int, value: int) -> None:
        self._check_register(register)
        if not 0 <= value <= 0xFF:
            raise ConfigurationError(
                f"mode register value must fit 8 bits, got {value:#x}")
        self.values[register] = value

    @staticmethod
    def _check_register(register: int) -> None:
        if not 0 <= register < _NUM_MODE_REGISTERS:
            raise ConfigurationError(
                f"mode register {register} out of range "
                f"[0, {_NUM_MODE_REGISTERS})")

    # -- convenience views ------------------------------------------------
    @property
    def ecc_enabled(self) -> bool:
        """Whether on-die ECC corrects read data on this channel."""
        return bool(self.read(MR_ECC) & (1 << ECC_ENABLE_BIT))

    def set_ecc_enabled(self, enabled: bool) -> None:
        value = self.read(MR_ECC)
        if enabled:
            value |= 1 << ECC_ENABLE_BIT
        else:
            value &= ~(1 << ECC_ENABLE_BIT)
        self.write(MR_ECC, value)

    @property
    def documented_trr_mode(self) -> bool:
        """The HBM2-standard TRR *mode* (not the undisclosed mechanism).

        In this mode the memory controller *tells* the device which row
        it considers an aggressor (via :meth:`set_documented_trr_target`)
        and subsequent REF commands preventively refresh that row's
        neighbours — §2's footnote 1 distinguishes this well-defined
        mode from the proprietary mechanism the paper uncovers.
        """
        return bool(self.read(MR_TRR) & (1 << TRR_MODE_BIT))

    def set_documented_trr_mode(self, enabled: bool) -> None:
        value = self.read(MR_TRR)
        if enabled:
            value |= 1 << TRR_MODE_BIT
        else:
            value &= ~(1 << TRR_MODE_BIT)
        self.write(MR_TRR, value)

    def set_documented_trr_target(self, bank: int, row: int) -> None:
        """Program the documented-TRR aggressor (bank + row address)."""
        if not 0 <= bank <= 0xF:
            raise ConfigurationError(
                f"documented-TRR bank must fit 4 bits, got {bank}")
        if not 0 <= row <= 0xFFFF:
            raise ConfigurationError(
                f"documented-TRR row must fit 16 bits, got {row}")
        value = self.read(MR_TRR) & ~(0xF << TRR_BANK_SHIFT)
        self.write(MR_TRR, value | (bank << TRR_BANK_SHIFT))
        self.write(MR_TRR_ROW_LOW, row & 0xFF)
        self.write(MR_TRR_ROW_HIGH, (row >> 8) & 0xFF)

    @property
    def documented_trr_target(self) -> tuple:
        """(bank, row) the controller flagged as the aggressor."""
        bank = (self.read(MR_TRR) >> TRR_BANK_SHIFT) & 0xF
        row = (self.read(MR_TRR_ROW_HIGH) << 8) | self.read(MR_TRR_ROW_LOW)
        return bank, row

"""Device-family profiles: one bundle per supported DRAM family.

The paper characterizes one HBM2 stack, but its methodology — BER /
HC_first sweeps, row-mapping reverse engineering, the §5 U-TRR TRR
discovery — is device-generic.  A :class:`DeviceProfile` bundles
everything the infrastructure needs to target a family:

* :class:`~repro.dram.geometry.Geometry` — dimensions as the memory
  controller sees them;
* :class:`~repro.dram.timing.TimingParameters` (and through it the
  static verifier's ``ConstraintTable``) — per-family tRCD/tFAW/tREFI/
  tREFW enforcement;
* a :class:`~repro.dram.trr.TrrConfig` TRR policy — sampler strategy,
  firing cadence, and blast radius (the U-TRR taxonomy: the paper's
  HBM2 chip samples the last ACT and fires every 17th REF; DDR4
  vendors ship counter tables; DDR5 vendors probabilistic samplers);
* row-address-mapping defaults (the swizzle the reverse-engineering
  methodology must rediscover);
* a :class:`~repro.dram.calibration.CalibrationProfile` — the hidden
  physical ground truth the blind pipeline measures.

Profiles live in an insertion-ordered module registry
(:func:`register_profile` / :func:`get_profile` / :func:`list_profiles`)
shipping ``hbm2`` (the default — byte-identical to the pre-refactor
model, held by construction: its fields *are* the former hardwired
defaults), ``ddr4``, and ``ddr5``.

Profile :meth:`~DeviceProfile.identity` feeds the engine's program-cache
digest and the campaign/fleet fingerprints so cached programs and
checkpoints never alias across families, even families that happen to
share timing parameters.  This module is therefore part of the
fingerprinted surface and is covered by the determinism lint
(``repro lint source``): registry iteration order is insertion order,
never set order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dram.calibration import (CalibrationProfile, ddr4_calibration,
                                    ddr5_calibration, default_profile)
from repro.dram.geometry import Geometry
from repro.dram.timing import TimingParameters
from repro.dram.trr import TrrConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceProfile:
    """Everything needed to build and verify one device family.

    Attributes:
        name: registry key (``hbm2``/``ddr4``/``ddr5``/custom).
        family: marketing family name for display (``HBM2``, ``DDR4``…).
        description: one-line summary shown by ``repro devices list``.
        geometry: controller-visible dimensions.
        timing: per-family timing parameters; the verifier's
            ``ConstraintTable`` derives from these.
        trr: the family's hidden TRR policy.
        calibration: physical-variation ground truth (per-channel tuples
            sized to ``geometry.channels``).
        mapper_control_bit / mapper_swizzle_mask: default row-address
            swizzle (see :class:`~repro.dram.address.RowAddressMapper`).
    """

    name: str
    family: str
    description: str
    geometry: Geometry = field(default_factory=Geometry)
    timing: TimingParameters = field(default_factory=TimingParameters)
    trr: TrrConfig = field(default_factory=TrrConfig)
    calibration: CalibrationProfile = field(default_factory=default_profile)
    mapper_control_bit: int = 0x8
    mapper_swizzle_mask: int = 0x6

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("profile name must be non-empty")
        if len(self.calibration.channel_scales) != self.geometry.channels:
            raise ConfigurationError(
                f"profile {self.name!r}: calibration has "
                f"{len(self.calibration.channel_scales)} channel scales "
                f"for a {self.geometry.channels}-channel geometry")

    def identity(self) -> str:
        """Stable identity string for cache digests and fingerprints.

        Covers name, geometry, and TRR policy — the dimensions along
        which two profiles sharing timing parameters must still never
        alias each other's compiled programs or checkpoints.  (Timing
        is digested separately wherever this string is consumed.)
        """
        return f"{self.name}|{self.geometry!r}|{self.trr!r}"


# ----------------------------------------------------------------------
# Registry (insertion-ordered; iteration order is registration order)
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, DeviceProfile] = {}


def register_profile(profile: DeviceProfile, *,
                     replace: bool = False) -> DeviceProfile:
    """Add ``profile`` to the registry under its name.

    Re-registering an existing name requires ``replace=True`` so typos
    cannot silently shadow a shipped family.
    """
    if profile.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"device profile {profile.name!r} already registered")
    _REGISTRY[profile.name] = profile
    return profile


def get_profile(name: str) -> DeviceProfile:
    """Look up a registered profile by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown device profile {name!r} (known: {known})") from None


def list_profiles() -> Tuple[str, ...]:
    """Registered profile names, in registration order."""
    return tuple(_REGISTRY)


def resolve_profile(name: Optional[str]) -> Optional[DeviceProfile]:
    """``get_profile`` that passes ``None`` through (no profile chosen)."""
    if name is None:
        return None
    return get_profile(name)


# ----------------------------------------------------------------------
# Shipped families
# ----------------------------------------------------------------------

#: The paper's chip.  Every field is the former hardwired default, so a
#: board built from this profile is byte-identical to the pre-refactor
#: model — held by construction, and asserted by the profile-matrix
#: regression tests against recorded seed fingerprints.
HBM2 = register_profile(DeviceProfile(
    name="hbm2",
    family="HBM2",
    description="The paper's 4 GiB HBM2 stack: 8 channels x 2 pseudo "
                "channels, last-ACT TRR sampler firing every 17th REF.",
))

#: A two-channel DDR4-2400 module.  JESD79-4 grade timings (rounded);
#: counter-table TRR in the U-TRR "Vendor A" style, firing every 9th
#: REF — close enough to HBM2's cadence to exercise the methodology,
#: different enough that ``infer_period`` must tell them apart.
DDR4 = register_profile(DeviceProfile(
    name="ddr4",
    family="DDR4",
    description="Two-channel DDR4-2400 module: planar dies, "
                "counter-table TRR sampler firing every 9th REF.",
    geometry=Geometry(channels=2, pseudo_channels=1, banks=16,
                      rows=65536, columns=128, column_bytes=8,
                      channels_per_die=1),
    timing=TimingParameters(frequency_hz=1200e6, t_rcd=13.75, t_ras=32.0,
                            t_rp=13.75, t_rrd=5.3, t_faw=21.0, t_ccd=5.0,
                            t_wr=15.0, t_rfc=350.0, t_refi=7800.0,
                            t_refw=64_000_000.0),
    trr=TrrConfig(refresh_period=9, sampler="counter", table_size=4),
    calibration=ddr4_calibration(),
))

#: A two-channel DDR5-4800 module (two sub-channels modelled as pseudo
#: channels).  Probabilistic TRR in the U-TRR "Vendor B" style: no
#: periodic signature for ``infer_period`` to find.
DDR5 = register_profile(DeviceProfile(
    name="ddr5",
    family="DDR5",
    description="Two-channel DDR5-4800 module: 2 sub-channels, "
                "probabilistic TRR sampler (p=1/8) firing every 4th REF.",
    geometry=Geometry(channels=2, pseudo_channels=2, banks=32,
                      rows=65536, columns=64, column_bytes=16,
                      channels_per_die=1),
    timing=TimingParameters(frequency_hz=2400e6, t_rcd=16.0, t_ras=32.0,
                            t_rp=16.0, t_rrd=5.0, t_faw=13.3, t_ccd=3.3,
                            t_wr=30.0, t_rfc=295.0, t_refi=3900.0,
                            t_refw=32_000_000.0),
    trr=TrrConfig(refresh_period=4, sampler="probabilistic",
                  sample_probability=0.125),
    calibration=ddr5_calibration(),
))

"""Subarray layout of a DRAM bank.

A DRAM bank is built from subarrays — tiles of rows sharing one set of
sense amplifiers.  The paper reverse-engineers the tested chip's layout by
single-sided hammering (footnote 3): an aggressor at a subarray edge has a
physically adjacent victim on only one side, because wordlines do not
couple across the sense-amplifier stripe.  The paper finds subarrays of
**832 or 768 rows**, and that the **last** subarray (832 rows) is far less
vulnerable than the rest (Fig. 5, "SA Z").

The device model needs the layout for two behaviours:

* RowHammer disturbance does not propagate across subarray boundaries
  (which is what makes the reverse-engineering methodology work), and
* per-row vulnerability depends on the row's position inside its subarray
  (BER peaks mid-subarray, Fig. 5).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


class SubarrayLayout:
    """Partition of a bank's physical rows into subarrays."""

    def __init__(self, sizes: Sequence[int]) -> None:
        if not sizes:
            raise ConfigurationError("subarray layout needs at least one size")
        for size in sizes:
            if not isinstance(size, int) or size <= 0:
                raise ConfigurationError(
                    f"subarray sizes must be positive ints, got {size!r}")
        self._sizes: Tuple[int, ...] = tuple(sizes)
        self._starts: List[int] = []
        start = 0
        for size in self._sizes:
            self._starts.append(start)
            start += size
        self._total_rows = start

    @classmethod
    def paper_default(cls, rows: int = 16384) -> "SubarrayLayout":
        """The layout reproducing the paper's findings for a 16K-row bank.

        Sixteen 832-row subarrays and four 768-row subarrays (16*832 +
        4*768 = 16384), with the 768-row subarrays interspersed and both
        the first and last subarrays at 832 rows — consistent with
        Fig. 5's "SA X" (832), "SA Y" (768) and the final "SA Z" (832).
        """
        if rows == 16384:
            sizes = [768 if index % 5 == 2 else 832 for index in range(20)]
            return cls(sizes)
        # For miniature test geometries, tile 64-row subarrays behind a
        # leading 48-row one.  Starting with 48 keeps every boundary off
        # the power-of-two grid — true of the real 832/768 layout too,
        # and load-bearing for the mapping reverse engineering (a
        # boundary aligned with an XOR-block edge hides the only rows
        # that distinguish block-permuting mappings).
        sizes = []
        remaining = rows
        index = 0
        while remaining > 0:
            size = 48 if index == 0 else 64
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
            index += 1
        return cls(sizes)

    # ------------------------------------------------------------------
    @property
    def total_rows(self) -> int:
        return self._total_rows

    @property
    def sizes(self) -> Tuple[int, ...]:
        return self._sizes

    @property
    def count(self) -> int:
        return len(self._sizes)

    def subarray_of(self, row: int) -> int:
        """Index of the subarray containing physical ``row``."""
        self._check_row(row)
        return bisect_right(self._starts, row) - 1

    def bounds(self, index: int) -> Tuple[int, int]:
        """Half-open physical row range ``[start, end)`` of a subarray."""
        if not 0 <= index < len(self._sizes):
            raise ConfigurationError(
                f"subarray index {index} out of range [0, {len(self._sizes)})")
        start = self._starts[index]
        return start, start + self._sizes[index]

    def boundaries(self) -> List[int]:
        """Physical rows that begin each subarray (sorted, starts with 0)."""
        return list(self._starts)

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """Whether two physical rows share sense amplifiers.

        Disturbance (and therefore RowHammer) only propagates between
        rows for which this is true.
        """
        return self.subarray_of(row_a) == self.subarray_of(row_b)

    def position_fraction(self, row: int) -> float:
        """Position of ``row`` within its subarray, in [0, 1].

        0 and 1 are the subarray edges (next to the sense-amp stripes);
        0.5 is the middle, where the paper observes the highest BER.
        """
        index = self.subarray_of(row)
        start, end = self.bounds(index)
        size = end - start
        if size == 1:
            return 0.5
        return (row - start) / (size - 1)

    def is_last_subarray(self, row: int) -> bool:
        """Whether ``row`` lies in the bank's final subarray.

        The paper observes the last subarray (the last 832 rows) exhibits
        substantially fewer RowHammer bitflips (Fig. 5, observation O9).
        """
        return self.subarray_of(row) == len(self._sizes) - 1

    def edge_rows(self) -> List[int]:
        """All physical rows adjacent to a subarray boundary.

        These are the rows a single-sided reverse-engineering scan flags:
        hammering them flips cells on only one side.
        """
        rows: List[int] = []
        for index in range(len(self._sizes)):
            start, end = self.bounds(index)
            rows.append(start)
            if end - 1 != start:
                rows.append(end - 1)
        return rows

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._total_rows:
            raise ConfigurationError(
                f"physical row {row} out of range [0, {self._total_rows})")

"""HBM2 command timing parameters and per-bank timing enforcement.

The paper's infrastructure controls command timing at the 1.66 ns
granularity of the 600 MHz HBM2 interface clock.  The interpreter in
:mod:`repro.bender.interpreter` schedules commands at the earliest cycle
the constraints allow, so simulated experiment durations are meaningful —
in particular, 256K double-sided hammers land at ≈24.7 ms, under the 27 ms
retention-interference budget the paper enforces (§3.1).

All parameters are stored in nanoseconds and converted once to integer
cycle counts for the interface frequency in use.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from repro.errors import ConfigurationError, TimingViolationError
from repro.units import cycles_for_time


@dataclass(frozen=True)
class TimingParameters:
    """Minimum-delay constraints, in nanoseconds.

    Values follow JESD235 HBM2 grade timings (rounded); they can be
    overridden per experiment (e.g. the paper's infrastructure can issue
    commands faster than nominal to probe guardbands).

    Attributes:
        frequency_hz: interface clock frequency (600 MHz in the paper).
        t_rcd: ACT -> RD/WR delay (row to column).
        t_ras: ACT -> PRE minimum row-open time.
        t_rp: PRE -> ACT delay (precharge).
        t_rrd: ACT -> ACT delay to *different* banks.
        t_faw: rolling window in which at most four ACTs may issue to one
            pseudo channel.  The nominal value sits inside 3 x tRRD at the
            paper's clock, so it never delays JEDEC-paced streams; it
            exists so overridden (guardband-probing) parameters and the
            static verifier share one constraint definition.
        t_ccd: RD/WR -> RD/WR column-to-column delay.
        t_wr: write recovery (last WR data -> PRE).
        t_rfc: REF -> next command delay (refresh cycle time).
        t_refi: nominal interval between periodic REFs (3.9 us).
        t_refw: refresh window in which every row is refreshed (32 ms).
    """

    frequency_hz: float = 600e6
    t_rcd: float = 14.0
    t_ras: float = 33.0
    t_rp: float = 15.0
    t_rrd: float = 4.0
    t_faw: float = 14.0
    t_ccd: float = 3.3
    t_wr: float = 15.0
    t_rfc: float = 260.0
    t_refi: float = 3900.0
    t_refw: float = 32_000_000.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency_hz must be positive, got {self.frequency_hz}")
        for name in ("t_rcd", "t_ras", "t_rp", "t_rrd", "t_faw", "t_ccd",
                     "t_wr", "t_rfc", "t_refi", "t_refw"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # Cycle conversions (cached per instance via properties)
    # ------------------------------------------------------------------
    def cycles(self, nanoseconds: float) -> int:
        """Whole interface cycles covering ``nanoseconds``."""
        return cycles_for_time(nanoseconds * 1e-9, self.frequency_hz)

    @property
    def clock_period_ns(self) -> float:
        return 1e9 / self.frequency_hz

    @property
    def rcd_cycles(self) -> int:
        return self.cycles(self.t_rcd)

    @property
    def ras_cycles(self) -> int:
        return self.cycles(self.t_ras)

    @property
    def rp_cycles(self) -> int:
        return self.cycles(self.t_rp)

    @property
    def rrd_cycles(self) -> int:
        return self.cycles(self.t_rrd)

    @property
    def faw_cycles(self) -> int:
        return self.cycles(self.t_faw)

    @property
    def ccd_cycles(self) -> int:
        return self.cycles(self.t_ccd)

    @property
    def wr_cycles(self) -> int:
        return self.cycles(self.t_wr)

    @property
    def rfc_cycles(self) -> int:
        return self.cycles(self.t_rfc)

    @property
    def refi_cycles(self) -> int:
        return self.cycles(self.t_refi)

    @property
    def refw_cycles(self) -> int:
        return self.cycles(self.t_refw)

    @property
    def rc_cycles(self) -> int:
        """ACT -> ACT same bank: tRAS + tRP (the hammer period)."""
        return self.ras_cycles + self.rp_cycles

    def constraints(self) -> "ConstraintTable":
        """The integer-cycle constraint table for this parameter set.

        The single source of timing truth: the runtime
        :class:`TimingChecker` and the static verifier in
        :mod:`repro.verify.program` both consume this table, so the two
        cannot disagree about what "legal" means.
        """
        return ConstraintTable(
            act_to_act_same_bank=self.rc_cycles,
            act_to_act_same_pc=self.rrd_cycles,
            four_act_window=self.faw_cycles,
            act_to_pre=self.ras_cycles,
            pre_to_act=self.rp_cycles,
            act_to_rdwr=self.rcd_cycles,
            rdwr_to_rdwr=self.ccd_cycles,
            write_to_pre=self.wr_cycles,
            ref_to_any=self.rfc_cycles,
            refresh_interval=self.refi_cycles,
            refresh_window=self.refw_cycles,
        )

    def hammer_duration_cycles(self, hammer_count: int) -> int:
        """Cycles for ``hammer_count`` double-sided hammers.

        One hammer = one ACT/PRE cycle on *each* of the two aggressors,
        i.e. 2 x tRC.
        """
        if hammer_count < 0:
            raise ConfigurationError("hammer_count must be >= 0")
        return 2 * hammer_count * self.rc_cycles

    def seconds(self, cycles: int) -> float:
        """Wall-clock seconds for a cycle count at this frequency."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class ConstraintTable:
    """Minimum-delay constraints in integer interface cycles.

    Field names describe the command pair each constraint separates; the
    canonical JEDEC names (used in diagnostics) live in
    :data:`CONSTRAINT_NAMES`.
    """

    #: tRC: ACT -> ACT, same bank.
    act_to_act_same_bank: int
    #: tRRD: ACT -> ACT, different banks of one pseudo channel.
    act_to_act_same_pc: int
    #: tFAW: window that at most four ACTs per pseudo channel may share.
    four_act_window: int
    #: tRAS: ACT -> PRE, same bank.
    act_to_pre: int
    #: tRP: PRE -> ACT, same bank.
    pre_to_act: int
    #: tRCD: ACT -> RD/WR, same bank.
    act_to_rdwr: int
    #: tCCD: RD/WR -> RD/WR, same bank.
    rdwr_to_rdwr: int
    #: tWR: WR -> PRE, same bank.
    write_to_pre: int
    #: tRFC: REF -> any command, same pseudo channel.
    ref_to_any: int
    #: tREFI: nominal REF cadence (advisory; not a hard delay).
    refresh_interval: int
    #: tREFW: window within which every row must be refreshed.
    refresh_window: int


#: JEDEC name of each :class:`ConstraintTable` field, for diagnostics.
CONSTRAINT_NAMES = {
    "act_to_act_same_bank": "tRC",
    "act_to_act_same_pc": "tRRD",
    "four_act_window": "tFAW",
    "act_to_pre": "tRAS",
    "pre_to_act": "tRP",
    "act_to_rdwr": "tRCD",
    "rdwr_to_rdwr": "tCCD",
    "write_to_pre": "tWR",
    "ref_to_any": "tRFC",
    "refresh_interval": "tREFI",
    "refresh_window": "tREFW",
}


class BankTimingState:
    """Earliest-legal-cycle bookkeeping for one bank."""

    __slots__ = ("next_act", "next_pre", "next_rdwr", "act_cycle", "is_open")

    def __init__(self) -> None:
        self.next_act = 0
        self.next_pre = 0
        self.next_rdwr = 0
        self.act_cycle = -1
        self.is_open = False


class TimingChecker:
    """Validates and schedules commands against timing constraints.

    Used in two modes:

    * *scheduling* (``earliest_cycle``): the interpreter asks when a
      command may legally issue and advances its clock to that cycle.
    * *checking* (``record``): the device records the issue and raises
      :class:`~repro.errors.TimingViolationError` on violations, which
      only happens if the interpreter (or a hand-written driver) is buggy.
    """

    def __init__(self, timing: TimingParameters) -> None:
        self._timing = timing
        self._constraints = timing.constraints()
        self._banks: Dict[Tuple[int, int, int], BankTimingState] = {}
        self._pc_next_act: Dict[Tuple[int, int], int] = {}
        self._pc_next_any: Dict[Tuple[int, int], int] = {}
        # Last three ACT cycles per pseudo channel: the fourth ACT of any
        # rolling window may not issue before the first + tFAW.
        self._pc_act_history: Dict[Tuple[int, int], Deque[int]] = {}

    @property
    def constraints(self) -> ConstraintTable:
        """The constraint table this checker enforces."""
        return self._constraints

    def _bank(self, key: Tuple[int, int, int]) -> BankTimingState:
        state = self._banks.get(key)
        if state is None:
            state = BankTimingState()
            self._banks[key] = state
        return state

    # -- scheduling ----------------------------------------------------
    def earliest_activate(self, key: Tuple[int, int, int], now: int) -> int:
        bank = self._bank(key)
        pc = key[:2]
        earliest = max(now, bank.next_act,
                       self._pc_next_act.get(pc, 0),
                       self._pc_next_any.get(pc, 0))
        history = self._pc_act_history.get(pc)
        if history is not None and len(history) == 3:
            earliest = max(earliest,
                           history[0] + self._constraints.four_act_window)
        return earliest

    def earliest_precharge(self, key: Tuple[int, int, int], now: int) -> int:
        bank = self._bank(key)
        return max(now, bank.next_pre, self._pc_next_any.get(key[:2], 0))

    def earliest_rdwr(self, key: Tuple[int, int, int], now: int) -> int:
        bank = self._bank(key)
        return max(now, bank.next_rdwr, self._pc_next_any.get(key[:2], 0))

    def earliest_refresh(self, pc: Tuple[int, int], now: int) -> int:
        # REF requires all banks in the pseudo channel precharged; callers
        # ensure that, we only enforce the channel-level gap here.
        return max(now, self._pc_next_any.get(pc, 0))

    # -- recording -----------------------------------------------------
    def record_activate(self, key: Tuple[int, int, int], cycle: int) -> None:
        table = self._constraints
        bank = self._bank(key)
        legal = self.earliest_activate(key, cycle)
        if cycle < legal:
            raise TimingViolationError(
                f"ACT to bank {key} at cycle {cycle}, earliest legal {legal}")
        bank.act_cycle = cycle
        bank.is_open = True
        bank.next_pre = cycle + table.act_to_pre
        bank.next_rdwr = cycle + table.act_to_rdwr
        bank.next_act = cycle + table.act_to_act_same_bank
        pc = key[:2]
        self._pc_next_act[pc] = cycle + table.act_to_act_same_pc
        history = self._pc_act_history.get(pc)
        if history is None:
            history = deque(maxlen=3)
            self._pc_act_history[pc] = history
        history.append(cycle)

    def record_precharge(self, key: Tuple[int, int, int], cycle: int) -> None:
        table = self._constraints
        bank = self._bank(key)
        legal = self.earliest_precharge(key, cycle)
        if cycle < legal:
            raise TimingViolationError(
                f"PRE to bank {key} at cycle {cycle}, earliest legal {legal}")
        bank.is_open = False
        bank.next_act = max(bank.next_act, cycle + table.pre_to_act)

    def record_rdwr(self, key: Tuple[int, int, int], cycle: int,
                    is_write: bool) -> None:
        table = self._constraints
        bank = self._bank(key)
        legal = self.earliest_rdwr(key, cycle)
        if cycle < legal:
            raise TimingViolationError(
                f"RD/WR to bank {key} at cycle {cycle}, earliest legal {legal}")
        bank.next_rdwr = cycle + table.rdwr_to_rdwr
        if is_write:
            bank.next_pre = max(bank.next_pre, cycle + table.write_to_pre)

    def record_refresh(self, pc: Tuple[int, int], cycle: int) -> None:
        table = self._constraints
        legal = self.earliest_refresh(pc, cycle)
        if cycle < legal:
            raise TimingViolationError(
                f"REF to pc {pc} at cycle {cycle}, earliest legal {legal}")
        self._pc_next_any[pc] = cycle + table.ref_to_any

    def bank_is_open(self, key: Tuple[int, int, int]) -> bool:
        return self._bank(key).is_open

    # -- schedule replay ----------------------------------------------
    # A command stream to one bank is scheduled purely from the *clamped
    # relative* state below: every earliest_* rule is a max() of ``now``
    # and absolute horizons, and ``now`` only moves forward, so a horizon
    # at or behind ``now`` can never bind again — its exact value is
    # irrelevant.  Two moments with equal signatures therefore schedule
    # any identical future same-bank stream identically, cycle offset for
    # cycle offset.  The device's analytic batch paths memoize a recorded
    # schedule under its entry signature and replay it without consulting
    # the checker (see :meth:`HBM2Device.apply_row_writes`).

    def replay_signature(self, key: Tuple[int, int, int],
                         now: int) -> Tuple:
        """Clamped-relative scheduling state of ``key``'s bank at ``now``."""
        bank = self._bank(key)
        pc = key[:2]
        history = self._pc_act_history.get(pc) or ()
        window = self._constraints.four_act_window
        return (
            max(bank.next_act - now, 0),
            max(bank.next_pre - now, 0),
            max(bank.next_rdwr - now, 0),
            bank.is_open,
            max(self._pc_next_act.get(pc, 0) - now, 0),
            max(self._pc_next_any.get(pc, 0) - now, 0),
            tuple(max(stamp + window - now, 0) for stamp in history),
        )

    def capture_offsets(self, key: Tuple[int, int, int],
                        origin: int) -> Tuple:
        """Exit state of ``key``'s bank, relative to ``origin``.

        Everything a same-bank stream writes: the bank horizons, the
        pseudo channel's ACT horizon and ACT history.  ``_pc_next_any``
        is excluded — only REF writes it, and the replayed streams issue
        none.
        """
        bank = self._bank(key)
        pc = key[:2]
        history = self._pc_act_history.get(pc) or ()
        return (
            bank.next_act - origin,
            bank.next_pre - origin,
            bank.next_rdwr - origin,
            bank.act_cycle - origin if bank.act_cycle >= 0 else None,
            bank.is_open,
            self._pc_next_act.get(pc, 0) - origin,
            tuple(stamp - origin for stamp in history),
        )

    def restore_offsets(self, key: Tuple[int, int, int], origin: int,
                        offsets: Tuple) -> None:
        """Install exit state captured by :meth:`capture_offsets`,
        re-anchored at ``origin``."""
        next_act, next_pre, next_rdwr, act_cycle, is_open, pc_act, \
            history = offsets
        bank = self._bank(key)
        bank.next_act = origin + next_act
        bank.next_pre = origin + next_pre
        bank.next_rdwr = origin + next_rdwr
        if act_cycle is not None:
            bank.act_cycle = origin + act_cycle
        bank.is_open = is_open
        pc = key[:2]
        self._pc_next_act[pc] = origin + pc_act
        self._pc_act_history[pc] = deque(
            (origin + stamp for stamp in history), maxlen=3)

    def shift_state(self, keys, delta: int) -> None:
        """Translate the timing state of ``keys`` banks ``delta`` cycles
        into the future.

        Used by the bulk-loop fast path: a steady-state loop's constraint
        horizon advances by exactly the loop period every iteration, so
        skipping N iterations shifts every pending constraint by N
        periods.  Pseudo-channel-level constraints of the affected banks
        shift along.
        """
        if delta < 0:
            raise TimingViolationError(
                f"cannot shift timing state backwards ({delta})")
        pcs = set()
        for key in keys:
            bank = self._bank(key)
            bank.next_act += delta
            bank.next_pre += delta
            bank.next_rdwr += delta
            if bank.act_cycle >= 0:
                bank.act_cycle += delta
            pcs.add(key[:2])
        for pc in pcs:
            if pc in self._pc_next_act:
                self._pc_next_act[pc] += delta
            if pc in self._pc_next_any:
                self._pc_next_any[pc] += delta
            history = self._pc_act_history.get(pc)
            if history:
                self._pc_act_history[pc] = deque(
                    (stamp + delta for stamp in history), maxlen=3)

"""The undisclosed in-DRAM Target Row Refresh (TRR) engine.

The paper's §5 discovers — via the U-TRR retention side channel — that the
tested HBM2 chip ships a proprietary TRR mechanism that refreshes a
sampled aggressor's victim rows **once every 17 periodic REF commands**,
resembling the mechanism U-TRR attributes to "Vendor C" DDR4 chips.

This module implements such an engine, generalized across the sampler
taxonomy *Uncovering In-DRAM RowHammer Protection Mechanisms* (U-TRR)
reports for real DDR4 vendors.  The engine is completely invisible at
the command interface: it observes ACT commands through a per-bank
sampler and, on every Nth REF of a pseudo channel, internally refreshes
the physical neighbours of each sampled row.  The characterization code
in :mod:`repro.core.utrr` must rediscover the mechanism through
read-back data alone.

Three sampler strategies are available via :attr:`TrrConfig.sampler`:

``last``
    The paper's chip (and U-TRR's "Vendor C"): a one-entry table per
    bank holding the **most recent** activated row.  A TRR event
    consumes the sample (the slot is cleared after the refresh).

``counter``
    A per-bank activation-count table of :attr:`TrrConfig.table_size`
    entries (U-TRR's "Vendor A" style).  Each ACT increments its row's
    counter, inserting with count 1 and evicting the minimum-count
    entry (ties: lowest row) when full.  A TRR event targets the
    maximum-count entry (ties: lowest row) and consumes it; the rest of
    the table survives across events.

``probabilistic``
    A one-entry slot per bank that each ACT captures with probability
    :attr:`TrrConfig.sample_probability` (U-TRR's "Vendor B" style).
    Sampling decisions come from a counter-indexed deterministic hash
    of (engine seed, bank, per-bank ACT ordinal) — not a sequential RNG
    stream — so the device's bulk-activation fast path can reproduce a
    run of millions of ACTs exactly by scanning backwards for the last
    winning ordinal.  A TRR event consumes the slot.

Every sampler also implements :meth:`TrrSampler.observe_run`, the bulk
form the device's analytic paths use: semantically identical to
observing each ACT of ``iterations`` repetitions of an event list, in
order, but computed without unrolling (the last-ACT sampler keeps only
final state, the counter sampler short-circuits on its per-bank steady
states — arithmetic count fill once membership stabilizes, early exit
on a churn fixed point — and the probabilistic sampler back-scans the
hash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs import get_metrics

BankKey = Tuple[int, int, int]
#: One ACT as the sampler sees it: (bank key, physical row).
ActEvent = Tuple[BankKey, int]

#: Valid values of :attr:`TrrConfig.sampler`.
SAMPLER_KINDS = ("last", "counter", "probabilistic")


@dataclass(frozen=True)
class TrrConfig:
    """Configuration of the hidden TRR engine.

    Attributes:
        enabled: master switch (the paper's chip has it always on; tests
            and some ablations turn it off).
        refresh_period: a TRR victim refresh fires on every Nth REF
            command of a pseudo channel.  The paper measures N = 17.
        refresh_radius: physical distance around the sampled aggressor
            whose rows get refreshed.
        sampler: sampling strategy — ``last`` (paper default),
            ``counter``, or ``probabilistic`` (see module docstring).
        table_size: entries in the ``counter`` sampler's per-bank table.
        sample_probability: per-ACT capture probability of the
            ``probabilistic`` sampler.
    """

    enabled: bool = True
    refresh_period: int = 17
    refresh_radius: int = 1
    sampler: str = "last"
    table_size: int = 1
    sample_probability: float = 0.125

    def __post_init__(self) -> None:
        if self.refresh_period < 1:
            raise ConfigurationError("refresh_period must be >= 1")
        if self.refresh_radius < 1:
            raise ConfigurationError("refresh_radius must be >= 1")
        if self.sampler not in SAMPLER_KINDS:
            raise ConfigurationError(
                f"sampler must be one of {SAMPLER_KINDS}, "
                f"got {self.sampler!r}")
        if self.table_size < 1:
            raise ConfigurationError("table_size must be >= 1")
        if not 0.0 < self.sample_probability <= 1.0:
            raise ConfigurationError(
                "sample_probability must be in (0, 1]")


class TrrSampler:
    """Strategy interface: which aggressor each bank's sampler holds.

    Implementations must keep :meth:`observe_run` exactly equivalent to
    ``iterations`` in-order repetitions of :meth:`observe` over
    ``events`` — the device's bulk fast paths rely on it for
    byte-identical datasets against interpreted execution.
    """

    def observe(self, bank: BankKey, physical_row: int) -> None:
        raise NotImplementedError

    def observe_run(self, events: Sequence[ActEvent],
                    iterations: int) -> None:
        raise NotImplementedError

    def fire(self) -> List[Tuple[BankKey, int]]:
        """Consume and return the sampled (bank, aggressor) pairs."""
        raise NotImplementedError


class LastActivationSampler(TrrSampler):
    """One slot per bank holding the most recent ACT (paper §5)."""

    def __init__(self) -> None:
        self._sampled: Dict[BankKey, int] = {}

    def observe(self, bank: BankKey, physical_row: int) -> None:
        self._sampled[bank] = physical_row

    def observe_run(self, events: Sequence[ActEvent],
                    iterations: int) -> None:
        if iterations <= 0:
            return
        # Only the final iteration's last ACT per bank survives.
        for bank, physical_row in events:
            self._sampled[bank] = physical_row

    def fire(self) -> List[Tuple[BankKey, int]]:
        picked = list(self._sampled.items())
        self._sampled.clear()
        return picked


class CounterSampler(TrrSampler):
    """Per-bank row -> activation-count tables (U-TRR "Vendor A")."""

    def __init__(self, table_size: int) -> None:
        self._table_size = table_size
        self._tables: Dict[BankKey, Dict[int, int]] = {}

    def observe(self, bank: BankKey, physical_row: int) -> None:
        table = self._tables.setdefault(bank, {})
        if physical_row in table:
            table[physical_row] += 1
            return
        if len(table) >= self._table_size:
            evicted = min(table, key=lambda row: (table[row], row))
            del table[evicted]
        table[physical_row] = 1

    def observe_run(self, events: Sequence[ActEvent],
                    iterations: int) -> None:
        if iterations <= 0:
            return
        # Banks are independent (separate tables, no cross-bank state),
        # so each bank's event subsequence is replayed on its own —
        # letting every bank reach its short-circuit regime separately.
        per_bank: Dict[BankKey, List[int]] = {}
        for bank, physical_row in events:
            per_bank.setdefault(bank, []).append(physical_row)
        for bank, rows in per_bank.items():
            self._run_bank(self._tables.setdefault(bank, {}), rows,
                           iterations)

    def _run_bank(self, table: Dict[int, int], rows: Sequence[int],
                  iterations: int) -> None:
        """Replay ``iterations`` repetitions of ``rows`` on one table.

        Simulated iteration by iteration until one of two steady states
        short-circuits the rest: *all resident* (no evictions — each
        further iteration adds each row's multiplicity, filled in
        arithmetically) or a *churn fixed point* (the iteration left
        the table exactly as it found it — typical when long-lived
        high-count entries squeeze the new rows into evicting each
        other — so every further iteration is a no-op).  Both regimes
        are reached within a few iterations for real programs, and the
        fallback is the exact per-ACT replay.
        """
        remaining = iterations
        while remaining > 0:
            before = dict(table)
            churned = False
            for physical_row in rows:
                if physical_row in table:
                    table[physical_row] += 1
                else:
                    churned = True
                    if len(table) >= self._table_size:
                        evicted = min(table,
                                      key=lambda row: (table[row], row))
                        del table[evicted]
                    table[physical_row] = 1
            remaining -= 1
            if not remaining:
                return
            if not churned:
                for physical_row in rows:
                    table[physical_row] += remaining
                return
            if table == before:
                # The sampler is a pure function of its table, so a
                # fixed point persists for every remaining iteration.
                return

    def fire(self) -> List[Tuple[BankKey, int]]:
        picked: List[Tuple[BankKey, int]] = []
        for bank, table in self._tables.items():
            if not table:
                continue
            top = max(table, key=lambda row: (table[row], -row))
            del table[top]
            picked.append((bank, top))
        return picked


def _mix64(value: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit hash."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class ProbabilisticSampler(TrrSampler):
    """One slot per bank captured with probability p (U-TRR "Vendor B").

    Each bank's ACTs are numbered; ACT ordinal ``n`` captures the slot
    iff ``hash(seed, bank, n) < p * 2**64``.  Being counter-indexed
    (not a sequential RNG stream), a run of ``k`` ACTs is reproduced
    bulk by advancing the ordinal by ``k`` and scanning backwards for
    the last winning ordinal — expected ``1/p`` hash evaluations.
    """

    def __init__(self, probability: float, seed: int) -> None:
        self._threshold = int(probability * float(1 << 64))
        self._seed = seed & 0xFFFFFFFFFFFFFFFF
        self._sampled: Dict[BankKey, int] = {}
        self._ordinals: Dict[BankKey, int] = {}

    def _wins(self, bank: BankKey, ordinal: int) -> bool:
        word = _mix64(self._seed
                      ^ _mix64(bank[0] * 0x10001 + bank[1] * 0x101
                               + bank[2] + 1)
                      ^ _mix64(ordinal))
        return word < self._threshold

    def observe(self, bank: BankKey, physical_row: int) -> None:
        ordinal = self._ordinals.get(bank, 0) + 1
        self._ordinals[bank] = ordinal
        if self._wins(bank, ordinal):
            self._sampled[bank] = physical_row

    def observe_run(self, events: Sequence[ActEvent],
                    iterations: int) -> None:
        if iterations <= 0:
            return
        per_bank_rows: Dict[BankKey, List[int]] = {}
        for bank, physical_row in events:
            per_bank_rows.setdefault(bank, []).append(physical_row)
        for bank, rows in per_bank_rows.items():
            length = len(rows)
            total = length * iterations
            start = self._ordinals.get(bank, 0)
            self._ordinals[bank] = start + total
            for offset in range(total - 1, -1, -1):
                if self._wins(bank, start + offset + 1):
                    self._sampled[bank] = rows[offset % length]
                    break

    def fire(self) -> List[Tuple[BankKey, int]]:
        picked = list(self._sampled.items())
        self._sampled.clear()
        return picked


def make_sampler(config: TrrConfig, seed: int = 0) -> TrrSampler:
    """Instantiate the sampler strategy ``config`` names."""
    if config.sampler == "last":
        return LastActivationSampler()
    if config.sampler == "counter":
        return CounterSampler(config.table_size)
    return ProbabilisticSampler(config.sample_probability, seed)


class TrrEngine:
    """Sampler + periodic victim refresh for one pseudo channel.

    The engine does not touch DRAM state itself; on a firing REF it
    reports which physical rows to internally refresh, and the device
    performs the refreshes (so all charge-restoration behaviour lives in
    one place, the bank).  ``seed`` feeds the probabilistic sampler's
    hash (ignored by the deterministic strategies), keyed per device so
    two specimens sample differently but one specimen reproducibly.
    """

    def __init__(self, config: TrrConfig, seed: int = 0) -> None:
        self._config = config
        self._ref_counter = 0
        self._sampler = make_sampler(config, seed)

    @property
    def config(self) -> TrrConfig:
        return self._config

    @property
    def sampler(self) -> TrrSampler:
        """The active sampler strategy (diagnostics / tests only)."""
        return self._sampler

    @property
    def ref_counter(self) -> int:
        """REF commands seen since the last firing (diagnostics only)."""
        return self._ref_counter

    def observe_activation(self, bank: BankKey, physical_row: int) -> None:
        """Sampler input: an ACT was issued to ``physical_row``."""
        if not self._config.enabled:
            return
        self._sampler.observe(bank, physical_row)

    def observe_run(self, events: Sequence[ActEvent],
                    iterations: int) -> None:
        """Bulk sampler input: ``iterations`` repetitions of ``events``.

        Exactly equivalent to calling :meth:`observe_activation` for
        each event of each repetition, in order — the entry point for
        the device's analytic paths, which never unroll the loop.
        """
        if not self._config.enabled:
            return
        self._sampler.observe_run(events, iterations)

    def on_refresh(self) -> List[Tuple[BankKey, int]]:
        """Process one REF command.

        Returns the list of (bank, physical victim row) pairs the device
        must internally refresh now — empty except on every Nth call.
        """
        if not self._config.enabled:
            return []
        self._ref_counter += 1
        if self._ref_counter < self._config.refresh_period:
            return []
        self._ref_counter = 0
        victims: List[Tuple[BankKey, int]] = []
        for bank, aggressor in self._sampler.fire():
            for distance in range(1, self._config.refresh_radius + 1):
                victims.append((bank, aggressor - distance))
                victims.append((bank, aggressor + distance))
        if victims:
            get_metrics().counter("trr.preventive_refreshes").inc(
                len(victims))
        return victims

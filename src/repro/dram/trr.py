"""The undisclosed in-DRAM Target Row Refresh (TRR) engine.

The paper's §5 discovers — via the U-TRR retention side channel — that the
tested HBM2 chip ships a proprietary TRR mechanism that refreshes a
sampled aggressor's victim rows **once every 17 periodic REF commands**,
resembling the mechanism U-TRR attributes to "Vendor C" DDR4 chips.

This module implements such an engine.  It is completely invisible at the
command interface: it observes ACT commands through a per-bank single-slot
sampler and, on every Nth REF of a pseudo channel, internally refreshes
the physical neighbours of each sampled row.  The characterization code in
:mod:`repro.core.utrr` must rediscover N through read-back data alone.

Design notes mirroring what U-TRR reports about real samplers:

* the sampler holds the **most recent** activated row per bank (a
  one-entry table; real chips have small tables),
* a TRR event consumes the sample (the slot is cleared after the refresh),
* victim refreshes cover physical distance 1..``refresh_radius``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.obs import get_metrics

BankKey = Tuple[int, int, int]


@dataclass(frozen=True)
class TrrConfig:
    """Configuration of the hidden TRR engine.

    Attributes:
        enabled: master switch (the paper's chip has it always on; tests
            and some ablations turn it off).
        refresh_period: a TRR victim refresh fires on every Nth REF
            command of a pseudo channel.  The paper measures N = 17.
        refresh_radius: physical distance around the sampled aggressor
            whose rows get refreshed.
    """

    enabled: bool = True
    refresh_period: int = 17
    refresh_radius: int = 1

    def __post_init__(self) -> None:
        if self.refresh_period < 1:
            raise ConfigurationError("refresh_period must be >= 1")
        if self.refresh_radius < 1:
            raise ConfigurationError("refresh_radius must be >= 1")


class TrrEngine:
    """Sampler + periodic victim refresh for one pseudo channel.

    The engine does not touch DRAM state itself; on a firing REF it
    reports which physical rows to internally refresh, and the device
    performs the refreshes (so all charge-restoration behaviour lives in
    one place, the bank).
    """

    def __init__(self, config: TrrConfig) -> None:
        self._config = config
        self._ref_counter = 0
        self._sampled: Dict[BankKey, int] = {}

    @property
    def config(self) -> TrrConfig:
        return self._config

    @property
    def ref_counter(self) -> int:
        """REF commands seen since the last firing (diagnostics only)."""
        return self._ref_counter

    def observe_activation(self, bank: BankKey, physical_row: int) -> None:
        """Sampler input: an ACT was issued to ``physical_row``."""
        if not self._config.enabled:
            return
        self._sampled[bank] = physical_row

    def on_refresh(self) -> List[Tuple[BankKey, int]]:
        """Process one REF command.

        Returns the list of (bank, physical victim row) pairs the device
        must internally refresh now — empty except on every Nth call.
        """
        if not self._config.enabled:
            return []
        self._ref_counter += 1
        if self._ref_counter < self._config.refresh_period:
            return []
        self._ref_counter = 0
        victims: List[Tuple[BankKey, int]] = []
        for bank, aggressor in self._sampled.items():
            for distance in range(1, self._config.refresh_radius + 1):
                victims.append((bank, aggressor - distance))
                victims.append((bank, aggressor + distance))
        self._sampled.clear()
        if victims:
            get_metrics().counter("trr.preventive_refreshes").inc(
                len(victims))
        return victims

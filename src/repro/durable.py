"""Durable artifact store: every byte that must survive kill -9.

Campaign checkpoints, fleet manifests, event logs, and per-shard spools
are what make multi-hour §3/§4 campaigns resumable — and before this
module each subsystem wrote them with plain ``open()``/``json.dump``,
so a process killed mid-write left a torn file that resume would either
crash on or silently trust.  This module is the single write/read path
for all of them:

* :func:`atomic_write_bytes` — temp file + ``fsync`` + ``os.replace``
  in the destination directory, so readers only ever observe the old
  complete file or the new complete file, with a **pre-write disk-space
  guard** (:class:`~repro.errors.DiskSpaceError`) instead of a
  half-written artifact when the volume is full;
* :func:`write_artifact` / :func:`read_artifact` — JSON payloads in an
  envelope carrying a blake2b checksum and a schema version, so a
  truncated or bit-rotted artifact is *detected* on read
  (:class:`~repro.errors.ArtifactCorruptError`) rather than merged;
* :func:`quarantine` — renames a corrupt artifact to ``*.corrupt`` so
  recovery can recompute it while keeping the evidence for debugging;
* :func:`read_jsonl_tolerant` — line-oriented reader that drops a torn
  tail (and counts it) instead of raising from ``json.loads``.

**Fault injection.**  Writes accept a
:class:`~repro.faults.plan.FaultPlan`; the plan's seeded ``io_*``
draws — keyed on (artifact kind, file name, per-name write index) —
can truncate the artifact at a seeded offset, flip one seeded bit, or
refuse the write as a simulated ENOSPC.  Corruption is applied to the
bytes *before* they land, so the atomic rename still holds and the
checksum detects the damage exactly as it would detect real rot.

**Kill points.**  ``$REPRO_KILL_AFTER_WRITES=N`` delivers SIGKILL to
the writing process immediately after its N-th shard-archive write —
the hook the crash-loop harness (``tools/crashloop.py``) and the
kill-9-at-every-shard-boundary tests use to park a campaign at an
exact recovery boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from repro.errors import ArtifactCorruptError, DiskSpaceError

__all__ = [
    "Artifact",
    "atomic_write_bytes",
    "checksum",
    "quarantine",
    "read_artifact",
    "read_jsonl_tolerant",
    "reset_io_state",
    "write_artifact",
]

#: Envelope key marking a durable artifact (top-level JSON object key).
ENVELOPE_KEY = "__repro_artifact__"

#: Schema version stamped into every envelope.
SCHEMA_VERSION = 1

#: SIGKILL-after-N-shard-writes hook (see module docstring).
KILL_VAR = "REPRO_KILL_AFTER_WRITES"

#: Artifact kind whose writes count toward the kill hook: the campaign
#: shard archive, because shard boundaries are the recovery points a
#: resume must be byte-identical across.
KILL_KIND = "shard"

#: Free-space slack demanded beyond the artifact's own size, so a write
#: that would leave the volume pathologically full is refused too.
_DISK_SLACK_BYTES = 1 << 16

#: Per-process, per-kind write counters: the ``write_index`` component
#: of the IO fault key, and the kill hook's countdown domain.
_write_counts: Dict[str, int] = {}

#: Remaining shard writes before the kill hook fires; None = env unread,
#: -1 = disabled.
_kill_remaining: Optional[int] = None


def reset_io_state() -> None:
    """Reset write counters and re-read the kill-point env.

    Call at the start of a forked child that should observe its own
    ``$REPRO_KILL_AFTER_WRITES`` budget and a fresh fault-draw stream
    (the crash tests fork campaign parents from pytest).
    """
    global _kill_remaining
    _write_counts.clear()
    _kill_remaining = None


def checksum(data: bytes) -> str:
    """blake2b-16 hex digest — the envelope's integrity primitive."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _next_write_index(kind: str, name: str) -> int:
    key = f"{kind}|{name}"
    index = _write_counts.get(key, 0)
    _write_counts[key] = index + 1
    return index


def _check_disk_space(directory: Path, need: int) -> None:
    """Refuse the write cleanly when the volume cannot hold it."""
    try:
        stats = os.statvfs(directory)
    except (AttributeError, OSError):
        return  # no statvfs (or raced a mkdir): proceed optimistically
    free = stats.f_bavail * stats.f_frsize
    if free < need + _DISK_SLACK_BYTES:
        raise DiskSpaceError(
            f"refusing to write {need} byte(s) to {directory}: only "
            f"{free} byte(s) free (need {need + _DISK_SLACK_BYTES} "
            f"including slack); artifact not written")


def _apply_io_faults(data: bytes, kind: str, name: str, index: int,
                     fault_plan) -> bytes:
    """The plan's seeded corruption of one write's bytes (or the bytes).

    ``enospc`` raises before anything lands; ``torn_write`` truncates at
    the seeded offset; ``bitflip`` flips the seeded bit.  The damaged
    bytes still go through the atomic rename — the simulation is of a
    non-atomic writer dying mid-write or of media rot, both of which
    leave a *complete-looking* file whose checksum no longer matches.
    """
    category = fault_plan.io_fault(kind, name, index)
    if category is None:
        return data
    from repro.obs import get_metrics
    get_metrics().counter(f"faults.io.{category}").inc()
    if category == "enospc":
        raise DiskSpaceError(
            f"injected ENOSPC writing {kind} artifact {name} "
            f"(write {index}); artifact not written")
    if category == "torn_write":
        return data[:fault_plan.torn_offset(len(data), kind, name, index)]
    byte, bit = fault_plan.bitflip_site(len(data), kind, name, index)
    flipped = bytearray(data)
    flipped[byte] ^= 1 << bit
    return bytes(flipped)


def _maybe_kill(kind: str) -> None:
    """Fire the ``$REPRO_KILL_AFTER_WRITES`` hook after shard writes."""
    global _kill_remaining
    if kind != KILL_KIND:
        return
    if _kill_remaining is None:
        raw = os.environ.get(KILL_VAR, "").strip()
        _kill_remaining = int(raw) if raw else -1
    if _kill_remaining < 0:
        return
    _kill_remaining -= 1
    if _kill_remaining == 0:
        os.kill(os.getpid(), signal.SIGKILL)


def atomic_write_bytes(path: Union[str, Path], data: bytes, *,
                       kind: str = "artifact", fault_plan=None) -> None:
    """Write ``data`` to ``path`` so readers never observe a torn file.

    The temp file lives next to the destination (same filesystem, so
    ``os.replace`` is atomic) and is fsynced before the rename.  With a
    ``fault_plan`` carrying IO fault rates, the plan's seeded draws may
    corrupt the landed bytes or refuse the write (see
    :func:`_apply_io_faults`).
    """
    path = Path(path)
    index = _next_write_index(kind, path.name)
    if fault_plan is not None and fault_plan.spec.has_io_faults:
        data = _apply_io_faults(data, kind, path.name, index, fault_plan)
    _check_disk_space(path.parent, len(data))
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
    _maybe_kill(kind)


class Artifact(NamedTuple):
    """One decoded durable artifact: its payload plus envelope metadata."""

    payload: object
    kind: Optional[str]
    version: Optional[int]
    meta: Dict[str, object]


def write_artifact(path: Union[str, Path], payload: object, *,
                   kind: str, fault_plan=None,
                   **meta: object) -> None:
    """Atomically persist ``payload`` in a checksummed envelope.

    ``meta`` lands in the envelope (not the payload) — e.g. the
    campaign fingerprint a shard archive belongs to — so readers can
    validate provenance without trusting the payload.  The checksum
    covers the canonical (sorted, compact) JSON encoding of the
    payload, making it stable under any envelope growth.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    envelope: Dict[str, object] = {
        "kind": kind,
        "version": SCHEMA_VERSION,
        "checksum": checksum(body.encode()),
    }
    envelope.update(meta)
    record = {ENVELOPE_KEY: envelope, "payload": payload}
    atomic_write_bytes(path, (json.dumps(record, indent=1) + "\n").encode(),
                       kind=kind, fault_plan=fault_plan)


def read_artifact(path: Union[str, Path], *,
                  kind: Optional[str] = None) -> Artifact:
    """Load and verify one durable artifact.

    Raises :class:`~repro.errors.ArtifactCorruptError` for anything
    that cannot be trusted: unreadable file, torn/unparseable JSON,
    checksum mismatch, or an envelope of the wrong ``kind``.  A JSON
    object *without* an envelope is accepted as a legacy artifact
    (payload = the whole object, nothing to verify) so pre-envelope
    archives still load.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ArtifactCorruptError(
            f"unreadable artifact {path}: {error}") from error
    try:
        record = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ArtifactCorruptError(
            f"artifact {path} is torn or unparseable: {error}") from error
    if not isinstance(record, dict):
        raise ArtifactCorruptError(
            f"artifact {path} is not a JSON object "
            f"(got {type(record).__name__})")
    envelope = record.get(ENVELOPE_KEY)
    if envelope is None:
        return Artifact(payload=record, kind=None, version=None, meta={})
    if not isinstance(envelope, dict):
        raise ArtifactCorruptError(
            f"artifact {path} carries a malformed envelope")
    payload = record.get("payload")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    expected = envelope.get("checksum")
    if expected != checksum(body.encode()):
        raise ArtifactCorruptError(
            f"artifact {path} failed its checksum (stored "
            f"{expected!r}): payload corrupted on disk")
    if kind is not None and envelope.get("kind") != kind:
        raise ArtifactCorruptError(
            f"artifact {path} is a {envelope.get('kind')!r} artifact, "
            f"expected {kind!r}")
    meta = {key: value for key, value in envelope.items()
            if key not in ("kind", "version", "checksum")}
    return Artifact(payload=payload, kind=envelope.get("kind"),
                    version=envelope.get("version"), meta=meta)


def quarantine(path: Union[str, Path]) -> Path:
    """Move a corrupt artifact aside as ``*.corrupt``; return the grave.

    Keeps the evidence for debugging (the CI crash-recovery job uploads
    quarantined files) while freeing the canonical name for a
    recomputed replacement.  Numbered suffixes avoid clobbering an
    earlier quarantine of the same artifact.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    attempt = 1
    while target.exists():
        target = path.with_name(f"{path.name}.corrupt.{attempt}")
        attempt += 1
    os.replace(path, target)
    return target


def read_jsonl_tolerant(path: Union[str, Path]
                        ) -> Tuple[List[object], int]:
    """Parse a JSONL file, dropping (and counting) unparseable lines.

    A process killed mid-append leaves a torn final line; a tolerant
    reader must not raise from ``json.loads`` on it.  Mid-file garbage
    (overlapping appends on a non-POSIX filesystem, manual edits) is
    dropped the same way.  Returns ``(records, dropped_line_count)``.
    """
    records: List[object] = []
    dropped = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    dropped += 1
    except OSError as error:
        raise ArtifactCorruptError(
            f"unreadable JSONL {path}: {error}") from error
    return records, dropped

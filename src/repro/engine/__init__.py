"""The execution engine: every entry point's single path to the device.

Four sub-layers, each in its own module:

* **Session** (:mod:`repro.engine.session`) — owns station setup:
  board construction from a :class:`~repro.bender.board.BoardSpec`,
  the §3.1 interference controls, thermal-guard arming from the fault
  plan, and installation of the backend + program cache on the host.
* **Planner** (:mod:`repro.engine.plan`) — turns a sweep grid into an
  ordered stream of :class:`~repro.engine.plan.WorkItem`\\ s; serial,
  ``--jobs N``, and ``--resume`` consume the *same* plan, so
  byte-identical output falls out by construction.
* **Backend** (:mod:`repro.engine.backend`,
  :mod:`repro.engine.pool`) — the ``compile(program) -> handle`` /
  ``execute(handle, rows) -> readbacks`` protocol;
  :class:`~repro.engine.backend.LocalBackend` is the in-process
  reference, :class:`~repro.engine.backend.FastPathBackend` the
  analytic accelerator (cached effect summaries applied directly to
  the cell model instead of interpreting, gated by
  ``$REPRO_FASTPATH``), :class:`~repro.engine.pool.PoolBackend` the
  subprocess fan-out, and the seam is where a remote backend would
  plug in.
* **ProgramCache** (:mod:`repro.engine.cache`) — content-addressed
  (blake2b over assembled template + timing table) store of
  built-and-verified programs with row-address patching, so assembly
  and verification are paid once per program *shape* rather than once
  per row.  Gated by ``$REPRO_PROGRAM_CACHE`` (default on).

:mod:`repro.engine.pool` is intentionally not imported here: it
depends on :mod:`repro.core.sweeps` (which itself imports this
package), and the parallel executor imports it directly.
"""

from repro.engine.backend import (
    CompiledProgram,
    ExecutionBackend,
    FastPathBackend,
    LocalBackend,
)
from repro.engine.cache import ProgramCache, canonicalize, shape_digest, substitute
from repro.engine.plan import ExecutionPlan, WorkItem, chunk_items
from repro.engine.session import EngineSession

__all__ = [
    "CompiledProgram",
    "EngineSession",
    "ExecutionBackend",
    "ExecutionPlan",
    "FastPathBackend",
    "LocalBackend",
    "ProgramCache",
    "WorkItem",
    "canonicalize",
    "chunk_items",
    "shape_digest",
    "substitute",
]

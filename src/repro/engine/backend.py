"""Execution backends: compile-once / execute-many program handles.

The engine narrows every way of running a Bender program down to one
two-call protocol::

    handle = backend.compile(program)        # canonicalize + lower
    result = backend.execute(handle, rows)   # patch rows + run

:class:`LocalBackend` is the reference implementation: it executes on
the station's own in-process :class:`~repro.bender.interpreter.
Interpreter`, through whatever transport the host has installed (so
fault-injecting and resilient links keep working unchanged).  The
subprocess fan-out lives in :class:`repro.engine.pool.PoolBackend`,
which schedules whole :class:`~repro.engine.plan.WorkItem`\\ s onto
worker processes that each run a ``LocalBackend`` of their own.

``compile`` also *lowers* the program's row-write payloads: a WRROW's
``np.unpackbits`` expansion and its ECC parity words are pure functions
of the payload bytes, so they are computed once per distinct payload
and memoized on the interpreter (see
:meth:`~repro.bender.interpreter.Interpreter.enable_payload_cache`),
turning the per-row data fill from an encode into an array copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple

from repro.bender import isa
from repro.bender.interpreter import ExecutionResult
from repro.bender.program import Program
from repro.engine.cache import (
    RowBinding,
    SlotBanks,
    canonicalize,
    shape_digest,
    substitute,
)


@dataclass(frozen=True)
class CompiledProgram:
    """A backend handle: one verified, lowered program shape.

    ``template`` carries slot ordinals in place of ACT rows;
    ``source_binding`` is the row binding of the program it was
    compiled from (the instance that was verified at cache insert).
    """

    template: Program
    slot_banks: SlotBanks
    source_binding: RowBinding
    digest: str

    @property
    def slots(self) -> int:
        return len(self.slot_banks)


class ExecutionBackend(Protocol):
    """What any engine backend must provide.

    The seam for future remote or accelerated executors: anything that
    can compile a program into a patchable handle and execute bindings
    against it can serve the cache and the drivers.
    """

    def compile(self, program: Program) -> CompiledProgram:
        ...

    def execute(self, handle: CompiledProgram,
                binding: RowBinding = ()) -> ExecutionResult:
        ...

    def execute_batch(self, handle: CompiledProgram,
                      bindings: Sequence[RowBinding]
                      ) -> List[ExecutionResult]:
        ...


def _wrrow_payloads(program: Program) -> Tuple[bytes, ...]:
    payloads: List[bytes] = []

    def walk(instructions) -> None:
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                walk(instruction.body)
            elif isinstance(instruction, isa.WrRow):
                payloads.append(instruction.data)

    walk(program.instructions)
    return tuple(payloads)


class LocalBackend:
    """Reference in-process backend for one station."""

    #: Bound on memoized instantiations (cleared wholesale when full; a
    #: sweep's working set is far smaller, the bound is a backstop).
    MAX_INSTANTIATIONS = 4096

    def __init__(self, host) -> None:
        self._host = host
        # Programs are immutable, so an instantiation — a template with
        # one concrete row binding patched in — can be reused verbatim
        # whenever the same rows are measured again (every repetition
        # after the first), skipping the substitution walk.
        self._instantiations: dict = {}

    @property
    def timing(self):
        return self._host.device.timing

    def compile(self, program: Program) -> CompiledProgram:
        """Canonicalize ``program`` into a patchable, lowered handle."""
        template, binding, slot_banks = canonicalize(program)
        handle = CompiledProgram(template=template, slot_banks=slot_banks,
                                 source_binding=binding,
                                 digest=shape_digest(template, self.timing))
        payload_cache = self._host.interpreter.payload_cache
        if payload_cache is not None:
            for payload in _wrrow_payloads(template):
                self._host.interpreter.lower_payload(payload)
        return handle

    def execute(self, handle: CompiledProgram,
                binding: RowBinding = ()) -> ExecutionResult:
        """Patch ``binding`` into the handle and run it on the station."""
        binding = tuple(binding)
        key = (handle.digest, binding)
        program = self._instantiations.get(key)
        if program is None:
            program = substitute(handle.template, handle.slot_banks,
                                 binding)
            if len(self._instantiations) >= self.MAX_INSTANTIATIONS:
                self._instantiations.clear()
            self._instantiations[key] = program
        return self._host.run(program)

    def execute_batch(self, handle: CompiledProgram,
                      bindings: Sequence[RowBinding]
                      ) -> List[ExecutionResult]:
        """One :meth:`execute` per binding, in order."""
        return [self.execute(handle, binding) for binding in bindings]

"""Execution backends: compile-once / execute-many program handles.

The engine narrows every way of running a Bender program down to one
two-call protocol::

    handle = backend.compile(program)        # canonicalize + lower
    result = backend.execute(handle, rows)   # patch rows + run

:class:`LocalBackend` is the reference implementation: it executes on
the station's own in-process :class:`~repro.bender.interpreter.
Interpreter`, through whatever transport the host has installed (so
fault-injecting and resilient links keep working unchanged).  The
subprocess fan-out lives in :class:`repro.engine.pool.PoolBackend`,
which schedules whole :class:`~repro.engine.plan.WorkItem`\\ s onto
worker processes that each run a ``LocalBackend`` of their own.

``compile`` also *lowers* the program's row-write payloads: a WRROW's
``np.unpackbits`` expansion and its ECC parity words are pure functions
of the payload bytes, so they are computed once per distinct payload
and memoized on the interpreter (see
:meth:`~repro.bender.interpreter.Interpreter.enable_payload_cache`),
turning the per-row data fill from an encode into an array copy.

:class:`FastPathBackend` extends the local backend with the *analytic
fast path*: ``compile`` additionally runs the effect-summary analysis
(:func:`repro.verify.summarize_program`) on the canonical template, and
``execute`` applies a summarized program's effect ops directly against
the device — the same ACT counts, timing stamps, TRR observations,
disturbance doses and command counts the interpreter would produce,
without walking the command stream.  Programs whose effects cannot be
proven (:class:`~repro.verify.Unsummarizable`) fall back to interpreted
execution, counted in ``engine.fastpath.fallbacks``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.bender import isa
from repro.bender.interpreter import ExecutionResult
from repro.bender.program import Program
from repro.engine.cache import (
    RowBinding,
    SlotBanks,
    canonicalize,
    shape_digest,
    substitute,
)
from repro.errors import EngineError
from repro.obs import get_metrics
from repro.verify import VerifyContext
from repro.verify.effects import (
    BurstOp,
    EffectSummary,
    HammerOp,
    IdleOp,
    RefreshOp,
    RowReadOp,
    RowWriteOp,
    Unsummarizable,
    summarize_program,
)


@dataclass(frozen=True)
class CompiledProgram:
    """A backend handle: one verified, lowered program shape.

    ``template`` carries slot ordinals in place of ACT rows;
    ``source_binding`` is the row binding of the program it was
    compiled from (the instance that was verified at cache insert).
    ``summary`` / ``unsummarizable`` are the effect analysis of the
    template (both None on backends that do not summarize): because
    the template's ACT rows *are* slot ordinals, a summary's row
    operands index any concrete binding — the same renaming rule
    row substitution uses — so one analysis serves every execution of
    the shape.
    """

    template: Program
    slot_banks: SlotBanks
    source_binding: RowBinding
    digest: str
    summary: Optional[EffectSummary] = None
    unsummarizable: Optional[Unsummarizable] = None

    @property
    def slots(self) -> int:
        return len(self.slot_banks)


class ExecutionBackend(Protocol):
    """What any engine backend must provide.

    The seam for future remote or accelerated executors: anything that
    can compile a program into a patchable handle and execute bindings
    against it can serve the cache and the drivers.
    """

    def compile(self, program: Program) -> CompiledProgram:
        ...

    def execute(self, handle: CompiledProgram,
                binding: RowBinding = ()) -> ExecutionResult:
        ...

    def execute_batch(self, handle: CompiledProgram,
                      bindings: Sequence[RowBinding]
                      ) -> List[ExecutionResult]:
        ...


def _wrrow_payloads(program: Program) -> Tuple[bytes, ...]:
    payloads: List[bytes] = []

    def walk(instructions) -> None:
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                walk(instruction.body)
            elif isinstance(instruction, isa.WrRow):
                payloads.append(instruction.data)

    walk(program.instructions)
    return tuple(payloads)


class LocalBackend:
    """Reference in-process backend for one station."""

    #: Bound on memoized instantiations (cleared wholesale when full; a
    #: sweep's working set is far smaller, the bound is a backstop).
    MAX_INSTANTIATIONS = 4096

    def __init__(self, host) -> None:
        self._host = host
        # Programs are immutable, so an instantiation — a template with
        # one concrete row binding patched in — can be reused verbatim
        # whenever the same rows are measured again (every repetition
        # after the first), skipping the substitution walk.
        self._instantiations: dict = {}

    @property
    def timing(self):
        return self._host.device.timing

    def device_identity(self) -> str:
        """The executing device's family identity for cache digests.

        Mirrors :meth:`repro.dram.profiles.DeviceProfile.identity` —
        profile name (empty for hand-assembled devices), geometry, and
        TRR policy — so programs verified against one family never
        alias another's cache entries, even with identical timing.
        """
        device = self._host.device
        return (f"{device.profile_name or ''}|{device.geometry!r}"
                f"|{device.trr_config!r}")

    def compile(self, program: Program) -> CompiledProgram:
        """Canonicalize ``program`` into a patchable, lowered handle."""
        template, binding, slot_banks = canonicalize(program)
        handle = CompiledProgram(template=template, slot_banks=slot_banks,
                                 source_binding=binding,
                                 digest=shape_digest(
                                     template, self.timing,
                                     self.device_identity()))
        payload_cache = self._host.interpreter.payload_cache
        if payload_cache is not None:
            for payload in _wrrow_payloads(template):
                self._host.interpreter.lower_payload(payload)
        return handle

    def execute(self, handle: CompiledProgram,
                binding: RowBinding = ()) -> ExecutionResult:
        """Patch ``binding`` into the handle and run it on the station."""
        binding = tuple(binding)
        key = (handle.digest, binding)
        program = self._instantiations.get(key)
        if program is None:
            program = substitute(handle.template, handle.slot_banks,
                                 binding)
            if len(self._instantiations) >= self.MAX_INSTANTIATIONS:
                self._instantiations.clear()
            self._instantiations[key] = program
        return self._host.run(program)

    def execute_batch(self, handle: CompiledProgram,
                      bindings: Sequence[RowBinding]
                      ) -> List[ExecutionResult]:
        """One :meth:`execute` per binding, in order."""
        return [self.execute(handle, binding) for binding in bindings]


class FastPathBackend(LocalBackend):
    """Local backend with the analytic (effect-summary) fast path.

    ``execute`` dispatches on the handle's effect analysis:

    * summary present and the station is fast-path capable — apply the
      effect ops directly (``engine.fastpath.hits``);
    * no summary (``Unsummarizable`` shape) — interpreted execution
      (``engine.fastpath.fallbacks``);
    * station not capable right now — a transport is installed (fault
      injection must see every program), tracing is on, or bulk loops
      are disabled — interpreted execution (``engine.fastpath.
      bypasses``), since interpreted behaviour is the one being
      observed.

    Equivalence contract: for every summarized program, the applied
    effect is cycle- and state-identical to interpreted execution.
    Ops reuse the device's own command methods (ACT/PRE/REF/RDROW at
    the same clock stamps), hammer loops mirror the interpreter's
    warm-up + bulk + cool-down split exactly, and full-row writes go
    through :meth:`~repro.dram.device.Device.apply_row_write`.
    The CI fastpath-equivalence job holds the gate: Fig. 3 dataset
    fingerprints must be byte-identical with ``REPRO_FASTPATH=0/1``.
    """

    def compile(self, program: Program) -> CompiledProgram:
        handle = super().compile(program)
        context = VerifyContext.for_host(self._host,
                                         allow_retention_decay=True)
        outcome = summarize_program(handle.template, context)
        if isinstance(outcome, EffectSummary):
            return CompiledProgram(
                template=handle.template, slot_banks=handle.slot_banks,
                source_binding=handle.source_binding, digest=handle.digest,
                summary=outcome)
        return CompiledProgram(
            template=handle.template, slot_banks=handle.slot_banks,
            source_binding=handle.source_binding, digest=handle.digest,
            unsummarizable=outcome)

    def execute(self, handle: CompiledProgram,
                binding: RowBinding = ()) -> ExecutionResult:
        if handle.summary is None:
            get_metrics().counter("engine.fastpath.fallbacks").inc()
            return super().execute(handle, binding)
        if not self._fast_path_capable():
            get_metrics().counter("engine.fastpath.bypasses").inc()
            return super().execute(handle, binding)
        get_metrics().counter("engine.fastpath.hits").inc()
        return self._apply(handle, tuple(binding))

    def _fast_path_capable(self) -> bool:
        interpreter = self._host.interpreter
        return (self._host.transport is None and
                interpreter.fast_loops_enabled and
                not interpreter.trace_enabled)

    # -- effect application -------------------------------------------
    def _apply(self, handle: CompiledProgram,
               rows: RowBinding) -> ExecutionResult:
        if len(rows) != handle.slots:
            raise EngineError(
                f"program shape {handle.digest[:12]} has {handle.slots} "
                f"row slot(s), got a binding of {len(rows)}")
        bound = {bank_key + (row,)
                 for bank_key, row in zip(handle.slot_banks, rows)}
        if len(bound) != len(rows):
            raise EngineError(
                f"row binding {rows!r} aliases two slots of the same "
                f"bank in shape {handle.digest[:12]}; the canonical "
                "template guarantees distinct rows per bank")
        # The fast path is still one program execution as far as the
        # command-stream accounting is concerned.
        get_metrics().counter("bender.programs").inc()
        device = self._host.device
        result = ExecutionResult(start_cycle=device.now)
        self._apply_ops(handle.summary.ops, rows, device, result)
        result.end_cycle = device.now
        return result

    def _apply_ops(self, ops, rows: RowBinding, device,
                   result: ExecutionResult) -> None:
        interpreter = self._host.interpreter
        index = 0
        total = len(ops)
        while index < total:
            op = ops[index]
            index += 1
            if isinstance(op, RowWriteOp):
                # Coalesce a run of same-bank writes: the device's
                # batched form skips the timing checker for the middle
                # triads once the schedule is provably periodic.
                bank_key = (op.channel, op.pseudo_channel, op.bank)
                writes = [(rows[op.row],) +
                          interpreter.lower_payload(op.data) +
                          (op.data,)]
                while index < total:
                    peek = ops[index]
                    if not (isinstance(peek, RowWriteOp) and
                            (peek.channel, peek.pseudo_channel,
                             peek.bank) == bank_key):
                        break
                    writes.append((rows[peek.row],) +
                                  interpreter.lower_payload(peek.data) +
                                  (peek.data,))
                    index += 1
                if len(writes) == 1:
                    row, bits, parity, tag = writes[0]
                    device.apply_row_write(op.channel, op.pseudo_channel,
                                           op.bank, row, bits, parity,
                                           tag=tag)
                else:
                    device.apply_row_writes(op.channel, op.pseudo_channel,
                                            op.bank, writes)
            elif isinstance(op, HammerOp):
                self._apply_hammer(op, rows, device)
            elif isinstance(op, RowReadOp):
                device.activate(op.channel, op.pseudo_channel, op.bank,
                                rows[op.row])
                result.row_reads.append(device.read_open_row(
                    op.channel, op.pseudo_channel, op.bank))
                device.precharge(op.channel, op.pseudo_channel, op.bank)
            elif isinstance(op, RefreshOp):
                for _ in range(op.count):
                    device.refresh(op.channel, op.pseudo_channel)
            elif isinstance(op, IdleOp):
                device.wait(op.cycles)
            elif isinstance(op, BurstOp):
                for _ in range(op.iterations):
                    self._apply_ops(op.ops, rows, device, result)
            else:
                raise EngineError(f"unknown effect op: {op!r}")

    def _apply_hammer(self, op: HammerOp, rows: RowBinding,
                      device) -> None:
        """Mirror of the interpreter's loop policy, op-encoded.

        Same split as :meth:`~repro.bender.interpreter.Interpreter.
        _run_loop`: below the threshold every iteration runs through
        the device's command methods; at or above it, two warm-up
        iterations measure the steady-state period, ``iterations - 3``
        are bulk-applied, and a final slow iteration leaves the exact
        trailing timing state of the unrolled loop.
        """
        steps = op.steps
        resolved = tuple(
            ("act", step[1], step[2], step[3], rows[step[4]])
            if step[0] == "act" else tuple(step)
            for step in steps)

        def run_once() -> None:
            device.apply_hammer_steps(resolved)

        iterations = op.iterations
        if iterations < self._host.interpreter.fast_loop_threshold:
            for _ in range(iterations):
                run_once()
            return
        run_once()
        before_second = device.now
        run_once()
        period = device.now - before_second
        remaining = iterations - 3
        body_acts = [(step[1], step[2], step[3], rows[step[4]])
                     for step in steps if step[0] == "act"]
        device.bulk_activations(body_acts, remaining, remaining * period)
        run_once()

"""Content-addressed cache of built-and-verified Bender programs.

SoftMC-lineage infrastructures get their throughput from compiling a
hammer program once and replaying it across thousands of rows; the
repo's hot loops instead rebuilt and re-verified a near-identical
program per (row, pattern, repetition).  :class:`ProgramCache` closes
that gap: programs are cached by *shape* — the program with every ACT
row operand replaced by a slot ordinal — so construction, protocol
checking, static verification, and backend compilation are paid once
per shape and every further execution only patches row addresses into
the verified template.

Soundness of patching
---------------------
All protocol and timing properties the verifier checks are functions of
the command sequence and its (channel, pseudo channel, bank)
coordinates only — never of row *values* — so a verification report for
one row binding holds for any other.  The single row-sensitive property
(declared per-row hammer counts) is preserved exactly when the
substitution keeps distinct slots distinct within each bank, which
:func:`substitute` enforces; a binding that would alias two slots onto
one row raises :class:`~repro.errors.EngineError` instead of executing
with silently merged activation counts.

Addressing
----------
Entries are content-addressed: the digest is ``blake2b`` over the
canonical assembly text of the template plus the timing parameter
table, so two call sites that build the same shape share one compiled,
verified entry.  Callers index the store with a cheap structural key
(e.g. ``("hammer", ch, pc, bank, aggressors, count)``) to avoid
building a program at all on the hot path; the key maps to a digest,
the digest to the entry.

Hit/miss counters are exported through the metrics registry as
``engine.cache.hits`` / ``engine.cache.misses``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.bender import isa
from repro.bender.assembler import disassemble
from repro.bender.program import Program
from repro.errors import EngineError
from repro.obs import get_metrics

#: Ordered distinct row operands of a program (first-occurrence order).
RowBinding = Tuple[int, ...]
#: The (channel, pseudo channel, bank) coordinate of each row slot.
SlotBanks = Tuple[Tuple[int, int, int], ...]

#: Entries kept per cache (a backstop: shape key spaces are tiny; only
#: per-row retention waits could otherwise grow one entry per row).
DEFAULT_MAX_ENTRIES = 4096


def canonicalize(program: Program) -> Tuple[Program, RowBinding, SlotBanks]:
    """Split ``program`` into a row-free template and its row binding.

    Each distinct (channel, pseudo channel, bank, row) ACT operand is
    assigned a slot ordinal in first-occurrence order and the template
    carries the ordinal in place of the row.  Returns the template, the
    binding (original row per slot), and each slot's bank coordinate.
    """
    slots: Dict[Tuple[int, int, int, int], int] = {}
    binding: List[int] = []
    slot_banks: List[Tuple[int, int, int]] = []

    def walk(instructions) -> Tuple[isa.Instruction, ...]:
        out: List[isa.Instruction] = []
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                out.append(isa.Loop(instruction.count,
                                    walk(instruction.body)))
            elif isinstance(instruction, isa.Act):
                key = (instruction.channel, instruction.pseudo_channel,
                       instruction.bank, instruction.row)
                slot = slots.get(key)
                if slot is None:
                    slot = len(slots)
                    slots[key] = slot
                    binding.append(instruction.row)
                    slot_banks.append(key[:3])
                out.append(isa.Act(instruction.channel,
                                   instruction.pseudo_channel,
                                   instruction.bank, slot))
            else:
                out.append(instruction)
        return tuple(out)

    template = Program(walk(program.instructions))
    return template, tuple(binding), tuple(slot_banks)


def substitute(template: Program, slot_banks: SlotBanks,
               rows: RowBinding) -> Program:
    """Instantiate a template with a concrete row binding.

    Verification transfers from the insert-time instance only if the
    binding preserves slot distinctness per bank (see module
    docstring), so aliasing bindings are rejected.
    """
    if len(rows) != len(slot_banks):
        raise EngineError(
            f"program shape has {len(slot_banks)} row slot(s), "
            f"binding supplies {len(rows)}")
    bound = {(bank + (row,)) for bank, row in zip(slot_banks, rows)}
    if len(bound) != len(rows):
        raise EngineError(
            f"row binding {rows} aliases two slots of the same bank; "
            "activation counts would no longer match the verified shape")

    def walk(instructions) -> Tuple[isa.Instruction, ...]:
        out: List[isa.Instruction] = []
        for instruction in instructions:
            if isinstance(instruction, isa.Loop):
                out.append(isa.Loop(instruction.count,
                                    walk(instruction.body)))
            elif isinstance(instruction, isa.Act):
                out.append(isa.Act(instruction.channel,
                                   instruction.pseudo_channel,
                                   instruction.bank,
                                   rows[instruction.row]))
            else:
                out.append(instruction)
        return tuple(out)

    return Program(walk(template.instructions))


def shape_digest(template: Program, timing, device_identity: str = "") -> str:
    """blake2b over the template's assembly, timing, and device identity.

    ``device_identity`` is the executing device family's identity string
    (profile name + geometry + TRR policy — see
    :meth:`repro.dram.profiles.DeviceProfile.identity`).  Including it
    keeps verified programs from aliasing across device families that
    happen to share an assembly text and timing table: a verdict is only
    transferable to the device it was verified against.
    """
    payload = (disassemble(template).encode("ascii")
               + b"\x00" + repr(timing).encode("ascii")
               + b"\x00" + device_identity.encode("ascii"))
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class ProgramCache:
    """Verified-program store with row-address patching.

    One cache serves one station (board): entries are compiled against
    the station's backend and verified against its timing table, so the
    engine session owns construction (see
    :class:`repro.engine.session.EngineSession`).
    """

    def __init__(self, backend, max_entries: int = DEFAULT_MAX_ENTRIES
                 ) -> None:
        self._backend = backend
        self._max_entries = max_entries
        self._keys: Dict[tuple, "CompiledProgram"] = {}
        self._digests: Dict[str, "CompiledProgram"] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._digests)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def execute(self, key: tuple, rows: RowBinding,
                build: Callable[[], Program],
                verify: Optional[Callable[[Program], None]] = None):
        """Run the program ``build()`` describes, via the cache.

        Args:
            key: structural shape key — must determine the program up
                to its row binding (callers include every non-row
                parameter that reaches the builder).
            rows: the program's row binding in first-ACT order.
            build: constructs the program (with whatever build-time
                protocol checking the uncached path performs).  Called
                on a miss only.
            verify: full static verification for the built program
                (verify-at-cache-insert).  Called on a miss only; hits
                inherit the insert-time report by the substitution
                argument in the module docstring.

        Returns the backend's :class:`~repro.bender.interpreter.
        ExecutionResult`.
        """
        rows = tuple(rows)
        entry = self._keys.get(key)
        metrics = get_metrics()
        if entry is None:
            self.misses += 1
            metrics.counter("engine.cache.misses").inc()
            program = build()
            if verify is not None:
                verify(program)
            handle = self._backend.compile(program)
            if handle.source_binding != rows:
                raise EngineError(
                    f"cache key {key!r} declared row binding {rows} but "
                    f"the built program binds {handle.source_binding}")
            entry = self._digests.setdefault(handle.digest, handle)
            if len(self._keys) < self._max_entries:
                self._keys[key] = entry
        else:
            self.hits += 1
            metrics.counter("engine.cache.hits").inc()
        return self._backend.execute(entry, rows)

"""The planner: one sweep grid, one ordered stream of work items.

A characterization campaign is a nested iteration over (channel, pseudo
channel, bank, region).  :class:`ExecutionPlan` materializes that
iteration as an ordered tuple of :class:`WorkItem`\\ s — *the* plan —
and every scheduler consumes the same plan:

* the serial path (:class:`~repro.core.sweeps.SpatialSweep`) runs the
  items in order, in-process;
* the parallel path (:class:`~repro.core.parallel.ParallelSweepRunner`)
  partitions the plan into shards (``ShardPlan`` is exactly this
  stream, one shard per item) and merges results back in plan order;
* checkpoint/resume replays the plan and fills in items already
  satisfied from disk.

Byte-identical output across the three falls out by construction:
record order equals plan order equals the serial nesting order.

This module deliberately has no dependency on the sweep layer — the
config object only needs the grid attributes and ``dataclasses.
replace`` (it is a frozen dataclass), which keeps the import graph
acyclic: ``core.sweeps`` imports the engine, not vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Sequence, Tuple


def chunk_items(items: Sequence, batch_size: int) -> List[List]:
    """Partition ``items`` into contiguous batches, preserving order.

    The dispatch unit of the warm pool backend: submitting plan slices
    instead of single items amortizes per-future overhead, and because
    the slices are contiguous in plan order, concatenating batch
    results in submission order is still plan order.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return [list(items[start:start + batch_size])
            for start in range(0, len(items), batch_size)]


@dataclass(frozen=True)
class WorkItem:
    """One independent unit of a campaign: a (ch, pc, bank, region) cell."""

    index: int
    channel: int
    pseudo_channel: int
    bank: int
    region: str

    def describe(self) -> str:
        return (f"ch{self.channel} pc{self.pseudo_channel} "
                f"ba{self.bank} region={self.region}")

    def coords(self) -> dict:
        return {"channel": self.channel,
                "pseudo_channel": self.pseudo_channel,
                "bank": self.bank, "region": self.region}


def item_coords(item) -> dict:
    """Deterministic event/telemetry coordinates of a plan item.

    Duck-typed over everything the schedulers dispatch — a
    :class:`WorkItem`, a ``SweepShard`` wrapping one, or a fleet device
    (``span_kind == "device"``), which reports (device, seed) instead of
    a grid cell.
    """
    if getattr(item, "span_kind", "shard") == "device":
        return {"device": item.index, "seed": item.seed}
    return {"channel": item.channel, "pseudo_channel": item.pseudo_channel,
            "bank": item.bank, "region": item.region}


@dataclass(frozen=True)
class ExecutionPlan:
    """All work items of one sweep, in the serial nesting order."""

    items: Tuple[WorkItem, ...]

    @classmethod
    def from_config(cls, config) -> "ExecutionPlan":
        """Plan a sweep config's grid (channel -> pc -> bank -> region)."""
        items: List[WorkItem] = []
        for channel in config.channels:
            for pseudo_channel in config.pseudo_channels:
                for bank in config.banks:
                    for region in config.regions:
                        items.append(WorkItem(
                            index=len(items), channel=channel,
                            pseudo_channel=pseudo_channel, bank=bank,
                            region=region))
        return cls(items=tuple(items))

    @staticmethod
    def narrow_config(config, item: WorkItem):
        """``config`` narrowed to one item's cell.

        WCDP synthesis is disabled (it runs once, on the merged
        dataset) and ``jobs`` forced to 1 (an item is the unit of
        parallelism).
        """
        return replace(config, channels=(item.channel,),
                       pseudo_channels=(item.pseudo_channel,),
                       banks=(item.bank,), regions=(item.region,),
                       append_wcdp=False, jobs=1)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[WorkItem]:
        return iter(self.items)

"""The subprocess execution backend: work items on warm worker pools.

This is the engine's second :class:`~repro.engine.backend` — where
:class:`~repro.engine.backend.LocalBackend` runs programs in-process,
:class:`PoolBackend` schedules whole plan items onto a
:class:`concurrent.futures.ProcessPoolExecutor`.

The pool is **persistent and warm**: one executor is owned per
:class:`PoolBackend` (one per campaign) and reused across retry
rounds, so board construction, the §3.1 controls, and the program
cache are paid once per *worker process* — not once per attempt, as
the earlier build-a-pool-per-round design paid them.  Three further
overheads of that design are amortized here:

* the :class:`~repro.bender.board.BoardSpec` and the per-item runner
  are shipped **once per worker** via the pool initializer instead of
  being pickled into every ``submit``;
* the per-item session key — previously ``pickle.dumps((spec,
  config.experiment))`` on every item — is a cheap blake2b digest
  precomputed once in the parent and handed to the workers;
* work items are dispatched in **batches** (contiguous plan slices),
  so the per-future submit/pickle/wakeup overhead is paid per batch
  rather than per item.  Batch results carry one ``(index, ok,
  payload)`` outcome per item, so a failing item quarantines alone
  instead of sinking its batch.

Each worker process keeps a small LRU of
:class:`~repro.engine.session.EngineSession`\\ s keyed by session
digest (``$REPRO_WORKER_SESSIONS`` entries, default 4), so long-lived
workers that see many specs — a fleet-population run rotates through
hundreds of device seeds — do not accumulate board state without
bound.

Scheduling semantics (the parent side of :meth:`PoolBackend.run`):

* per-batch deadlines are armed when the pool *dispatches* the batch
  (``future.running()``), not at submission, so a long queue behind a
  few slow items is not misread as a hang; a batch's budget is
  ``timeout_s`` per item it carries, and completed batches drop their
  deadline entries immediately;
* a timed-out batch whose future cannot be cancelled is still
  occupying a worker slot — counted via the ``sweep.shard_zombies``
  metric — and the executor is recycled at the end of the run so the
  zombie cannot starve later rounds;
* when nothing is running and nothing has completed for a full
  timeout, the queued items are failed fast as ``starved`` instead of
  waiting out a timeout each;
* ``sequential=True`` (used by retry rounds) dispatches items one at
  a time on the same warm pool, so a hard worker crash takes down
  only the item that crashed — the executor is recycled and the next
  item proceeds on a fresh pool, while exception-only retries keep
  their warm sessions;
* worker-side failures arrive as picklable
  :class:`~repro.core.parallel.ShardRunError` with the item's wall
  time and metric snapshot.

Fault injection happens here, at the session boundary: injected
execution faults fire at item entry — keyed on (coordinates, attempt),
so retries redraw — and the dataset is fingerprinted before any
injected readback poisoning, letting the parent detect the poisoning
exactly as it would detect real in-transit corruption.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import Future  # noqa: F401  (typing)
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bender.board import BoardSpec
from repro.core.results import CharacterizationDataset
from repro.core.sweeps import SpatialSweep
from repro.engine.plan import chunk_items, item_coords
from repro.engine.session import EngineSession
from repro.envutil import env_int
from repro.errors import PoolDegradedError, ShardFault
from repro.faults.plan import FaultPlan, resolve_fault_spec
from repro.rng import uniform_hash01
from repro.obs import (
    NOOP_TRACER,
    EventBus,
    MetricsRegistry,
    Tracer,
    get_events,
    get_metrics,
    use_metrics,
    use_tracer,
)

#: Cadence of the dispatch/deadline poll when a timeout is set.
_POLL_S = 0.05

#: Crash-loop budget (``$REPRO_POOL_CRASH_BUDGET``): consecutive pool
#: recycles caused by worker crashes before the circuit breaker opens
#: and the backend refuses to rebuild (:class:`~repro.errors.
#: PoolDegradedError`), letting the runner fall back to serial
#: execution instead of burning CPU on a deterministic crasher.
CRASH_BUDGET_VAR = "REPRO_POOL_CRASH_BUDGET"
_DEFAULT_CRASH_BUDGET = 3

#: Base backoff before rebuilding a crashed pool (doubles per
#: consecutive crash, with seeded jitter).
_RECYCLE_BACKOFF_S = 0.05

#: Worker-process session LRU bound (``$REPRO_WORKER_SESSIONS``): how
#: many engine sessions a long-lived worker keeps warm before evicting
#: the least-recently-used one.  Campaign workers only ever see one
#: session; fleet workers rotate through many device specs.
SESSION_CACHE_VAR = "REPRO_WORKER_SESSIONS"
_DEFAULT_SESSION_CACHE = 4

#: Per-process session cache: engine sessions (board + controls +
#: program cache) keyed by session digest, LRU-bounded, reused across
#: the items a worker executes — including across retry rounds, since
#: the pool (and therefore the worker) now outlives a round.
_WORKER_SESSIONS: "OrderedDict[str, EngineSession]" = OrderedDict()

#: Per-worker execution context installed by :func:`_pool_initializer`:
#: the board spec, the per-item runner, and the precomputed session
#: digest — shipped once per worker instead of once per submit.
_WORKER_STATE: Dict[str, object] = {}


def session_key(spec: BoardSpec, experiment) -> str:
    """Digest keying one engine session: (board spec, experiment).

    Computed once per campaign in the parent and shipped to workers via
    the pool initializer; the previous design paid a full
    ``pickle.dumps((spec, config.experiment))`` on *every* item.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(pickle.dumps((spec, experiment)))
    return hasher.hexdigest()


def worker_session(spec: BoardSpec, config,
                   key: Optional[str] = None) -> EngineSession:
    """The calling process's session for ``spec`` (built on first use).

    Sessions live in a per-process LRU bounded by
    ``$REPRO_WORKER_SESSIONS`` (default 4): a hit refreshes the entry,
    a miss builds the session and evicts the least-recently-used one
    beyond the bound, releasing its board state.  ``key`` is the
    precomputed session digest when the caller has one (the pool ships
    it per worker); without it the digest is computed here.
    """
    if key is None:
        key = session_key(spec, config.experiment)
    session = _WORKER_SESSIONS.get(key)
    if session is not None:
        _WORKER_SESSIONS.move_to_end(key)
        return session
    session = EngineSession(spec=spec, experiment=config.experiment)
    _WORKER_SESSIONS[key] = session
    get_metrics().counter("engine.pool.sessions_built").inc()
    cap = env_int(SESSION_CACHE_VAR, _DEFAULT_SESSION_CACHE, minimum=1)
    while len(_WORKER_SESSIONS) > cap:
        _, evicted = _WORKER_SESSIONS.popitem(last=False)
        evicted.release()
        get_metrics().counter("engine.pool.sessions_evicted").inc()
    return session


def _pool_initializer(spec: BoardSpec, runner: Callable,
                      key: Optional[str]) -> None:
    """Install the per-worker execution context (runs once per worker).

    Also clears any session state inherited over ``fork`` from a parent
    that ran items inline, so a worker's cache accounting starts empty.
    """
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["runner"] = runner
    _WORKER_STATE["key"] = key
    _WORKER_SESSIONS.clear()


def run_shard(spec: BoardSpec, shard,
              key: Optional[str] = None) -> CharacterizationDataset:
    """Execute one work item in the current process; returns its dataset.

    The default item runner for worker processes; also usable inline
    (e.g. by tests) since it has no pool-specific state.  Every item
    runs under its own metrics registry (cheap enough to be always-on)
    so that a *failing* item can report its wall time and metric
    snapshot via :class:`~repro.core.parallel.ShardRunError`.
    """
    from repro.core.parallel import ShardRunError

    obs = shard.config.obs
    want_trace = bool(obs is not None and obs.trace)
    registry = MetricsRegistry()
    tracer = Tracer() if want_trace else NOOP_TRACER
    kind = getattr(shard, "span_kind", "shard")
    attrs = {kind: shard.index}
    attrs.update(item_coords(shard))
    if obs is not None and obs.events_path:
        # The item-loop heartbeat: one O_APPEND line into the shared
        # live event log at item pickup, so a stalled worker is visible
        # as a heartbeat with no matching completion.
        EventBus(obs.events_path, epoch=obs.epoch, truncate=False).emit(
            "worker_heartbeat", item=shard.index, attempt=shard.attempt,
            **item_coords(shard))
    started = time.perf_counter()
    try:
        with use_metrics(registry), use_tracer(tracer):
            with tracer.span(kind, **attrs) as span:
                fault_spec = resolve_fault_spec(shard.config.faults)
                if fault_spec is not None and (
                        fault_spec.has_shard_faults
                        or fault_spec.has_process_faults):
                    from repro.faults.inject import injure_worker
                    injure_worker(FaultPlan(fault_spec), shard.channel,
                                  shard.pseudo_channel, shard.bank,
                                  shard.region, shard.attempt)
                session = worker_session(spec, shard.config, key=key)
                board = session.station()
                sweep = SpatialSweep(board, shard.config)
                dataset = sweep.run(apply_interference_controls=False)
                span.set(records=sum(dataset.record_counts()))
                dataset.metadata["integrity"] = dataset.fingerprint()
                if fault_spec is not None and fault_spec.shard_poison:
                    from repro.faults.inject import poison_dataset
                    poison_dataset(FaultPlan(fault_spec), dataset,
                                   shard.channel, shard.pseudo_channel,
                                   shard.bank, shard.region, shard.attempt)
    except Exception as error:
        wall_s = time.perf_counter() - started
        registry.gauge("shard.wall_s").set(wall_s)
        category = (error.category if isinstance(error, ShardFault)
                    else "error")
        raise ShardRunError(type(error).__name__, str(error), wall_s,
                            registry.snapshot(), category) from error
    wall_s = time.perf_counter() - started
    registry.gauge("shard.wall_s").set(wall_s)
    registry.gauge("shard.records").set(sum(dataset.record_counts()))
    if obs is not None and obs.active:
        if want_trace:
            tracer.write_jsonl(obs.trace_path(shard.index))
        registry.to_json(obs.metrics_path(shard.index))
    return dataset


#: One item's outcome inside a batch result: (item index, completed?,
#: dataset-or-exception).  Exceptions must be picklable — run_shard
#: wraps everything in ShardRunError; custom runners' raw exceptions
#: cross the boundary exactly as they did as per-item future results.
BatchOutcome = Tuple[int, bool, object]


def _run_batch(jobs: Sequence) -> List[BatchOutcome]:
    """Worker entry point: run one batch of items, one outcome each.

    Uses the worker context installed by :func:`_pool_initializer`, so
    the batch payload is just the items.  A failing item contributes
    its exception as an outcome instead of aborting the batch — items
    quarantine individually, exactly as they did as separate futures.
    """
    spec: BoardSpec = _WORKER_STATE["spec"]  # type: ignore[assignment]
    runner: Callable = _WORKER_STATE["runner"]  # type: ignore[assignment]
    key = _WORKER_STATE.get("key")
    outcomes: List[BatchOutcome] = []
    for job in jobs:
        try:
            if runner is run_shard:
                result = run_shard(spec, job, key=key)
            else:
                result = runner(spec, job)
        except Exception as error:
            outcomes.append((job.index, False, error))
        else:
            outcomes.append((job.index, True, result))
    return outcomes


#: Callback signatures for :meth:`PoolBackend.run`.
ResultHandler = Callable[[object, CharacterizationDataset], None]
FailureHandler = Callable[[object, BaseException], None]

#: Target dispatch batches per worker when auto-sizing: small enough to
#: load-balance uneven item costs, large enough to amortize per-future
#: overhead.  A campaign with fewer than ``workers * _BATCHES_PER_WORKER``
#: items degenerates to one item per batch (the pre-batching semantics).
_BATCHES_PER_WORKER = 4


class PoolBackend:
    """Schedules work items onto one persistent warm worker pool."""

    def __init__(self, spec: BoardSpec, *,
                 runner: Optional[Callable] = None,
                 timeout_s: Optional[float] = None,
                 mp_context=None,
                 experiment=None,
                 batch_size: Optional[int] = None) -> None:
        """
        Args:
            spec: recipe each worker rebuilds its own station from
                (shipped once per worker via the pool initializer).
            runner: per-item entry point (must be picklable; defaults
                to :func:`run_shard`).
            timeout_s: per-item wall-clock limit, measured from
                dispatch (None = unlimited); a batch's budget is this
                times the items it carries.
            mp_context: multiprocessing context (None = platform
                default).
            experiment: the campaign's experiment config; when given,
                the session digest is precomputed here instead of
                pickled per item in the workers.
            batch_size: items per dispatch batch (None = auto:
                ``len(items) / (workers * 4)``, at least 1).
        """
        self._spec = spec
        self._runner = runner or run_shard
        self._timeout_s = timeout_s
        self._mp_context = mp_context
        self._session_key = (session_key(spec, experiment)
                             if experiment is not None else None)
        self._batch_size = batch_size
        self._executor: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._recycle = False
        self._builds = 0
        self._reuses = 0
        #: Consecutive crash-caused recycles (reset by a healthy batch).
        self._crash_streak = 0
        #: Injectable for tests; seeded backoff between crash rebuilds.
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    @property
    def pool_builds(self) -> int:
        """Executors constructed so far (1 = fully warm campaign)."""
        return self._builds

    @property
    def pool_reuses(self) -> int:
        """Dispatch rounds that reused the warm executor."""
        return self._reuses

    def _note_crash(self) -> None:
        """Record one crash-caused recycle (at most one per round)."""
        if not self._recycle:
            self._crash_streak += 1
            get_metrics().counter("engine.pool.worker_crashes").inc()
        self._recycle = True

    def _ensure_executor(self, workers: int) -> ProcessPoolExecutor:
        """The warm executor, (re)built only when needed.

        Rebuilds when none exists, when the previous round marked it
        for recycling (broken pool, zombie worker, starvation), or when
        a round needs more workers than the pool has.

        The rebuild path is supervised.  A crash streak (consecutive
        crash-caused recycles with no healthy batch between them) backs
        off with seeded jitter and shrinks the pool — a crashing
        machine gets a smaller, slower-restarting pool, not a hot loop
        of fork storms.  At ``$REPRO_POOL_CRASH_BUDGET`` consecutive
        crashes (default 3), or when the OS refuses to fork at all, the
        circuit breaker opens: :class:`~repro.errors.PoolDegradedError`
        tells the runner to stop using the pool and finish the campaign
        serially in-process.
        """
        if self._executor is not None and (self._recycle
                                           or workers > self._workers):
            self._retire()
        if self._executor is None:
            if self._crash_streak:
                budget = env_int(CRASH_BUDGET_VAR, _DEFAULT_CRASH_BUDGET,
                                 minimum=1)
                if self._crash_streak >= budget:
                    get_metrics().counter("engine.pool.breaker_open").inc()
                    raise PoolDegradedError(
                        f"worker pool crashed {self._crash_streak} "
                        f"consecutive round(s), reaching the crash-loop "
                        f"budget ({budget}); refusing to rebuild",
                        crashes=self._crash_streak)
                jitter = 0.5 + uniform_hash01(
                    self._spec.seed, ("pool-recycle", self._crash_streak))
                self._sleep(_RECYCLE_BACKOFF_S
                            * 2 ** (self._crash_streak - 1) * jitter)
                workers = max(1, workers >> self._crash_streak)
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=self._mp_context,
                    initializer=_pool_initializer,
                    initargs=(self._spec, self._runner, self._session_key))
            except OSError as error:
                get_metrics().counter("engine.pool.breaker_open").inc()
                raise PoolDegradedError(
                    f"cannot (re)build worker pool: {error}",
                    crashes=self._crash_streak) from error
            self._workers = workers
            self._builds += 1
            get_metrics().counter("engine.pool.builds").inc()
        else:
            self._reuses += 1
            get_metrics().counter("engine.pool.reuses").inc()
        return self._executor

    def _retire(self) -> None:
        """Drop the current executor without waiting for stragglers."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._recycle = False

    def close(self) -> None:
        """Shut the pool down (waits unless it was marked unhealthy)."""
        if self._executor is not None:
            self._executor.shutdown(wait=not self._recycle,
                                    cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "PoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, shards: List, workers: int, attempt: int,
            on_result: ResultHandler, on_failure: FailureHandler, *,
            sequential: bool = False) -> None:
        """Run ``shards`` on the warm pool of (at least) ``workers``.

        Every item ends in exactly one callback: ``on_result`` with its
        dataset, or ``on_failure`` with the error (worker exception,
        crash, dispatch-measured timeout, or starvation).

        ``sequential=True`` dispatches one item at a time: a crash
        poisons only the crashing item (the executor is recycled and
        the next item gets a fresh pool), which is how retry rounds
        contain a deterministic crasher without giving up warm
        sessions for ordinary exception retries.
        """
        if sequential:
            self._run_sequential(shards, attempt, on_result, on_failure)
            return
        timeout = self._timeout_s
        metrics = get_metrics()
        events = get_events()
        executor = self._ensure_executor(workers)
        size = self._batch_size or max(
            1, len(shards) // (workers * _BATCHES_PER_WORKER))
        live: Dict[Future, List] = {}
        batches = chunk_items(list(shards), size)
        for position, batch in enumerate(batches):
            jobs = [replace(shard, attempt=attempt) for shard in batch]
            try:
                future = executor.submit(_run_batch, jobs)
            except BrokenExecutor as error:
                self._note_crash()
                for unsent in batches[position:]:
                    for shard in unsent:
                        on_failure(shard, error)
                break
            live[future] = list(batch)
            metrics.counter("engine.pool.batches").inc()
            for shard in batch:
                events.emit("shard_dispatched", item=shard.index,
                            attempt=attempt, **item_coords(shard))
        deadlines: Dict[Future, float] = {}
        last_event = time.monotonic()
        # With an active bus the wait polls so subscribers (the live
        # progress renderer) see worker heartbeats as they land, not
        # only at batch completion.
        poll = (timeout is not None) or events.enabled
        while live:
            done, _ = futures_wait(
                list(live),
                timeout=(_POLL_S if poll else None),
                return_when=FIRST_COMPLETED)
            events.tick()
            now = time.monotonic()
            if done:
                last_event = now
            for future in done:
                batch = live.pop(future)
                deadlines.pop(future, None)
                try:
                    outcomes = future.result()
                except Exception as error:
                    if isinstance(error, BrokenExecutor):
                        self._note_crash()
                    for shard in batch:
                        on_failure(shard, error)
                else:
                    # A batch came back intact: the pool process layer
                    # is healthy, so the crash streak resets.
                    self._crash_streak = 0
                    self._deliver(batch, outcomes, on_result, on_failure)
            if timeout is None:
                continue
            for future, batch in live.items():
                if future not in deadlines and future.running():
                    deadlines[future] = now + timeout * len(batch)
            for future in [future for future in list(live)
                           if deadlines.get(future, now + 1) <= now]:
                batch = live.pop(future)
                deadlines.pop(future, None)
                if not future.cancel():
                    # The worker is still crunching: it occupies a slot
                    # until it finishes, so the pool must be recycled.
                    metrics.counter("sweep.shard_zombies").inc()
                self._recycle = True
                for shard in batch:
                    metrics.counter("sweep.shard_timeouts").inc()
                    on_failure(shard, FuturesTimeoutError(
                        f"shard {shard.describe()} exceeded "
                        f"shard_timeout_s={timeout} (batch budget "
                        f"{timeout * len(batch)}s for {len(batch)} "
                        f"item(s))"))
            if (live and now - last_event > timeout
                    and not any(future.running() for future in live)):
                self._recycle = True
                for future in list(live):
                    batch = live.pop(future)
                    deadlines.pop(future, None)
                    future.cancel()
                    for shard in batch:
                        metrics.counter("sweep.shard_starved").inc()
                        on_failure(shard, ShardFault(
                            f"shard {shard.describe()} starved: pool "
                            f"has no live workers left to run it",
                            category="starved"))
        if self._recycle:
            self._retire()

    # ------------------------------------------------------------------
    def _run_sequential(self, shards: List, attempt: int,
                        on_result: ResultHandler,
                        on_failure: FailureHandler) -> None:
        """One item at a time on the warm pool, crash-contained."""
        timeout = self._timeout_s
        metrics = get_metrics()
        events = get_events()
        for shard in shards:
            executor = self._ensure_executor(1)
            job = replace(shard, attempt=attempt)
            events.emit("shard_dispatched", item=shard.index,
                        attempt=attempt, **item_coords(shard))
            future = executor.submit(_run_batch, [job])
            try:
                # The pool is idle in sequential mode, so submission is
                # dispatch and the timeout measures from dispatch.
                outcomes = future.result(timeout=timeout)
            except FuturesTimeoutError:
                if not future.cancel():
                    metrics.counter("sweep.shard_zombies").inc()
                self._recycle = True
                self._retire()
                metrics.counter("sweep.shard_timeouts").inc()
                on_failure(shard, FuturesTimeoutError(
                    f"shard {shard.describe()} exceeded "
                    f"shard_timeout_s={timeout}"))
            except BrokenExecutor as error:
                self._note_crash()
                self._retire()
                on_failure(shard, error)
            except Exception as error:
                on_failure(shard, error)
            else:
                self._crash_streak = 0
                self._deliver([shard], outcomes, on_result, on_failure)
            events.tick()

    @staticmethod
    def _deliver(batch: List, outcomes: List[BatchOutcome],
                 on_result: ResultHandler,
                 on_failure: FailureHandler) -> None:
        """Fan a batch's outcomes out to the per-item callbacks."""
        by_index = {shard.index: shard for shard in batch}
        for index, completed, payload in outcomes:
            shard = by_index[index]
            if completed:
                on_result(shard, payload)
            else:
                on_failure(shard, payload)

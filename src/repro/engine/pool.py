"""The subprocess execution backend: work items on worker processes.

This is the engine's second :class:`~repro.engine.backend` — where
:class:`~repro.engine.backend.LocalBackend` runs programs in-process,
:class:`PoolBackend` schedules whole plan items onto a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each worker process
keeps one :class:`~repro.engine.session.EngineSession` per (board
spec, experiment config) — so board construction, the §3.1 controls,
and the program cache are paid once per station, exactly as a serial
campaign pays them once — and runs the item through the same serial
:class:`~repro.core.sweeps.SpatialSweep` reference path, so a shard's
dataset is byte-identical to the slice a serial sweep would produce.

Scheduling semantics (moved verbatim from ``core/parallel.py``, which
now orchestrates retries/merging on top of this backend):

* per-item deadlines are armed when the pool *dispatches* the work
  (``future.running()``), not at submission, so a long queue behind a
  few slow items is not misread as a hang;
* when nothing is running and nothing has completed for a full
  timeout, the queued items are failed fast as ``starved`` instead of
  waiting out a timeout each;
* worker-side failures arrive as picklable
  :class:`~repro.core.parallel.ShardRunError` with the item's wall
  time and metric snapshot.

Fault injection happens here, at the session boundary: injected
execution faults fire at item entry — keyed on (coordinates, attempt),
so retries redraw — and the dataset is fingerprinted before any
injected readback poisoning, letting the parent detect the poisoning
exactly as it would detect real in-transit corruption.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import Future  # noqa: F401  (typing)
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.bender.board import BoardSpec
from repro.core.results import CharacterizationDataset
from repro.core.sweeps import SpatialSweep
from repro.engine.session import EngineSession
from repro.errors import ShardFault
from repro.faults.plan import FaultPlan, resolve_fault_spec
from repro.obs import (
    NOOP_TRACER,
    MetricsRegistry,
    Tracer,
    get_metrics,
    use_metrics,
    use_tracer,
)

#: Cadence of the dispatch/deadline poll when a timeout is set.
_POLL_S = 0.05

#: Per-process session cache: one engine session (board + controls +
#: program cache) per (spec, experiment config), reused across the
#: items a worker executes.
_WORKER_SESSIONS: Dict[bytes, EngineSession] = {}


def worker_session(spec: BoardSpec, config) -> EngineSession:
    """The calling process's session for ``spec`` (built on first use)."""
    key = pickle.dumps((spec, config.experiment))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = EngineSession(spec=spec, experiment=config.experiment)
        _WORKER_SESSIONS[key] = session
    return session


def run_shard(spec: BoardSpec, shard) -> CharacterizationDataset:
    """Execute one work item in the current process; returns its dataset.

    The default item runner submitted to worker processes; also usable
    inline (e.g. by tests) since it has no pool-specific state.  Every
    item runs under its own metrics registry (cheap enough to be
    always-on) so that a *failing* item can report its wall time and
    metric snapshot via :class:`~repro.core.parallel.ShardRunError`.
    """
    from repro.core.parallel import ShardRunError

    obs = shard.config.obs
    want_trace = bool(obs is not None and obs.trace)
    registry = MetricsRegistry()
    tracer = Tracer() if want_trace else NOOP_TRACER
    started = time.perf_counter()
    try:
        with use_metrics(registry), use_tracer(tracer):
            with tracer.span("shard", shard=shard.index,
                             channel=shard.channel,
                             pseudo_channel=shard.pseudo_channel,
                             bank=shard.bank, region=shard.region):
                fault_spec = resolve_fault_spec(shard.config.faults)
                if fault_spec is not None and fault_spec.has_shard_faults:
                    from repro.faults.inject import injure_worker
                    injure_worker(FaultPlan(fault_spec), shard.channel,
                                  shard.pseudo_channel, shard.bank,
                                  shard.region, shard.attempt)
                session = worker_session(spec, shard.config)
                board = session.station()
                sweep = SpatialSweep(board, shard.config)
                dataset = sweep.run(apply_interference_controls=False)
                dataset.metadata["integrity"] = dataset.fingerprint()
                if fault_spec is not None and fault_spec.shard_poison:
                    from repro.faults.inject import poison_dataset
                    poison_dataset(FaultPlan(fault_spec), dataset,
                                   shard.channel, shard.pseudo_channel,
                                   shard.bank, shard.region, shard.attempt)
    except Exception as error:
        wall_s = time.perf_counter() - started
        registry.gauge("shard.wall_s").set(wall_s)
        category = (error.category if isinstance(error, ShardFault)
                    else "error")
        raise ShardRunError(type(error).__name__, str(error), wall_s,
                            registry.snapshot(), category) from error
    wall_s = time.perf_counter() - started
    registry.gauge("shard.wall_s").set(wall_s)
    registry.gauge("shard.records").set(sum(dataset.record_counts()))
    if obs is not None and obs.active:
        if want_trace:
            tracer.write_jsonl(obs.trace_path(shard.index))
        registry.to_json(obs.metrics_path(shard.index))
    return dataset


#: Callback signatures for :meth:`PoolBackend.run`.
ResultHandler = Callable[[object, CharacterizationDataset], None]
FailureHandler = Callable[[object, BaseException], None]


class PoolBackend:
    """Schedules work items onto worker-process pools."""

    def __init__(self, spec: BoardSpec, *,
                 runner: Optional[Callable] = None,
                 timeout_s: Optional[float] = None,
                 mp_context=None) -> None:
        """
        Args:
            spec: recipe each worker rebuilds its own station from.
            runner: per-item entry point (must be picklable; defaults
                to :func:`run_shard`).
            timeout_s: per-item wall-clock limit, measured from
                dispatch (None = unlimited).
            mp_context: multiprocessing context (None = platform
                default).
        """
        self._spec = spec
        self._runner = runner or run_shard
        self._timeout_s = timeout_s
        self._mp_context = mp_context

    def run(self, shards: List, workers: int, attempt: int,
            on_result: ResultHandler, on_failure: FailureHandler) -> None:
        """Run ``shards`` on one fresh pool of ``workers`` processes.

        Every item ends in exactly one callback: ``on_result`` with its
        dataset, or ``on_failure`` with the error (worker exception,
        crash, dispatch-measured timeout, or starvation).
        """
        timeout = self._timeout_s
        metrics = get_metrics()
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=self._mp_context)
        abandoned = False
        try:
            live: Dict[int, Tuple[object, Future]] = {}
            for shard in shards:
                job = replace(shard, attempt=attempt)
                live[shard.index] = (
                    shard, executor.submit(self._runner, self._spec, job))
            deadlines: Dict[int, float] = {}
            last_event = time.monotonic()
            while live:
                done, _ = futures_wait(
                    [future for _, future in live.values()],
                    timeout=(_POLL_S if timeout is not None else None),
                    return_when=FIRST_COMPLETED)
                now = time.monotonic()
                if done:
                    last_event = now
                for index in [index for index, (_, future) in live.items()
                              if future in done]:
                    shard, future = live.pop(index)
                    try:
                        dataset = future.result()
                    except Exception as error:
                        on_failure(shard, error)
                    else:
                        on_result(shard, dataset)
                if timeout is None:
                    continue
                for index, (_, future) in live.items():
                    if index not in deadlines and future.running():
                        deadlines[index] = now + timeout
                for index in [index for index in list(live)
                              if deadlines.get(index, now + 1) <= now]:
                    shard, future = live.pop(index)
                    future.cancel()
                    abandoned = True
                    metrics.counter("sweep.shard_timeouts").inc()
                    on_failure(shard, FuturesTimeoutError(
                        f"shard {shard.describe()} exceeded "
                        f"shard_timeout_s={timeout}"))
                if (live and now - last_event > timeout
                        and not any(future.running()
                                    for _, future in live.values())):
                    abandoned = True
                    for index in list(live):
                        shard, future = live.pop(index)
                        future.cancel()
                        metrics.counter("sweep.shard_starved").inc()
                        on_failure(shard, ShardFault(
                            f"shard {shard.describe()} starved: pool has "
                            f"no live workers left to run it",
                            category="starved"))
        finally:
            executor.shutdown(wait=not abandoned, cancel_futures=True)

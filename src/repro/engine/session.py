"""The engine session: one configured testing station, set up once.

Before the engine existed, four call sites (``sweeps.py``,
``parallel.py``, ``campaign.py`` resume, ``cli.py``) each wired up the
same station plumbing — board construction from a
:class:`~repro.bender.board.BoardSpec`, the §3.1 interference
controls, thermal-guard arming from the fault plan, and (now) the
program cache.  :class:`EngineSession` is that logic in exactly one
place:

* :meth:`prepare` — the serial sweep's entry: applies the controls
  under the ``controls`` tracing span (unless the caller already did).
* :meth:`station` — the worker/CLI entry: builds the board lazily and
  applies the controls exactly once per session, with no extra span
  (re-settling the PID rig between shards could land on a fractionally
  different plant temperature and break bit-for-bit equality with the
  serial path).
* :meth:`thermal_guard` — arms the §3 thermal excursion guard *after*
  the controls settle the rig, so it captures the calibrated operating
  point to snap back to.

Activating a session installs the engine's execution services on the
board's host: an execution backend and — gated by
``$REPRO_PROGRAM_CACHE`` (default on) — a
:class:`~repro.engine.cache.ProgramCache` plus the interpreter's
row-payload lowering cache.  The backend is the analytic
:class:`~repro.engine.backend.FastPathBackend` when both the program
cache and ``$REPRO_FASTPATH`` (default on) are enabled; with the cache
off there is no summary source, so the session quietly installs the
plain :class:`~repro.engine.backend.LocalBackend` instead — disabling
the cache disables the fast path, it never errors.  Experiment drivers
reach these through ``host.cached_run`` and the host's row helpers;
none of them builds a board or an interpreter itself.
"""

from __future__ import annotations

from typing import Optional

from repro.bender.board import BenderBoard, BoardSpec
from repro.engine.backend import FastPathBackend, LocalBackend
from repro.engine.cache import ProgramCache
from repro.envutil import fastpath_enabled, program_cache_enabled
from repro.errors import EngineError
from repro.faults.plan import FaultPlan, FaultSpec, resolve_fault_spec
from repro.faults.thermal import ThermalGuard
from repro.obs import get_tracer


class EngineSession:
    """Owns one station's construction and execution services."""

    def __init__(self, *, spec: Optional[BoardSpec] = None,
                 board: Optional[BenderBoard] = None,
                 experiment=None, cache: Optional[bool] = None,
                 fastpath: Optional[bool] = None,
                 profile: Optional[str] = None) -> None:
        """
        Args:
            spec: recipe to build the board from (lazily, on first use).
            board: an existing station to adopt instead.
            experiment: interference controls and test parameters.
            cache: force the program cache on/off; None consults
                ``$REPRO_PROGRAM_CACHE`` (default on).
            fastpath: force the analytic fast path on/off; None
                consults ``$REPRO_FASTPATH`` (default on).  Effective
                only with the cache enabled — summaries live on cached
                program shapes.
            profile: device-family profile name to build the station
                with (:mod:`repro.dram.profiles`); applied onto
                ``spec`` (which must not already name a *different*
                family).  Ignored for adopted boards.
        """
        # Lazy import: core.sweeps imports this module, and the core
        # package __init__ eagerly imports sweeps — a module-level
        # import of core.experiment here would close that cycle.
        from repro.core.experiment import ExperimentConfig
        if spec is None and board is None:
            raise EngineError("EngineSession needs a BoardSpec or a board")
        if profile is not None and spec is not None:
            from dataclasses import replace
            if spec.device_profile is not None and \
                    spec.device_profile != profile:
                raise EngineError(
                    f"session profile {profile!r} conflicts with the "
                    f"spec's device profile {spec.device_profile!r}")
            spec = replace(spec, device_profile=profile)
        self._spec = spec
        self._board = board
        self.experiment = experiment or ExperimentConfig()
        self._cache_enabled = (program_cache_enabled() if cache is None
                               else bool(cache))
        self._fastpath_enabled = (fastpath_enabled() if fastpath is None
                                  else bool(fastpath))
        self._controls_applied = False

    @property
    def board(self) -> BenderBoard:
        """The station (built from the spec on first access)."""
        if self._board is None:
            self._board = self._spec.build()
        board = self._board
        if board.host.engine_backend is None:
            self._install_engine(board)
        return board

    @property
    def host(self):
        return self.board.host

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    @property
    def fastpath_enabled(self) -> bool:
        """Whether the analytic fast path is active (needs the cache)."""
        return self._fastpath_enabled and self._cache_enabled

    def _install_engine(self, board: BenderBoard) -> None:
        if self.fastpath_enabled:
            backend = FastPathBackend(board.host)
        else:
            backend = LocalBackend(board.host)
        board.host.engine_backend = backend
        if self._cache_enabled:
            board.host.interpreter.enable_payload_cache()
            board.host.program_cache = ProgramCache(backend)

    # ------------------------------------------------------------------
    def prepare(self, apply_interference_controls: bool = True
                ) -> BenderBoard:
        """Serial-sweep setup: §3.1 controls under a tracing span."""
        from repro.core.experiment import apply_controls
        board = self.board
        if apply_interference_controls:
            with get_tracer().span("controls"):
                apply_controls(board, self.experiment)
            self._controls_applied = True
        return board

    def station(self) -> BenderBoard:
        """Worker/CLI setup: controls applied exactly once, no span."""
        from repro.core.experiment import apply_controls
        board = self.board
        if not self._controls_applied:
            apply_controls(board, self.experiment)
            self._controls_applied = True
        return board

    def release(self) -> None:
        """Drop the station so its simulator state can be reclaimed.

        Called when a worker's session LRU evicts this session: the
        board (cell ground truth, stored row data, program cache) is
        the bulk of a session's footprint, and a re-used session would
        rebuild it from the spec anyway.  Releasing a board-adopting
        session (no spec) is refused — it could never rebuild.
        """
        if self._spec is None:
            raise EngineError(
                "cannot release a session that adopted an existing "
                "board (no spec to rebuild from)")
        self._board = None
        self._controls_applied = False

    # ------------------------------------------------------------------
    def thermal_guard(self, faults: Optional[FaultSpec]
                      ) -> Optional[ThermalGuard]:
        """The thermal excursion guard for ``faults`` (None = consult
        ``$REPRO_FAULTS``); arm only after the controls have settled."""
        fault_spec = resolve_fault_spec(faults)
        if fault_spec is not None and fault_spec.has_thermal_faults:
            return ThermalGuard(self.board, FaultPlan(fault_spec))
        return None

"""Shared environment-variable parsing.

Every knob the repo reads from the environment goes through this module,
so parsing and validation behave identically whether a variable is
consumed by the sweep layer (``REPRO_ROWS_PER_REGION``), the parallel
executor (``REPRO_JOBS``), the fault-injection hook (``REPRO_FAULTS``)
or the execution engine (``REPRO_PROGRAM_CACHE``).  Raises
:class:`~repro.errors.ExperimentError` on malformed values — an env
typo should fail loudly, not silently fall back to a default.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ExperimentError

#: Gate for the engine's verified-program cache (default: enabled).
PROGRAM_CACHE_VAR = "REPRO_PROGRAM_CACHE"

#: Gate for the engine's analytic (effect-summary) fast path
#: (default: enabled).  The fast path consumes summaries stored with
#: cached program shapes, so disabling the program cache disables it
#: too — there is no summary source without the cache.
FASTPATH_VAR = "REPRO_FASTPATH"

_TRUTHY = frozenset(("1", "true", "yes", "on"))
_FALSY = frozenset(("0", "false", "no", "off"))


def env_str(name: str) -> Optional[str]:
    """The raw value of ``name``, or None when unset or empty."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() == "":
        return None
    return raw


def env_int(name: str, default: int, minimum: int = 0) -> int:
    """Integer env var with a lower bound (``>= minimum``, not clamped:
    a below-minimum value raises, surfacing the misconfiguration)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ExperimentError(
            f"environment variable {name} must be an int, "
            f"got {raw!r}") from None
    if value < minimum:
        raise ExperimentError(
            f"environment variable {name} must be >= {minimum}, got {value}")
    return value


def env_flag(name: str, default: bool) -> bool:
    """Boolean env var: 1/true/yes/on vs 0/false/no/off (case-insensitive)."""
    raw = env_str(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ExperimentError(
        f"environment variable {name} must be a boolean flag "
        f"(0/1/true/false), got {raw!r}")


def env_jobs(default: int = 1) -> int:
    """Worker-process count from ``$REPRO_JOBS`` (minimum 1)."""
    return env_int("REPRO_JOBS", default, minimum=1)


def program_cache_enabled() -> bool:
    """Whether ``$REPRO_PROGRAM_CACHE`` enables the engine's program
    cache (unset = enabled; the CI cache-correctness job sets 0/1 and
    diffs dataset fingerprints)."""
    return env_flag(PROGRAM_CACHE_VAR, True)


def fastpath_enabled() -> bool:
    """Whether ``$REPRO_FASTPATH`` enables the engine's analytic fast
    path (unset = enabled; the CI fastpath-equivalence job sets 0/1 and
    diffs dataset fingerprints).  Only effective when the program cache
    is also enabled."""
    return env_flag(FASTPATH_VAR, True)

"""Exception hierarchy for the HBM2 RowHammer reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class AddressError(ReproError):
    """A DRAM address is outside the device geometry or malformed."""


class CommandError(ReproError):
    """A DRAM command is illegal in the device's current state.

    Examples: activating an already-open bank, reading from a precharged
    bank, or writing to a column of a row that is not open.
    """


class TimingViolationError(CommandError):
    """A DRAM command violates a timing constraint (e.g. tRC, tRAS, tRP)."""


class ProgramError(ReproError):
    """A DRAM Bender test program is malformed (bad loop nesting, operands)."""


class AssemblyError(ProgramError):
    """Test-program assembly text could not be parsed."""


class EngineError(ProgramError):
    """The execution engine was used inconsistently (e.g. a cached
    program shape instantiated with a row binding that does not fit
    its slots)."""


class VerificationError(ProgramError):
    """A test program failed static verification.

    Carries the list of :class:`repro.verify.Diagnostic` objects whose
    severity is ``violation``, so callers can render or serialize them.
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class TransportFault(ReproError):
    """A transient link-level failure (dropped or corrupted transfer).

    Distinct from :class:`ConfigurationError`: a transport fault is an
    infrastructure hiccup that a resilient caller may retry, not a bug
    in the software stack.  Raised by the transport layer when an
    uplinked program is lost or arrives unparseable board-side.
    """


class ShardFault(ReproError):
    """An injected or detected fault in a sweep shard worker.

    Carries a machine-readable ``category`` (``"error"``, ``"poison"``,
    ...) so retry/quarantine accounting can classify the failure.
    Picklable: crosses the process pool boundary intact.
    """

    def __init__(self, message: str, category: str = "error") -> None:
        super().__init__(message, category)
        self.message = message
        self.category = category

    def __str__(self) -> str:
        return self.message


class DurabilityError(ReproError):
    """A durable artifact could not be written or read back intact.

    Base class for the durable-state layer (:mod:`repro.durable`):
    checksum mismatches, torn files, and exhausted disk all derive from
    it, so campaign code can treat "the artifact store is unhealthy" as
    one failure class while still distinguishing the causes.
    """


class ArtifactCorruptError(DurabilityError):
    """A durable artifact failed its checksum or could not be parsed.

    Raised by :func:`repro.durable.read_artifact` for torn tails,
    bit-flipped payloads, and envelope/kind mismatches.  Recovery code
    quarantines the file (``*.corrupt``) and recomputes the artifact
    instead of trusting it.
    """


class DiskSpaceError(DurabilityError):
    """An artifact write was refused because the volume is (nearly) full.

    Raised *before* any bytes land, so a full disk produces a clean
    typed error instead of a half-written checkpoint that a later
    resume would have to quarantine.
    """


class PoolDegradedError(ReproError):
    """The worker pool crash-looped past its budget or cannot be rebuilt.

    Raised by :class:`repro.engine.pool.PoolBackend` when its circuit
    breaker opens: repeated executor crashes exhausted the crash-loop
    budget (``$REPRO_POOL_CRASH_BUDGET``), or a replacement pool could
    not be constructed at all.  Supervisors catch it and fall back to
    in-process serial execution (``--degrade auto``), which produces
    byte-identical datasets because the inline runner is the same code
    the workers execute.
    """

    def __init__(self, message: str, crashes: int = 0) -> None:
        super().__init__(message)
        self.crashes = crashes


class ExperimentError(ReproError):
    """An experiment could not be run as configured."""


class CampaignStateError(ExperimentError):
    """A campaign directory cannot be resumed (config mismatch, corrupt
    manifest, or unreadable shard checkpoint)."""


class ExperimentBudgetError(ExperimentError):
    """An experiment exceeded its wall-clock (in-DRAM time) budget.

    The paper keeps every refresh-disabled experiment under 27 ms so that
    retention failures cannot contaminate RowHammer measurements (§3.1).
    """


class CalibrationError(ReproError):
    """A device profile contains physically meaningless parameters."""


class AnalysisError(ReproError):
    """An analysis routine received a dataset it cannot process."""

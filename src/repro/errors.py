"""Exception hierarchy for the HBM2 RowHammer reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class AddressError(ReproError):
    """A DRAM address is outside the device geometry or malformed."""


class CommandError(ReproError):
    """A DRAM command is illegal in the device's current state.

    Examples: activating an already-open bank, reading from a precharged
    bank, or writing to a column of a row that is not open.
    """


class TimingViolationError(CommandError):
    """A DRAM command violates a timing constraint (e.g. tRC, tRAS, tRP)."""


class ProgramError(ReproError):
    """A DRAM Bender test program is malformed (bad loop nesting, operands)."""


class AssemblyError(ProgramError):
    """Test-program assembly text could not be parsed."""


class EngineError(ProgramError):
    """The execution engine was used inconsistently (e.g. a cached
    program shape instantiated with a row binding that does not fit
    its slots)."""


class VerificationError(ProgramError):
    """A test program failed static verification.

    Carries the list of :class:`repro.verify.Diagnostic` objects whose
    severity is ``violation``, so callers can render or serialize them.
    """

    def __init__(self, message: str, diagnostics=()) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class TransportFault(ReproError):
    """A transient link-level failure (dropped or corrupted transfer).

    Distinct from :class:`ConfigurationError`: a transport fault is an
    infrastructure hiccup that a resilient caller may retry, not a bug
    in the software stack.  Raised by the transport layer when an
    uplinked program is lost or arrives unparseable board-side.
    """


class ShardFault(ReproError):
    """An injected or detected fault in a sweep shard worker.

    Carries a machine-readable ``category`` (``"error"``, ``"poison"``,
    ...) so retry/quarantine accounting can classify the failure.
    Picklable: crosses the process pool boundary intact.
    """

    def __init__(self, message: str, category: str = "error") -> None:
        super().__init__(message, category)
        self.message = message
        self.category = category

    def __str__(self) -> str:
        return self.message


class ExperimentError(ReproError):
    """An experiment could not be run as configured."""


class CampaignStateError(ExperimentError):
    """A campaign directory cannot be resumed (config mismatch, corrupt
    manifest, or unreadable shard checkpoint)."""


class ExperimentBudgetError(ExperimentError):
    """An experiment exceeded its wall-clock (in-DRAM time) budget.

    The paper keeps every refresh-disabled experiment under 27 ms so that
    retention failures cannot contaminate RowHammer measurements (§3.1).
    """


class CalibrationError(ReproError):
    """A device profile contains physically meaningless parameters."""


class AnalysisError(ReproError):
    """An analysis routine received a dataset it cannot process."""

"""Deterministic fault injection for campaign-resilience testing.

The paper's methodology assumes trustworthy infrastructure: a PCIe
link that faithfully round-trips programs, workers that finish their
shards, and a PID loop that holds the chip inside a ±0.5 degC envelope
(§3).  This package makes the opposite assumption testable: a seeded
:class:`FaultSpec`/:class:`FaultPlan` (same seed ⇒ same fault
schedule, via the :mod:`repro.rng` keyed-hash idiom) drives injectors
for

* the PCIe hop (:class:`~repro.faults.inject.FaultyTransport` —
  corruption, drops, duplicates, stalls, poisoned readback),
* sweep shard workers (:func:`~repro.faults.inject.injure_worker` —
  crash, hang, error; :func:`~repro.faults.inject.poison_dataset`),
* the thermal rig (:class:`~repro.faults.thermal.ThermalGuard` —
  setpoint excursions past the envelope, with re-settle or flag
  policies),

and the resilience layer in :mod:`repro.bender.transport` and
:mod:`repro.core.parallel` proves campaigns degrade gracefully under
them.  Export a low-rate plan via ``$REPRO_FAULTS`` (see
:meth:`FaultSpec.from_env`) to run any sweep — including the test
suite — under chaos.
"""

from repro.faults.inject import (
    FaultyTransport,
    build_link,
    injure_worker,
    poison_dataset,
)
from repro.faults.plan import (
    IO_CATEGORIES,
    LINK_CATEGORIES,
    PROCESS_CATEGORIES,
    SHARD_CATEGORIES,
    FaultPlan,
    FaultSpec,
    resolve_fault_spec,
)
from repro.faults.thermal import ENVELOPE_C, ThermalGuard

__all__ = [
    "ENVELOPE_C",
    "FaultPlan",
    "FaultSpec",
    "FaultyTransport",
    "IO_CATEGORIES",
    "LINK_CATEGORIES",
    "PROCESS_CATEGORIES",
    "SHARD_CATEGORIES",
    "ThermalGuard",
    "build_link",
    "injure_worker",
    "poison_dataset",
    "resolve_fault_spec",
]

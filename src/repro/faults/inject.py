"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan`.

Three injection surfaces, matching the failure modes that dominate
real DRAM Bender bring-up:

* :class:`FaultyTransport` — a :class:`~repro.bender.transport.
  PcieTransport` whose uplink/downlink hops consult the plan: uplink
  corruption and drops surface as retryable
  :class:`~repro.errors.TransportFault`\\ s *before* execution, and
  downlink poison/truncation mangles the delivered copy (the board
  buffer keeps the truth, so a digest-verifying caller recovers via
  re-request).
* :func:`injure_worker` — crash/hang/error injection at shard-worker
  entry, keyed by (shard coordinates, attempt) so retries redraw.
* :func:`poison_dataset` — corrupts one record of a shard's readback
  after its integrity fingerprint was taken, so the parent's
  verification catches it.

Injection never silently changes a *successful* measurement: every
fault is either detectable (corruption against a digest), fatal
(crash/hang → retry/quarantine), or accounting-only (stall/duplicate),
which is what lets campaigns under a fault plan export byte-identical
datasets to fault-free runs once the resilience layer has done its job.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import replace

from repro.bender.interpreter import ExecutionResult
from repro.bender.transport import PcieTransport
from repro.dram.device import HBM2Device
from repro.errors import ShardFault, TransportFault
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import get_metrics

__all__ = ["FaultyTransport", "injure_worker", "poison_dataset"]


class FaultyTransport(PcieTransport):
    """A PCIe link that misbehaves on the plan's schedule."""

    def __init__(self, device: HBM2Device, plan: FaultPlan,
                 bandwidth_bytes_per_s: float = 3.0e9,
                 interpreter=None) -> None:
        super().__init__(device, bandwidth_bytes_per_s=bandwidth_bytes_per_s,
                         interpreter=interpreter)
        self._plan = plan
        #: Injected-fault tally by category (independent of metrics).
        self.injected = {"drop": 0, "corrupt": 0, "duplicate": 0,
                         "stall": 0, "poison": 0}

    def _note(self, category: str) -> None:
        self.injected[category] += 1
        get_metrics().counter(f"transport.injected.{category}").inc()

    # -- uplink ---------------------------------------------------------
    def _transmit(self, wire_text: str, transfer_index: int) -> str:
        fault = self._plan.link_fault(transfer_index)
        if fault == "drop":
            self._note("drop")
            raise TransportFault(
                f"transfer {transfer_index} dropped (no board ack)")
        for effect in self._plan.link_effects(transfer_index):
            self._note(effect)
            if effect == "duplicate":
                # The payload crossed the wire twice; bill it again.
                self.statistics.bytes_up += len(wire_text.encode())
                self.statistics.transfer_time_s += (
                    len(wire_text.encode()) / self._bandwidth)
            elif effect == "stall":
                self.statistics.transfer_time_s += self._plan.spec.stall_s
        if fault == "corrupt":
            self._note("corrupt")
            # Bit errors in the text stream: garble a slice mid-wire so
            # the board-side assembler rejects it.
            middle = len(wire_text) // 2
            return wire_text[:middle] + "\x00<bitrot>\x00" + \
                wire_text[middle:]
        return wire_text

    # -- downlink -------------------------------------------------------
    def _deliver(self, result: ExecutionResult,
                 transfer_index: int) -> ExecutionResult:
        if not self._plan.readback_poisoned(transfer_index):
            return result
        self._note("poison")
        return _corrupt_readback(result)


def _corrupt_readback(result: ExecutionResult) -> ExecutionResult:
    """A copy of ``result`` with one readback payload mangled.

    Flips the first bit of the last row read when there is one, else
    truncates the column reads — either way the digest no longer
    matches the board-side buffer.
    """
    corrupted = ExecutionResult(
        column_reads=list(result.column_reads),
        row_reads=list(result.row_reads),
        start_cycle=result.start_cycle,
        end_cycle=result.end_cycle,
        trace=list(result.trace),
    )
    if corrupted.row_reads:
        bits = corrupted.row_reads[-1].copy()
        if bits.size:
            bits[0] ^= 1
        corrupted.row_reads[-1] = bits
    elif corrupted.column_reads:
        corrupted.column_reads[-1] = corrupted.column_reads[-1][:-1]
    return corrupted


# ----------------------------------------------------------------------
# Shard workers
# ----------------------------------------------------------------------
def _in_pool_worker() -> bool:
    """Whether this process is a pool worker (vs. a campaign parent).

    Process faults (SIGKILL) must never fire in inline execution — the
    fleet's ``jobs=1`` path and the degraded-serial fallback run shards
    in the *parent*, and killing it would turn a survivable worker
    fault into a campaign loss (or kill pytest).  The pool initializer
    installs per-worker state only in real workers, so its presence is
    the gate.
    """
    from repro.engine.pool import _WORKER_STATE
    return bool(_WORKER_STATE)


def injure_worker(plan: FaultPlan, channel: int, pseudo_channel: int,
                  bank: int, region: str, attempt: int,
                  _exit=os._exit, _sleep=time.sleep,
                  _kill=os.kill) -> None:
    """Apply the plan's injury (if any) for one shard attempt.

    Called at worker entry, before any device state exists, so an
    injured attempt cannot leave a half-measured station behind:

    * ``sigkill`` (process category) — the pool worker dies by raw
      SIGKILL: no exception, no exit handler, exactly the death the
      durable-state layer must survive (only fires in pool workers),
    * ``crash`` — the worker process dies immediately (the parent sees
      a broken pool / lost future),
    * ``hang`` — the worker stalls ``hang_s`` seconds before running
      (the parent's shard timeout fires),
    * ``error`` — a :class:`~repro.errors.ShardFault` propagates
      through the worker's failure reporting.
    """
    if (plan.worker_kill(channel, pseudo_channel, bank, region, attempt)
            and _in_pool_worker()):
        get_metrics().counter("faults.process.sigkill").inc()
        _kill(os.getpid(), signal.SIGKILL)
    category = plan.shard_fault(channel, pseudo_channel, bank, region,
                                attempt)
    if category is None:
        return
    get_metrics().counter(f"faults.shard.{category}").inc()
    if category == "crash":
        _exit(13)
    elif category == "hang":
        _sleep(plan.spec.hang_s)
    elif category == "error":
        raise ShardFault(
            f"injected worker fault (attempt {attempt})", category="error")


def poison_dataset(plan: FaultPlan, dataset, channel: int,
                   pseudo_channel: int, bank: int, region: str,
                   attempt: int) -> bool:
    """Corrupt one record of a shard's readback, per the plan.

    Returns True when poison was applied.  Must be called *after* the
    integrity fingerprint was recorded, so the corruption is detectable
    parent-side.
    """
    if not plan.shard_poisoned(channel, pseudo_channel, bank, region,
                               attempt):
        return False
    if dataset.ber_records:
        record = dataset.ber_records[-1]
        dataset.ber_records[-1] = replace(record, flips=record.flips + 1)
    elif dataset.hcfirst_records:
        record = dataset.hcfirst_records[-1]
        dataset.hcfirst_records[-1] = replace(record,
                                              probes=record.probes + 1)
    else:
        return False
    get_metrics().counter("faults.shard.poison").inc()
    return True


def build_link(device: HBM2Device, spec: FaultSpec,
               bandwidth_bytes_per_s: float = 3.0e9):
    """A resilient faulty link for ``device`` under ``spec``.

    The standard wiring: a :class:`FaultyTransport` on the spec's plan,
    wrapped in a :class:`~repro.bender.transport.ResilientTransport`
    seeded for deterministic backoff jitter.
    """
    from repro.bender.transport import ResilientTransport

    faulty = FaultyTransport(device, FaultPlan(spec),
                             bandwidth_bytes_per_s=bandwidth_bytes_per_s)
    return ResilientTransport(faulty, seed=spec.seed)

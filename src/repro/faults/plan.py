"""Deterministic fault schedules for campaign-resilience testing.

Real bring-up on DRAM Bender-class testers is dominated by
infrastructure hiccups — flaky PCIe links, hung workers, thermal
excursions past the PID envelope — and the paper's methodology only
holds because campaigns survive them.  This module makes those faults
*first-class and reproducible*: a :class:`FaultSpec` names per-category
fault rates, and a :class:`FaultPlan` turns the spec into a seeded,
deterministic schedule using the same keyed counter-based RNG idiom as
the device model (:mod:`repro.rng`) — every fault decision is a pure
function of ``(fault seed, entity path)``, so the same seed produces
the same fault schedule regardless of process count, shard order, or
resume point.

Fault categories:

* **link** (uplink/downlink of the PCIe hop, per transfer index):
  ``corrupt`` mangles the wire text, ``drop`` loses the transfer,
  ``duplicate`` re-sends it (billing twice), ``stall`` adds latency;
  downlink faults poison the readback copy.
* **shard** (per worker attempt, keyed by shard coordinates + attempt
  number so injected failures are transient and retries can succeed):
  ``crash`` kills the worker process, ``hang`` stalls it past the
  shard timeout, ``error`` raises inside the worker, ``poison``
  corrupts the shard's readback (detected by the parent's integrity
  check).
* **thermal** (per measured cell, keyed by physical coordinates so the
  schedule is identical under any sharding): a setpoint excursion of
  ``drift_c`` degC beyond the PID envelope.
* **process** (per worker attempt, same key as shard faults):
  ``worker_sigkill`` delivers a raw SIGKILL inside a pool worker — the
  ungraceful death the crash-recovery layer must survive.  Only fires
  inside pool worker processes, never inline.
* **io** (per durable-artifact write, keyed on (artifact kind, file
  name, per-name write index)): ``torn_write`` truncates the artifact
  at a seeded offset, ``bitflip`` flips one seeded bit, ``enospc``
  simulates a full volume (the write raises
  :class:`~repro.errors.DiskSpaceError` before any bytes land).
  Applied by :mod:`repro.durable`; detected by its checksummed
  envelopes on read-back.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Tuple

from repro.envutil import env_str
from repro.errors import ConfigurationError
from repro.rng import uniform_hash01

__all__ = ["FaultSpec", "FaultPlan", "IO_CATEGORIES", "LINK_CATEGORIES",
           "PROCESS_CATEGORIES", "SHARD_CATEGORIES"]

#: Link fault categories, in the (fixed) order they are drawn.
LINK_CATEGORIES = ("drop", "corrupt", "duplicate", "stall")

#: Shard fault categories, in the (fixed) order they are drawn.
#: ``poison`` is drawn separately (it applies after the measurement).
SHARD_CATEGORIES = ("crash", "hang", "error")

#: Process fault categories (ungraceful worker death).
PROCESS_CATEGORIES = ("sigkill",)

#: IO fault categories, in the (fixed) order they are drawn per write.
#: ``enospc`` ranks first: a full disk pre-empts the write entirely,
#: so torn/bit-flipped outcomes only occur on writes that proceed.
IO_CATEGORIES = ("enospc", "torn_write", "bitflip")

#: Domain tag separating fault draws from every device-property stream.
_DOMAIN = "faults.v1"

#: Environment variable holding a global low-rate fault plan (the CI
#: chaos job sets it); consulted wherever no explicit spec is given.
ENV_VAR = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """Rates and magnitudes of every injectable fault category.

    All rates are probabilities in [0, 1] applied per opportunity
    (per transfer, per shard attempt, per measured cell).  A
    default-constructed spec injects nothing.  Frozen and picklable so
    it can ride inside :class:`~repro.core.sweeps.SweepConfig` and
    :class:`~repro.bender.board.BoardSpec` across process boundaries.
    """

    seed: int = 0
    #: Uplink corruption: the wire text arrives unparseable board-side.
    link_corrupt: float = 0.0
    #: Uplink drop: the transfer is lost (detected as a send timeout).
    link_drop: float = 0.0
    #: Duplicate transfer: payload is sent twice (accounting only).
    link_duplicate: float = 0.0
    #: Link stall: the transfer pays ``stall_s`` extra link time.
    link_stall: float = 0.0
    stall_s: float = 0.005
    #: Downlink poison: the readback copy arrives bit-corrupted.
    link_poison: float = 0.0
    #: Worker crash: the shard's process dies (``os._exit``).
    shard_crash: float = 0.0
    #: Worker hang: the shard stalls ``hang_s`` seconds before running.
    shard_hang: float = 0.0
    hang_s: float = 30.0
    #: Worker error: the shard raises a :class:`~repro.errors.ShardFault`.
    shard_error: float = 0.0
    #: Shard readback poison: one record is corrupted after measurement
    #: (caught by the parent's integrity fingerprint check).
    shard_poison: float = 0.0
    #: Worker SIGKILL: the shard's pool worker dies by raw signal
    #: (never fires inline — see :func:`repro.faults.inject.injure_worker`).
    worker_sigkill: float = 0.0
    #: Torn artifact write: a durable artifact is truncated at a seeded
    #: offset, as if the writer died mid-write on a non-atomic store.
    io_torn_write: float = 0.0
    #: Artifact bit-flip: one seeded bit of a written artifact flips,
    #: as if the medium rotted under it.
    io_bitflip: float = 0.0
    #: Simulated ENOSPC: an artifact write fails cleanly with
    #: :class:`~repro.errors.DiskSpaceError` before any bytes land.
    io_enospc: float = 0.0
    #: Thermal excursion: the plant drifts ``drift_c`` degC mid-campaign.
    thermal_drift: float = 0.0
    drift_c: float = 2.0
    #: Out-of-envelope policy: ``"resettle"`` re-runs the rig to the
    #: target before measuring (measurements stay fault-free);
    #: ``"flag"`` measures at the drifted temperature and tags the rows.
    thermal_policy: str = "resettle"

    _RATE_FIELDS = ("link_corrupt", "link_drop", "link_duplicate",
                    "link_stall", "link_poison", "shard_crash",
                    "shard_hang", "shard_error", "shard_poison",
                    "worker_sigkill", "io_torn_write", "io_bitflip",
                    "io_enospc", "thermal_drift")

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {name} must be in [0, 1], got {rate}")
        if self.stall_s < 0:
            raise ConfigurationError("stall_s must be >= 0")
        if self.hang_s <= 0:
            raise ConfigurationError("hang_s must be positive")
        if self.thermal_policy not in ("resettle", "flag"):
            raise ConfigurationError(
                f"thermal_policy must be 'resettle' or 'flag', "
                f"got {self.thermal_policy!r}")

    # -- category summaries --------------------------------------------
    @property
    def has_link_faults(self) -> bool:
        return any(getattr(self, name) > 0 for name in
                   ("link_corrupt", "link_drop", "link_duplicate",
                    "link_stall", "link_poison"))

    @property
    def has_shard_faults(self) -> bool:
        return any(getattr(self, name) > 0 for name in
                   ("shard_crash", "shard_hang", "shard_error",
                    "shard_poison"))

    @property
    def has_thermal_faults(self) -> bool:
        return self.thermal_drift > 0

    @property
    def has_process_faults(self) -> bool:
        return self.worker_sigkill > 0

    @property
    def has_io_faults(self) -> bool:
        return any(getattr(self, f"io_{name}") > 0
                   for name in ("torn_write", "bitflip", "enospc"))

    @property
    def any_faults(self) -> bool:
        return (self.has_link_faults or self.has_shard_faults
                or self.has_thermal_faults or self.has_process_faults
                or self.has_io_faults)

    # -- construction ---------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from ``key=value,key=value`` text or a JSON file.

        ``text`` naming an existing file (or prefixed with ``@``) is
        read as a JSON object of field values; otherwise it is parsed
        as a comma-separated assignment list, e.g.
        ``"seed=7,link_corrupt=0.01,shard_error=0.02"``.
        """
        text = text.strip()
        if text.startswith("@") or os.path.isfile(text):
            path = Path(text[1:] if text.startswith("@") else text)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                raise ConfigurationError(
                    f"cannot read fault spec file {path}: {error}"
                ) from error
            return cls.from_dict(payload)
        values = {}
        for item in filter(None, (part.strip()
                                  for part in text.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise ConfigurationError(
                    f"fault spec item {item!r} is not key=value")
            values[key.strip()] = value.strip()
        return cls.from_dict(values)

    @classmethod
    def from_dict(cls, values: dict) -> "FaultSpec":
        """Build a spec from a mapping of field names to values."""
        known = {field.name: field.type for field in fields(cls)
                 if not field.name.startswith("_")}
        kwargs = {}
        for key, value in values.items():
            if key not in known:
                raise ConfigurationError(
                    f"unknown fault spec field {key!r} "
                    f"(known: {', '.join(sorted(known))})")
            if key == "thermal_policy":
                kwargs[key] = str(value)
            elif key in ("seed",):
                kwargs[key] = int(value)
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultSpec"]:
        """The global fault plan from ``$REPRO_FAULTS``, if set.

        The hook the CI chaos job uses: exporting a low-rate spec makes
        every sweep in the process inject (and survive) faults without
        touching any call site.
        """
        raw = env_str(ENV_VAR)
        if raw is None:
            return None
        return cls.parse(raw)

    def with_overrides(self, **overrides) -> "FaultSpec":
        return replace(self, **overrides)

    def describe(self) -> str:
        """Compact one-line rendering of the nonzero rates."""
        parts = [f"seed={self.seed}"]
        parts.extend(f"{name}={getattr(self, name):g}"
                     for name in self._RATE_FIELDS
                     if getattr(self, name) > 0)
        return ",".join(parts)


def resolve_fault_spec(explicit: Optional[FaultSpec]) -> Optional[FaultSpec]:
    """``explicit`` if given, else the ``$REPRO_FAULTS`` plan (or None)."""
    if explicit is not None:
        return explicit if explicit.any_faults else None
    return FaultSpec.from_env()


class FaultPlan:
    """A seeded, deterministic fault schedule over a campaign.

    Every decision is a pure hash of ``(spec.seed, entity path)``:

    * link faults key on the transport's transfer index,
    * shard faults key on (channel, pseudo channel, bank, region,
      attempt) — the attempt component makes injected failures
      *transient*, so a retried shard redraws its fate,
    * thermal excursions key on the physical cell coordinates, making
      the schedule independent of sharding and resume points.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    def _draw(self, *path) -> float:
        return uniform_hash01(self.spec.seed, (_DOMAIN,) + path)

    # ------------------------------------------------------------------
    def link_fault(self, transfer_index: int) -> Optional[str]:
        """The uplink fault for one transfer (first matching category)."""
        for category in ("drop", "corrupt"):
            rate = getattr(self.spec, f"link_{category}")
            if rate and self._draw("link", category, transfer_index) < rate:
                return category
        return None

    def link_effects(self, transfer_index: int) -> Tuple[str, ...]:
        """Non-fatal link effects (duplicate/stall) for one transfer."""
        effects = []
        for category in ("duplicate", "stall"):
            rate = getattr(self.spec, f"link_{category}")
            if rate and self._draw("link", category, transfer_index) < rate:
                effects.append(category)
        return tuple(effects)

    def readback_poisoned(self, transfer_index: int) -> bool:
        """Whether one downlink readback arrives bit-corrupted."""
        rate = self.spec.link_poison
        return bool(rate and self._draw("link", "poison",
                                        transfer_index) < rate)

    # ------------------------------------------------------------------
    def shard_fault(self, channel: int, pseudo_channel: int, bank: int,
                    region: str, attempt: int) -> Optional[str]:
        """The injury (if any) for one shard execution attempt."""
        for category in SHARD_CATEGORIES:
            rate = getattr(self.spec, f"shard_{category}")
            if rate and self._draw("shard", category, channel,
                                   pseudo_channel, bank, region,
                                   attempt) < rate:
                return category
        return None

    def shard_poisoned(self, channel: int, pseudo_channel: int, bank: int,
                       region: str, attempt: int) -> bool:
        """Whether one shard attempt's readback is poisoned."""
        rate = self.spec.shard_poison
        return bool(rate and self._draw("shard", "poison", channel,
                                        pseudo_channel, bank, region,
                                        attempt) < rate)

    # ------------------------------------------------------------------
    def worker_kill(self, channel: int, pseudo_channel: int, bank: int,
                    region: str, attempt: int) -> bool:
        """Whether one pool-worker attempt dies by SIGKILL at entry."""
        rate = self.spec.worker_sigkill
        return bool(rate and self._draw("process", "sigkill", channel,
                                        pseudo_channel, bank, region,
                                        attempt) < rate)

    # ------------------------------------------------------------------
    def io_fault(self, kind: str, name: str,
                 write_index: int) -> Optional[str]:
        """The IO fault (if any) for one durable-artifact write.

        Keyed on (artifact kind, file name, per-name write index) so the
        schedule is a pure function of *which write this is* — identical
        across process counts, resume points, and directory layouts.
        """
        for category in IO_CATEGORIES:
            rate = getattr(self.spec, f"io_{category}")
            if rate and self._draw("io", category, kind, name,
                                   write_index) < rate:
                return category
        return None

    def torn_offset(self, size: int, kind: str, name: str,
                    write_index: int) -> int:
        """The seeded truncation point for one torn write, in [1, size)."""
        if size <= 1:
            return 0
        fraction = self._draw("io", "torn_offset", kind, name, write_index)
        return max(1, min(size - 1, int(size * fraction)))

    def bitflip_site(self, size: int, kind: str, name: str,
                     write_index: int) -> Tuple[int, int]:
        """The seeded (byte offset, bit index) for one artifact bit-flip."""
        byte = int(self._draw("io", "flip_byte", kind, name,
                              write_index) * size)
        bit = int(self._draw("io", "flip_bit", kind, name,
                             write_index) * 8)
        return min(byte, size - 1), min(bit, 7)

    # ------------------------------------------------------------------
    def thermal_excursion(self, channel: int, pseudo_channel: int,
                          bank: int, row: int) -> Optional[float]:
        """The excursion (drift in degC) before measuring one cell."""
        rate = self.spec.thermal_drift
        if rate and self._draw("thermal", channel, pseudo_channel,
                               bank, row) < rate:
            return self.spec.drift_c
        return None

    # ------------------------------------------------------------------
    def jitter(self, *path) -> float:
        """A deterministic uniform(0, 1) jitter draw for backoff delays."""
        return self._draw("jitter", *path)

"""Thermal envelope guard: keep measurements inside the PID envelope.

The paper holds the chip at 85 degC with a PID-controlled heating
pad/fan rig; both RowHammer thresholds and retention times are
temperature sensitive, so a measurement taken during an excursion past
the control envelope (±0.5 degC around the setpoint) is suspect.  The
:class:`ThermalGuard` wraps each cell measurement of a sweep:

* it lets the fault plan inject an excursion (setpoint drift of
  ``drift_c`` degC) keyed on the *physical cell coordinates*, so the
  excursion schedule is identical under any sharding or resume point;
* on an out-of-envelope rig it applies the configured policy —
  ``"resettle"`` aborts the measurement attempt, re-runs the PID loop
  to the target, and restores the calibrated operating point before
  measuring (the measurement is effectively *re-run* inside the
  envelope, so data is identical to a fault-free campaign), while
  ``"flag"`` measures at the drifted temperature and tags the rows as
  suspect;
* every excursion is recorded as a machine-readable event for
  ``dataset.metadata["thermal"]`` and counted in the ``thermal.*``
  metrics.

Events deliberately contain only schedule-deterministic values (cell
coordinates, the spec's drift, the action taken) — never transient
plant state — so serial, parallel, and resumed campaigns produce
byte-identical metadata.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.plan import FaultPlan
from repro.obs import get_metrics

__all__ = ["ThermalGuard", "ENVELOPE_C"]

#: The paper's control envelope around the setpoint (§3.1), degC.
ENVELOPE_C = 0.5


class ThermalGuard:
    """Per-cell envelope enforcement around a board's thermal rig."""

    def __init__(self, board, plan: FaultPlan,
                 envelope_c: float = ENVELOPE_C) -> None:
        """
        Args:
            board: the testing station (needs ``.thermal`` and
                ``.device``).
            plan: the fault plan driving injected excursions.
            envelope_c: allowed deviation from the setpoint, degC.
        """
        self._board = board
        self._plan = plan
        self.envelope_c = envelope_c
        self.policy = plan.spec.thermal_policy
        #: The calibrated chip temperature measurements should see —
        #: captured at guard construction (station already settled).
        self._operating_point_c = board.device.temperature_c
        self._flagged = False
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    def before_cell(self, channel: int, pseudo_channel: int, bank: int,
                    row: int) -> Optional[Dict[str, object]]:
        """Guard one cell measurement; returns the excursion event, if any.

        Must be paired with :meth:`after_cell` once the cell's
        measurements are done (restores the operating point after a
        flagged measurement).
        """
        drift = self._plan.thermal_excursion(channel, pseudo_channel,
                                             bank, row)
        thermal = self._board.thermal
        if drift is None:
            if not thermal.in_envelope(self.envelope_c):
                # Defensive: an un-injected violation (e.g. accumulated
                # sub-envelope drifts).  Correct it silently — recorded
                # events stay purely plan-determined, so the excursion
                # schedule is identical under any sharding.
                self._restore()
            return None
        thermal.inject_disturbance(drift)
        metrics = get_metrics()
        metrics.counter("thermal.excursions").inc()
        event: Dict[str, object] = {
            "channel": channel, "pseudo_channel": pseudo_channel,
            "bank": bank, "row": row, "drift_c": drift,
        }
        if self.policy == "flag":
            # Measure at the drifted temperature; the rows are tagged
            # as suspect and the rig is restored after the cell.
            self._board.device.set_temperature(
                thermal.plant.temperature_c)
            self._flagged = True
            event["action"] = "flagged"
        else:
            # Abort-and-re-run: bring the rig back inside the envelope
            # and restore the calibrated operating point, then measure.
            self._restore()
            event["action"] = "resettled"
        self.events.append(event)
        return event

    def after_cell(self) -> None:
        """Restore the operating point after a flagged measurement."""
        if not self._flagged:
            return
        self._flagged = False
        self._restore()

    def _restore(self) -> None:
        """Re-settle the rig and snap the chip to the operating point.

        The snap-back makes recovery *exact*: the PID endpoint depends
        on the plant's excursion history, but the chip temperature the
        next measurement sees is always the calibrated operating point,
        which is what keeps fault-injected campaigns byte-identical to
        fault-free ones under the re-settle policy.
        """
        self._board.thermal.resettle()
        self._board.device.set_temperature(self._operating_point_c)
        get_metrics().counter("thermal.resettles").inc()

    # ------------------------------------------------------------------
    def metadata(self) -> Optional[Dict[str, object]]:
        """The ``dataset.metadata["thermal"]`` block (None if clean)."""
        if not self.events:
            return None
        return {
            "envelope_c": self.envelope_c,
            "policy": self.policy,
            "excursions": list(self.events),
        }

    @staticmethod
    def merge_metadata(parts) -> Optional[Dict[str, object]]:
        """Combine per-shard thermal blocks, preserving part order."""
        merged: Optional[Dict[str, object]] = None
        for part in parts:
            block = part.metadata.get("thermal") if part is not None \
                else None
            if not block:
                continue
            if merged is None:
                merged = {"envelope_c": block["envelope_c"],
                          "policy": block["policy"], "excursions": []}
            merged["excursions"].extend(block["excursions"])
        return merged

"""Observability: structured tracing + metrics for the whole stack.

The characterization campaigns are long, command-stream-heavy, and (since
the parallel executor) multi-process; hammer-count and REF accounting *is*
the experiment, so runtime visibility is a first-class subsystem rather
than scattered prints.  This package provides:

* :mod:`repro.obs.trace` — a hierarchical span tracer (campaign → shard →
  sweep → region → cell → hammer/measure) with JSONL export,
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  (DRAM commands by type, hammer pairs, bitflips, TRR preventive
  refreshes, PID settle iterations, shard retries/timeouts),
* :mod:`repro.obs.summarize` — a profile renderer for exported traces
  (``python -m repro obs summarize t.jsonl``).

**Activation model.**  Instrumented code reads the *current* tracer and
registry through :func:`get_tracer` / :func:`get_metrics`; the defaults
are do-nothing singletons, so every instrumentation point costs one
global read + method call until someone installs real collectors
(:func:`set_tracer` / :func:`set_metrics`, the :func:`use_tracer` /
:func:`use_metrics` context managers, or an :class:`ObsSession` — which
is what the CLI ``--trace`` / ``--metrics`` flags create).  State is
process-local: parallel sweep workers install their own collectors and
spool results to disk for the parent to merge (see
:mod:`repro.core.parallel`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.obs.events import (
    NULL_EVENTS,
    Event,
    EventBus,
    NullEventBus,
    read_events,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanRecord,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullMetrics",
    "NULL_METRICS",
    "Tracer", "NoopTracer", "Span", "SpanRecord", "NOOP_TRACER",
    "read_jsonl",
    "Event", "EventBus", "NullEventBus", "NULL_EVENTS", "read_events",
    "get_tracer", "set_tracer", "use_tracer", "tracing_active",
    "get_metrics", "set_metrics", "use_metrics", "metrics_active",
    "get_events", "set_events", "use_events", "events_active",
    "ObsConfig", "ObsSession",
]

_tracer = NOOP_TRACER
_metrics = NULL_METRICS
_events = NULL_EVENTS


# ----------------------------------------------------------------------
# Current-collector accessors
# ----------------------------------------------------------------------
def get_tracer():
    """The process's current tracer (default: the no-op tracer)."""
    return _tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the current tracer (None restores no-op)."""
    global _tracer
    _tracer = tracer if tracer is not None else NOOP_TRACER


def tracing_active() -> bool:
    return _tracer.enabled


@contextmanager
def use_tracer(tracer) -> Iterator[None]:
    """Scoped :func:`set_tracer`; restores the previous tracer on exit."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NOOP_TRACER
    try:
        yield
    finally:
        _tracer = previous


def get_metrics():
    """The process's current metrics registry (default: null registry)."""
    return _metrics


def set_metrics(registry) -> None:
    """Install ``registry`` as current (None restores the null registry)."""
    global _metrics
    _metrics = registry if registry is not None else NULL_METRICS


def metrics_active() -> bool:
    return _metrics.enabled


@contextmanager
def use_metrics(registry) -> Iterator[None]:
    """Scoped :func:`set_metrics`; restores the previous registry on exit."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else NULL_METRICS
    try:
        yield
    finally:
        _metrics = previous


def get_events():
    """The process's current event bus (default: the null bus)."""
    return _events


def set_events(bus) -> None:
    """Install ``bus`` as the current event bus (None restores null)."""
    global _events
    _events = bus if bus is not None else NULL_EVENTS


def events_active() -> bool:
    return _events.enabled


@contextmanager
def use_events(bus) -> Iterator[None]:
    """Scoped :func:`set_events`; restores the previous bus on exit."""
    global _events
    previous = _events
    _events = bus if bus is not None else NULL_EVENTS
    try:
        yield
    finally:
        _events = previous


# ----------------------------------------------------------------------
# Cross-process configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObsConfig:
    """What a parallel sweep worker should collect, and where to spool it.

    Carried inside the (picklable) shard config so the observability
    decision made in the parent crosses the process boundary.  The
    worker writes per-shard files into ``spool_dir``
    (``shard_NNNNN.trace.jsonl`` / ``shard_NNNNN.metrics.json``); the
    parent merges them in plan order.
    """

    trace: bool = False
    metrics: bool = False
    spool_dir: Optional[str] = None
    #: Shared live event log (see :mod:`repro.obs.events`).  Workers
    #: append heartbeats here; ``epoch`` is the parent's campaign-start
    #: monotonic clock, so every event's ``timing.t_s`` is
    #: campaign-relative regardless of which process stamped it.
    events_path: Optional[str] = None
    epoch: float = 0.0

    @property
    def active(self) -> bool:
        return (self.trace or self.metrics) and self.spool_dir is not None

    def trace_path(self, shard_index: int) -> Path:
        return Path(self.spool_dir) / f"shard_{shard_index:05d}.trace.jsonl"

    def metrics_path(self, shard_index: int) -> Path:
        return Path(self.spool_dir) / f"shard_{shard_index:05d}.metrics.json"


class ObsSession:
    """One process-wide observability scope with file export on close.

    What the CLI flags construct::

        with ObsSession(trace_path="t.jsonl", metrics_path="m.json"):
            run_sweep(...)
        # t.jsonl and m.json now hold the (merged) campaign telemetry

    A path of None disables the corresponding collector.  Reentrant use
    restores whatever collectors were active before.
    """

    def __init__(self, trace_path: Union[str, Path, None] = None,
                 metrics_path: Union[str, Path, None] = None,
                 events_path: Union[str, Path, None] = None,
                 tracer: Optional[Tracer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 bus: Optional[EventBus] = None) -> None:
        self.trace_path = Path(trace_path) if trace_path else None
        self.metrics_path = Path(metrics_path) if metrics_path else None
        self.events_path = Path(events_path) if events_path else None
        self.tracer = tracer or (Tracer() if self.trace_path else None)
        self.registry = registry or (MetricsRegistry() if self.metrics_path
                                     else None)
        self.bus = bus or (EventBus(self.events_path) if self.events_path
                           else None)
        self._previous = None

    def __enter__(self) -> "ObsSession":
        self._previous = (_tracer, _metrics, _events)
        if self.tracer is not None:
            set_tracer(self.tracer)
        if self.registry is not None:
            set_metrics(self.registry)
        if self.bus is not None:
            set_events(self.bus)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        previous_tracer, previous_metrics, previous_events = self._previous
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)
        set_events(previous_events)
        if self.trace_path is not None and self.tracer is not None:
            self.tracer.write_jsonl(self.trace_path)
        if self.metrics_path is not None and self.registry is not None:
            self.registry.to_json(self.metrics_path)
        if self.bus is not None:
            self.bus.finalize()

"""Process-safe campaign event bus: append-only JSONL with a typed schema.

The tracer and metrics registry (PR 2) are strictly post-hoc — nothing is
visible until the campaign merges its spools.  The event bus is the *live*
channel: the parent runner and every pool worker append small JSON lines
to one shared file, so a ``repro obs tail`` in another terminal (or a
``--progress`` renderer in the same one) can watch rows/s, ETA, and
per-worker liveness while the campaign runs.

**Schema.**  Eight event types (:data:`EVENT_TYPES`)::

    campaign_started   shards/devices planned, execution kind
    shard_dispatched   item handed to a backend (parent side)
    worker_heartbeat   item picked up inside a worker's item loop
    item_completed     item accepted by the parent (metrics delta payload)
    device_done        fleet-only: per-device summary
    retry              item re-queued after a recoverable failure
    quarantine         item abandoned after the retry budget
    campaign_finished  terminal totals

Every event carries deterministic payload fields (coords, counts,
attempt) plus a ``timing`` sub-object (``t_s`` campaign-relative
monotonic seconds, ``mono_s``, ``pid``) that is *excluded* from all
byte-stability comparisons: :func:`strip_timing` is the canonical
determinism view, and the equivalence tests assert that view is
identical across jobs=1 / jobs=N / resume.

**Concurrency model.**  Every write is a single ``O_APPEND`` line write
(POSIX guarantees small appends don't interleave), so parent and workers
share the file without locks.  Live order is completion order —
nondeterministic under a pool — which is why :meth:`EventBus.finalize`
rewrites the log in :func:`canonical_order` once the campaign ends.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import AnalysisError

__all__ = [
    "EVENT_TYPES", "Event", "EventBus", "NullEventBus", "NULL_EVENTS",
    "canonical_order", "read_events", "strip_timing", "dataset_delta",
]

#: Every event type the bus understands, in rough lifecycle order.
EVENT_TYPES = (
    "campaign_started",
    "shard_dispatched",
    "worker_heartbeat",
    "item_completed",
    "device_done",
    "retry",
    "quarantine",
    "campaign_finished",
)

#: Canonical intra-item ordering.  ``retry`` announces attempt N before
#: that attempt's dispatch, so it ranks first at its attempt number.
_KIND_RANK = {
    "retry": 0,
    "shard_dispatched": 1,
    "worker_heartbeat": 2,
    "item_completed": 3,
    "device_done": 4,
    "quarantine": 5,
}


@dataclass(frozen=True)
class Event:
    """One event: type + deterministic payload + wall-clock ``timing``."""

    type: str
    item: Optional[int] = None
    attempt: int = 0
    data: Mapping[str, object] = field(default_factory=dict)
    timing: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"type": self.type}
        if self.item is not None:
            record["item"] = self.item
            record["attempt"] = self.attempt
        record.update(self.data)
        record["timing"] = dict(self.timing)
        return record

    def payload(self) -> Dict[str, object]:
        """The deterministic view: everything except ``timing``."""
        record = self.as_dict()
        del record["timing"]
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "Event":
        known = {"type", "item", "attempt", "timing"}
        data = {key: value for key, value in record.items()
                if key not in known}
        return cls(type=record["type"],
                   item=record.get("item"),
                   attempt=record.get("attempt", 0),
                   data=data,
                   timing=record.get("timing", {}))

    def to_line(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))


def canonical_order(events: Sequence[Event]) -> List[Event]:
    """Sort ``events`` into the deterministic post-campaign order.

    ``campaign_started`` first, ``campaign_finished`` last, everything
    else by (item, attempt, kind rank); the original position is only a
    tiebreak for events that compare equal (which the emitters avoid by
    construction: one heartbeat per (item, attempt), etc.).
    """
    def key(indexed):
        position, event = indexed
        if event.type == "campaign_started":
            return (0, 0, 0, 0, position)
        if event.type == "campaign_finished":
            return (2, 0, 0, 0, position)
        item = event.item if event.item is not None else -1
        rank = _KIND_RANK.get(event.type, len(_KIND_RANK))
        return (1, item, event.attempt, rank, position)

    return [event for _, event in sorted(enumerate(events), key=key)]


def strip_timing(events: Sequence[Event]) -> List[Dict[str, object]]:
    """The byte-stability view: payload dicts with ``timing`` removed."""
    return [event.payload() for event in events]


def _note_dropped(count: int) -> None:
    """Count torn/garbled event lines (lazy import: obs imports us)."""
    if count:
        from repro.obs import get_metrics
        get_metrics().counter("events.dropped_lines").inc(count)


def read_events(path: Union[str, Path],
                tolerant: bool = False) -> List[Event]:
    """Parse an events JSONL file (live or finalized).

    With ``tolerant=True``, a torn final line (writer killed mid-append)
    or mid-file garbage is dropped — and counted in
    ``events.dropped_lines`` — instead of raising from ``json.loads``;
    this is the mode every recovery path uses.
    """
    events = []
    dropped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(Event.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError):
                if not tolerant:
                    raise
                dropped += 1
    _note_dropped(dropped)
    return events


def dataset_delta(dataset) -> Dict[str, int]:
    """The metrics delta an ``item_completed`` event carries.

    Restricted to values derivable from the shard's *dataset* (not its
    worker-side metric registry) so checkpoint resume can synthesize an
    identical event from the stored shard archive.
    """
    ber = len(dataset.ber_records)
    hcfirst = len(dataset.hcfirst_records)
    flips = sum(record.flips for record in dataset.ber_records)
    return {"records": ber + hcfirst, "ber_records": ber,
            "hcfirst_records": hcfirst, "flips": flips}


def _append_line(path: Union[str, Path], line: str) -> None:
    # Mode "a" opens with O_APPEND: each small write lands atomically at
    # EOF even with parent + N workers sharing the file.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


class EventBus:
    """Shared live event log plus offset-based subscriber dispatch.

    One instance lives in the campaign parent (``truncate=True``);
    workers construct throwaway ``truncate=False`` instances around the
    same path to append their heartbeats.  All *reading* — including of
    the parent's own events — happens through :meth:`tick`, which parses
    lines appended since the last call and hands each event to every
    subscriber exactly once, so a progress renderer sees one interleaved
    stream regardless of who wrote what.
    """

    enabled = True

    def __init__(self, path: Union[str, Path],
                 epoch: Optional[float] = None,
                 truncate: bool = True) -> None:
        self.path = Path(path)
        self.epoch = float(epoch) if epoch is not None else time.monotonic()
        if truncate:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")
        self._read_pos = 0
        self._final_count = 0
        self._subscribers: List[Callable[[Event], None]] = []

    # -- publishing -----------------------------------------------------
    def emit(self, type: str, item: Optional[int] = None, attempt: int = 0,
             timing: Optional[Mapping[str, object]] = None,
             **data: object) -> Event:
        if type not in EVENT_TYPES:
            raise AnalysisError(f"unknown event type: {type!r}")
        now = time.monotonic()
        stamp: Dict[str, object] = {
            "t_s": round(now - self.epoch, 6),
            "mono_s": round(now, 6),
            "pid": os.getpid(),
        }
        if timing:
            stamp.update(timing)
        event = Event(type=type, item=item, attempt=attempt, data=data,
                      timing=stamp)
        _append_line(self.path, event.to_line())
        return event

    # -- subscribing ----------------------------------------------------
    def subscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers.append(callback)

    def tick(self) -> List[Event]:
        """Dispatch events appended since the last tick; return them.

        Robust against the log misbehaving underneath us: a file
        truncated or rotated since the last tick (size < read offset)
        restarts the scan from the top; a line that won't parse — a
        tail torn by a killed writer, or garbage from a non-POSIX
        interleave — is dropped and counted in ``events.dropped_lines``
        rather than raised, because a corrupt log line must never take
        down the campaign parent or a ``tail --follow``.
        """
        if not self._subscribers:
            return []
        try:
            size = self.path.stat().st_size
            if size < self._read_pos:
                # Truncated or rotated underneath us: start over.
                self._read_pos = 0
                self._final_count = 0
            with open(self.path, "rb") as handle:
                handle.seek(self._read_pos)
                chunk = handle.read()
        except FileNotFoundError:
            return []
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        complete, self._read_pos = chunk[:end + 1], self._read_pos + end + 1
        events = []
        dropped = 0
        for line in complete.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            try:
                events.append(Event.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError):
                dropped += 1
        _note_dropped(dropped)
        for event in events:
            for callback in self._subscribers:
                callback(event)
        return events

    # -- finalizing -----------------------------------------------------
    def finalize(self) -> List[Event]:
        """Rewrite the log in canonical order; return the full event list.

        Live order is completion order (nondeterministic under a pool);
        after this the file is byte-stable modulo ``timing``.  Segment
        aware: a second campaign appended to the same file is sorted
        independently of the already-finalized prefix.  Tolerant of a
        torn final line (a worker killed mid-append): the fragment is
        dropped, not raised, and the rewrite leaves a clean log.
        """
        self.tick()
        events = read_events(self.path, tolerant=True)
        ordered = (events[:self._final_count]
                   + canonical_order(events[self._final_count:]))
        from repro.durable import atomic_write_bytes
        atomic_write_bytes(
            self.path,
            "".join(event.to_line() + "\n" for event in ordered).encode(),
            kind="events")
        self._final_count = len(ordered)
        self._read_pos = self.path.stat().st_size
        return ordered


class NullEventBus:
    """Do-nothing stand-in so instrumentation points stay unconditional."""

    enabled = False
    path = None
    epoch = 0.0

    def emit(self, type: str, item: Optional[int] = None, attempt: int = 0,
             timing: Optional[Mapping[str, object]] = None,
             **data: object) -> None:
        return None

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        return None

    def tick(self) -> List[Event]:
        return []

    def finalize(self) -> List[Event]:
        return []


NULL_EVENTS = NullEventBus()

"""Export observability artifacts to external tool formats.

Two consumers matter enough to speak their dialects natively:

* **Prometheus text exposition format** (:func:`prometheus_text`) —
  a metrics snapshot (``MetricsRegistry.snapshot()`` or the JSON file
  ``--metrics`` writes) becomes scrape-ready ``# TYPE``-annotated
  samples.  Counters and gauges map directly; histograms map onto the
  native Prometheus histogram convention (cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``), with each fixed log-scale bin's
  upper edge as the ``le`` bound.  :func:`parse_prometheus_text` is the
  inverse, used by the round-trip tests and by anyone who wants the
  snapshot back out of a scrape.
* **Flamegraph collapsed-stack format** (:func:`collapsed_stacks`) — a
  span trace becomes ``root;child;leaf <microseconds>`` lines consumable
  by ``flamegraph.pl`` / speedscope / inferno.  Sample weights are
  *exclusive* time (a span's duration minus its children's), so the
  flame widths sum to campaign wall time instead of double-counting
  nested phases.

Both formats are plain text built with deterministic (sorted) ordering,
so exports of equal inputs are byte-identical.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import AnalysisError
from repro.obs.metrics import Histogram
from repro.obs.trace import SpanRecord

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "collapsed_stacks",
]

_PREFIX = "repro"
_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """``dram.commands.ACT`` -> ``repro_dram_commands_ACT``."""
    return f"{_PREFIX}_{_NAME_OK.sub('_', name)}"


def _fmt(value: object) -> str:
    """Render a sample value the way Prometheus expects.

    Integral floats print without the trailing ``.0`` so counter values
    survive a text round trip bit-exactly.
    """
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _histogram_buckets(summary: Mapping[str, object]
                       ) -> List[Tuple[float, int]]:
    """(upper_edge, cumulative_count) pairs from a histogram summary."""
    buckets: List[Tuple[float, int]] = []
    cumulative = int(summary.get("nonpos", 0))
    bins = summary.get("bins", {})
    for key in sorted(bins, key=int):
        _, hi = Histogram._bin_edges(int(key))
        cumulative += bins[key]
        buckets.append((hi, cumulative))
    return buckets


def prometheus_text(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        if value is None:
            continue
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(value)}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for edge, cumulative in _histogram_buckets(summary):
            lines.append(f'{prom}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {summary["count"]}')
        lines.append(f"{prom}_sum {_fmt(summary['sum'])}")
        lines.append(f"{prom}_count {summary['count']}")
    return "\n".join(lines) + "\n" if lines else ""


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{le="(?P<le>[^"]+)"\})? (?P<value>\S+)$')


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse :func:`prometheus_text` output back into a snapshot shape.

    Counters and gauges round-trip exactly.  Histograms come back as
    ``{"count", "sum", "buckets": {le_text: cumulative}}`` — the text
    format carries cumulative buckets, not the raw bin map, so the
    derived fields (min/max/mean/quantiles) are not reconstructed.
    """
    kinds: Dict[str, str] = {}
    result: Dict[str, Dict[str, object]] = {
        "counters": {}, "gauges": {}, "histograms": {}}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) == 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise AnalysisError(
                f"unparseable Prometheus sample on line {line_no}: "
                f"{line!r}")
        name, le, raw = match.group("name", "le", "value")
        try:
            value: object = int(raw)
        except ValueError:
            value = float(raw)  # handles exponents, +Inf, nan
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and \
                    kinds.get(name[:-len(suffix)]) == "histogram":
                base = name[:-len(suffix)]
                break
        kind = kinds.get(base)
        if kind == "counter":
            result["counters"][name] = value
        elif kind == "gauge":
            result["gauges"][name] = value
        elif kind == "histogram":
            entry = result["histograms"].setdefault(
                base, {"count": 0, "sum": 0, "buckets": {}})
            if name.endswith("_bucket"):
                entry["buckets"][le] = value
            elif name.endswith("_sum"):
                entry["sum"] = value
            else:
                entry["count"] = value
        else:
            raise AnalysisError(
                f"sample {name!r} on line {line_no} has no preceding "
                "# TYPE annotation")
    return result


def collapsed_stacks(records: Sequence[SpanRecord]) -> str:
    """Render a span trace as flamegraph collapsed-stack lines.

    Each span contributes its *exclusive* time (own duration minus
    children's durations, floored at zero for clock-skewed grafts) to
    the semicolon-joined stack of span names from its root.  Weights
    are integer microseconds; zero-weight stacks are dropped.  Lines
    are sorted so equal traces export byte-identically.
    """
    by_id = {record.span_id: record for record in records}
    child_total: Dict[int, float] = {}
    for record in records:
        if record.parent_id is not None and record.parent_id in by_id:
            child_total[record.parent_id] = (
                child_total.get(record.parent_id, 0.0) + record.duration_s)

    stacks: Dict[str, int] = {}
    for record in records:
        exclusive = record.duration_s - child_total.get(record.span_id, 0.0)
        weight = int(round(max(exclusive, 0.0) * 1e6))
        if weight <= 0:
            continue
        names = [record.name]
        seen = {record.span_id}
        parent = record.parent_id
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            names.append(by_id[parent].name)
            parent = by_id[parent].parent_id
        stack = ";".join(reversed(names))
        stacks[stack] = stacks.get(stack, 0) + weight
    return "\n".join(f"{stack} {weight}"
                     for stack, weight in sorted(stacks.items()))

"""Metrics registry: counters, gauges, and histograms for campaigns.

The registry holds the quantities the paper's infrastructure accounts
for because they *are* the experiment — DRAM commands issued by type,
hammer pairs, bitflips observed, TRR preventive refreshes, PID settle
iterations, shard retries — as three metric kinds:

* :class:`Counter` — monotonically increasing total (``inc``),
* :class:`Gauge` — last-written value (``set``),
* :class:`Histogram` — streaming count/sum/min/max summary (``observe``).

Everything is process-local and single-threaded (matching the rest of
the simulator); cross-process aggregation happens by snapshotting a
worker's registry to JSON and :meth:`MetricsRegistry.merge_snapshot`-ing
it in the parent — counters add, gauges take the later write, histograms
combine their summaries.

The module-level default registry is :data:`NULL_METRICS`, whose metric
handles are shared do-nothing objects, so instrumented code pays only a
lookup + call when metrics are disabled.  Naming convention:
dot-separated lowercase paths, e.g. ``dram.commands.ACT``,
``hammer.pairs``, ``sweep.shard_retries``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got inc({amount})")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count/sum/min/max (means derive); deliberately bucket-free —
    the quantities observed here (settle steps, shard wall times) are
    analysed per-campaign, not percentile-alerted.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, float]:
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}

    def combine(self, other: Mapping[str, float]) -> None:
        """Fold another histogram's summary into this one."""
        count = int(other.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            value = other.get(bound)
            if value is None:
                continue
            own = getattr(self, bound)
            setattr(self, bound,
                    value if own is None else pick(own, value))


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """The default disabled registry: accepts everything, records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Create-or-get registry of named metrics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram()
        return metric

    def _check_free(self, name: str, target: Dict[str, object]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not target and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {kind}")

    # ------------------------------------------------------------------
    def count_commands(self, before: Mapping[str, int],
                       after: Mapping[str, int],
                       prefix: str = "dram.commands.") -> None:
        """Record the delta of two device command-count snapshots.

        The device model already accounts every issued command by
        mnemonic (:attr:`repro.dram.device.HBM2Device.command_counts`);
        pulling deltas here keeps the per-command hot path untouched.
        """
        for mnemonic, total in after.items():
            delta = total - before.get(mnemonic, 0)
            if delta:
                self.counter(prefix + mnemonic).inc(delta)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready dump of every metric."""
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(self._gauges.items())},
            "histograms": {name: metric.summary()
                           for name, metric in
                           sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]
                       ) -> None:
        """Fold a snapshot (e.g. a worker's) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).combine(summary)

    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.snapshot(), indent=1) + "\n")

    @staticmethod
    def read_snapshot(path: Union[str, Path]
                      ) -> Dict[str, Dict[str, object]]:
        return json.loads(Path(path).read_text())

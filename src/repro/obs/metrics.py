"""Metrics registry: counters, gauges, and histograms for campaigns.

The registry holds the quantities the paper's infrastructure accounts
for because they *are* the experiment — DRAM commands issued by type,
hammer pairs, bitflips observed, TRR preventive refreshes, PID settle
iterations, shard retries — as three metric kinds:

* :class:`Counter` — monotonically increasing total (``inc``),
* :class:`Gauge` — last-written value (``set``) with a declared
  cross-shard merge policy (``last`` / ``max`` / ``sum``),
* :class:`Histogram` — streaming summary (``observe``) with
  deterministic fixed-bin quantile estimates (p50/p95/p99).

Everything is process-local and single-threaded (matching the rest of
the simulator); cross-process aggregation happens by snapshotting a
worker's registry to JSON and :meth:`MetricsRegistry.merge_snapshot`-ing
it in the parent — counters add, gauges merge per their policy,
histograms combine their summaries (including bins, so merged quantiles
equal the quantiles of the pooled observations).

The module-level default registry is :data:`NULL_METRICS`, whose metric
handles are shared do-nothing objects, so instrumented code pays only a
lookup + call when metrics are disabled.  Naming convention:
dot-separated lowercase paths, e.g. ``dram.commands.ACT``,
``hammer.pairs``, ``sweep.shard_retries``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "GAUGE_POLICIES",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase; got inc({amount})")
        self.value += amount


#: Valid gauge merge policies (cross-shard semantics of a gauge name).
GAUGE_POLICIES = ("last", "max", "sum")


class Gauge:
    """A point-in-time value (``set`` = last write wins, in-process).

    ``policy`` declares what the value *means* across shards, which is
    what :meth:`MetricsRegistry.merge_snapshot` applies: ``max`` (the
    default — peak-style gauges like temperatures or wall times survive
    merge order), ``sum`` (capacity-style gauges add up), ``last``
    (the historical clobbering behaviour, for gauges that genuinely
    describe the merging process itself).
    """

    __slots__ = ("value", "policy")

    def __init__(self, policy: str = "max") -> None:
        if policy not in GAUGE_POLICIES:
            raise ConfigurationError(
                f"unknown gauge policy {policy!r}; pick one of "
                f"{GAUGE_POLICIES}")
        self.value: Optional[float] = None
        self.policy = policy

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, value: Optional[float]) -> None:
        """Fold a remote shard's value in, per the declared policy."""
        if value is None:
            return
        if self.value is None or self.policy == "last":
            self.value = value
        elif self.policy == "max":
            self.value = max(self.value, value)
        else:  # sum
            self.value = self.value + value


#: Log-scale bin resolution: 16 bins per octave bounds the relative
#: error of any bin edge (and hence any quantile estimate) to < 1/16.
_BINS_PER_OCTAVE = 16


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count/sum/min/max plus sparse fixed log-scale bins
    (:data:`_BINS_PER_OCTAVE` per power of two), from which
    :meth:`quantile` interpolates deterministic p50/p95/p99 estimates.
    Fixed bins — unlike P² — are order-independent and merge exactly:
    combining two shards' bins gives the bins of the pooled stream, so
    quantiles are byte-stable across jobs levels.
    """

    __slots__ = ("count", "total", "min", "max", "_bins", "_nonpos")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._bins: Dict[int, int] = {}
        self._nonpos = 0  # observations <= 0 sort below every bin

    @staticmethod
    def _bin_key(value: float) -> int:
        mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [.5,1)
        sub = int((mantissa - 0.5) * 2 * _BINS_PER_OCTAVE)
        return exponent * _BINS_PER_OCTAVE + min(sub, _BINS_PER_OCTAVE - 1)

    @staticmethod
    def _bin_edges(key: int) -> "tuple":
        exponent, sub = divmod(key, _BINS_PER_OCTAVE)
        base = math.ldexp(1.0, exponent - 1)
        return (base * (1 + sub / _BINS_PER_OCTAVE),
                base * (1 + (sub + 1) / _BINS_PER_OCTAVE))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value > 0 and math.isfinite(value):
            key = self._bin_key(value)
            self._bins[key] = self._bins.get(key, 0) + 1
        else:
            self._nonpos += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Deterministic quantile estimate interpolated within its bin.

        Accurate to the bin's relative width (< 1/16); exact for the
        extremes because estimates are clamped into [min, max].
        """
        if not self.count:
            return None
        target = q * self.count
        cumulative = self._nonpos
        if target <= cumulative:
            return self.min
        for key in sorted(self._bins):
            width = self._bins[key]
            if cumulative + width >= target:
                low, high = self._bin_edges(key)
                estimate = low + (high - low) * (target - cumulative) / width
                return min(max(estimate, self.min), self.max)
            cumulative += width
        return self.max

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "count": self.count, "sum": self.total,
            "min": self.min, "max": self.max, "mean": self.mean,
            "p50": self.quantile(0.50), "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "bins": {str(key): width
                     for key, width in sorted(self._bins.items())},
        }
        if self._nonpos:
            summary["nonpos"] = self._nonpos
        return summary

    def combine(self, other: Mapping[str, object]) -> None:
        """Fold another histogram's summary into this one."""
        count = int(other.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(other.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            value = other.get(bound)
            if value is None:
                continue
            own = getattr(self, bound)
            setattr(self, bound,
                    value if own is None else pick(own, value))
        for key, width in other.get("bins", {}).items():
            key = int(key)
            self._bins[key] = self._bins.get(key, 0) + int(width)
        self._nonpos += int(other.get("nonpos", 0))


class _NullMetric:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class NullMetrics:
    """The default disabled registry: accepts everything, records nothing."""

    enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, policy: Optional[str] = None) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Create-or-get registry of named metrics."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str, policy: Optional[str] = None) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(policy or "max")
        elif policy is not None and metric.policy != policy:
            raise ConfigurationError(
                f"gauge {name!r} already registered with policy "
                f"{metric.policy!r}, not {policy!r}")
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram()
        return metric

    def _check_free(self, name: str, target: Dict[str, object]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not target and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {kind}")

    # ------------------------------------------------------------------
    def count_commands(self, before: Mapping[str, int],
                       after: Mapping[str, int],
                       prefix: str = "dram.commands.") -> None:
        """Record the delta of two device command-count snapshots.

        The device model already accounts every issued command by
        mnemonic (:attr:`repro.dram.device.HBM2Device.command_counts`);
        pulling deltas here keeps the per-command hot path untouched.
        """
        for mnemonic, total in after.items():
            delta = total - before.get(mnemonic, 0)
            if delta:
                self.counter(prefix + mnemonic).inc(delta)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready dump of every metric."""
        return {
            "counters": {name: metric.value
                         for name, metric in sorted(self._counters.items())},
            "gauges": {name: metric.value
                       for name, metric in sorted(self._gauges.items())},
            "histograms": {name: metric.summary()
                           for name, metric in
                           sorted(self._histograms.items())},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]
                       ) -> None:
        """Fold a snapshot (e.g. a worker's) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).combine(summary)

    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> None:
        from repro.durable import atomic_write_bytes
        atomic_write_bytes(
            path, (json.dumps(self.snapshot(), indent=1) + "\n").encode(),
            kind="metrics")

    @staticmethod
    def read_snapshot(path: Union[str, Path]
                      ) -> Dict[str, Dict[str, object]]:
        return json.loads(Path(path).read_text())

"""Live campaign progress from the event stream.

The event bus (:mod:`repro.obs.events`) is the transport; this module
is the consumer.  :class:`CampaignView` is a pure fold over the event
stream — subscribe it to a live bus or replay a finished log through
it — maintaining completion counts, measured-record totals, retry and
quarantine tallies, and per-worker liveness.  On top of the view:

* :func:`render_progress` — the one-line status used by the sweep/fleet
  ``--progress`` flag (items done, rows/s, ETA, live worker count);
* :func:`render_status` — the multi-section rendering behind
  ``repro obs tail`` (adds per-worker liveness rows and stale-worker
  flags);
* :func:`tail_events` — the CLI implementation: replay a log once, or
  ``--follow`` it while a campaign runs in another process.

Worker liveness is inferred, not reported: each worker emits a
``worker_heartbeat`` when it picks up an item, so a worker whose latest
heartbeat names an (item, attempt) that never completes — and whose
last sign of life is older than ``stale_after`` — is flagged stale.
That is exactly the signature of a hung shard before the dispatch
timeout reaps it.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.events import Event, EventBus, read_events

__all__ = [
    "CampaignView",
    "ProgressRenderer",
    "render_progress",
    "render_status",
    "tail_events",
]


class CampaignView:
    """Campaign state folded from an event stream.

    Subscribe via :meth:`on_event` (``bus.subscribe(view.on_event)``)
    or replay a finished log (``view.replay(events)``).  All times are
    campaign-relative seconds (the bus's ``timing.t_s`` domain).
    """

    def __init__(self) -> None:
        self.kind: Optional[str] = None
        self.total: Optional[int] = None
        self.completed: Dict[int, int] = {}  # item -> attempt
        self.dispatched: Dict[int, int] = {}
        self.records = 0
        self.flips = 0
        self.retries = 0
        self.quarantined = 0
        self.heartbeats = 0
        self.finished = False
        self.last_t_s = 0.0
        # pid -> (last_seen_t_s, current (item, attempt) or None)
        self._workers: Dict[int, Tuple[float, Optional[Tuple[int, int]]]] = {}

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        t_s = float(event.timing.get("t_s", 0.0))
        self.last_t_s = max(self.last_t_s, t_s)
        pid = event.timing.get("pid")
        if event.type == "campaign_started":
            self.kind = str(event.data.get("kind", "sweep"))
            self.total = event.data.get("shards", event.data.get("devices"))
        elif event.type == "shard_dispatched":
            self.dispatched[event.item] = event.attempt
        elif event.type == "worker_heartbeat":
            self.heartbeats += 1
            if pid is not None:
                self._workers[pid] = (t_s, (event.item, event.attempt))
        elif event.type == "item_completed":
            self.completed[event.item] = event.attempt
            self.records += int(event.data.get("records", 0))
            self.flips += int(event.data.get("flips", 0))
            if pid is not None:
                last, _ = self._workers.get(pid, (t_s, None))
                self._workers[pid] = (max(last, t_s), None)
            # Any worker still holding this exact (item, attempt) is done
            # with it even if the completion was recorded elsewhere.
            done = (event.item, event.attempt)
            for worker, (seen, current) in list(self._workers.items()):
                if current == done:
                    self._workers[worker] = (seen, None)
        elif event.type == "retry":
            self.retries += 1
        elif event.type == "quarantine":
            self.quarantined += 1
        elif event.type == "campaign_finished":
            self.finished = True

    def replay(self, events) -> "CampaignView":
        for event in events:
            self.on_event(event)
        return self

    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def rows_per_s(self, now_s: Optional[float] = None) -> float:
        now = self.last_t_s if now_s is None else now_s
        return self.records / now if now > 0 else 0.0

    def eta_s(self, now_s: Optional[float] = None) -> Optional[float]:
        """Remaining-work estimate from the mean completion rate."""
        now = self.last_t_s if now_s is None else now_s
        done = self.completed_count
        if self.total is None or done == 0 or now <= 0:
            return None
        remaining = max(self.total - done, 0)
        return remaining * now / done

    def stale_workers(self, now_s: Optional[float] = None,
                      stale_after: float = 5.0) -> List[Dict[str, object]]:
        """Workers holding an uncompleted item with no recent sign of life.

        ``now_s`` defaults to the newest event time — right for
        post-mortem replays; pass the live campaign-relative clock when
        following a running campaign.
        """
        now = self.last_t_s if now_s is None else now_s
        stale = []
        for pid, (seen, current) in sorted(self._workers.items()):
            if current is None:
                continue
            item, attempt = current
            if self.completed.get(item) == attempt:
                # This exact attempt finished; the holder is just idle.
                # A *different* attempt completing leaves the holder
                # flagged: it hung and the work was redone elsewhere.
                continue
            idle = now - seen
            if idle > stale_after:
                stale.append({"pid": pid, "item": item, "attempt": attempt,
                              "idle_s": round(idle, 3)})
        return stale

    def live_workers(self, now_s: Optional[float] = None,
                     stale_after: float = 5.0) -> int:
        now = self.last_t_s if now_s is None else now_s
        return sum(1 for seen, current in self._workers.values()
                   if current is not None and now - seen <= stale_after)


def _fmt_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "eta --"
    if eta >= 3600:
        return f"eta {eta / 3600:.1f}h"
    if eta >= 60:
        return f"eta {eta / 60:.1f}m"
    return f"eta {eta:.0f}s"


def render_progress(view: CampaignView,
                    now_s: Optional[float] = None,
                    stale_after: float = 5.0) -> str:
    """One status line: ``[sweep] 3/6 items  1,234 rows (56.7 rows/s) …``."""
    now = view.last_t_s if now_s is None else now_s
    total = "?" if view.total is None else view.total
    parts = [f"[{view.kind or 'campaign'}]",
             f"{view.completed_count}/{total} items",
             f"{view.records:,} rows ({view.rows_per_s(now):.1f} rows/s)",
             _fmt_eta(view.eta_s(now))]
    live = view.live_workers(now, stale_after)
    if live:
        parts.append(f"{live} live")
    stale = view.stale_workers(now, stale_after)
    if stale:
        parts.append(f"{len(stale)} stale")
    if view.retries:
        parts.append(f"{view.retries} retries")
    if view.quarantined:
        parts.append(f"{view.quarantined} quarantined")
    if view.finished:
        parts.append("done")
    return "  ".join(parts)


def render_status(view: CampaignView,
                  now_s: Optional[float] = None,
                  stale_after: float = 5.0) -> str:
    """Multi-line rendering for ``repro obs tail``."""
    now = view.last_t_s if now_s is None else now_s
    lines = [render_progress(view, now, stale_after)]
    if view._workers:
        lines.append("workers:")
        for pid, (seen, current) in sorted(view._workers.items()):
            if current is None:
                state = "idle"
            else:
                state = f"item {current[0]} attempt {current[1]}"
            idle = now - seen
            flag = "  STALE" if any(row["pid"] == pid for row in
                                    view.stale_workers(now, stale_after)) \
                else ""
            lines.append(f"  pid {pid}: {state} "
                         f"(last seen {idle:.1f}s ago){flag}")
    return "\n".join(lines)


class ProgressRenderer:
    """Throttled live printer; subscribe after the view it renders.

    Prints at most once per ``interval_s`` (and once on
    ``campaign_finished``) so a fast campaign doesn't flood the stream.
    """

    def __init__(self, view: CampaignView, epoch: float,
                 stream: Optional[TextIO] = None,
                 interval_s: float = 0.5,
                 stale_after: float = 5.0) -> None:
        self._view = view
        self._epoch = epoch
        self._stream = stream if stream is not None else sys.stderr
        self._interval_s = interval_s
        self._stale_after = stale_after
        self._last_print = -1e9

    def on_event(self, event: Event) -> None:
        now = time.monotonic()
        if event.type != "campaign_finished" and \
                now - self._last_print < self._interval_s:
            return
        self._last_print = now
        print(render_progress(self._view, now - self._epoch,
                              self._stale_after),
              file=self._stream, flush=True)


def tail_events(path: Union[str, Path], follow: bool = False,
                stale_after: float = 5.0,
                stream: Optional[TextIO] = None,
                poll_s: float = 0.5) -> CampaignView:
    """Replay (or follow) an event log, printing live status.

    Without ``follow``: read the log once, print the final status, and
    return the view.  With ``follow``: poll the file, printing a status
    line as new events land, until ``campaign_finished`` arrives.
    """
    path = Path(path)
    out = stream if stream is not None else sys.stdout
    if not follow and not path.exists():
        raise ConfigurationError(
            f"no event log at {path} (record one with --events PATH)")
    view = CampaignView()
    if not follow:
        # Tolerant: a log with a torn final line (kill -9 mid-append)
        # still replays; the fragment is dropped and counted.
        view.replay(read_events(path, tolerant=True))
        print(render_status(view, stale_after=stale_after), file=out)
        return view

    # Follow mode survives whatever happens to the file underneath it:
    # a torn final line is skipped (EventBus.tick is tolerant), and a
    # truncation/rotation — e.g. a new campaign reusing the path —
    # restarts the scan from the top instead of wedging at a stale
    # offset or raising from json.loads.
    bus = EventBus(path, truncate=False)
    bus.subscribe(view.on_event)
    while True:
        fresh = bus.tick() if path.exists() else []
        if fresh:
            # The newest event time is the clock: staleness and rates are
            # judged in the producing campaign's time domain, not ours.
            print(render_progress(view, None, stale_after),
                  file=out, flush=True)
        if view.finished:
            break
        time.sleep(poll_s)
    print(render_status(view, stale_after=stale_after), file=out)
    return view

"""Render exported traces/metrics as a human-readable profile.

Backs ``python -m repro obs summarize t.jsonl [--metrics m.json]``: a
per-phase time profile (where did the campaign's wall time go), the
slowest shards (where to look when ``--jobs N`` does not scale), and —
when a metrics snapshot is given — the command-stream accounting
(commands issued by type, commands/s, rows/s, shard retries/timeouts,
the execution engine's program-cache hit rate, and streaming-quantile
latency summaries for every recorded histogram).

Works on any trace this package wrote: a serial sweep, a merged
parallel campaign, a fleet run, or a single CLI command.  Fleet traces
(``device`` spans under the campaign root) additionally get a
per-device table with population spread — the fleet analogue of the
slowest-shards view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.obs.trace import SpanRecord, read_jsonl

__all__ = [
    "device_profile",
    "phase_profile",
    "slowest_spans",
    "render_profile",
    "summarize_trace",
]


def _wall_seconds(records: Sequence[SpanRecord]) -> float:
    """Total campaign wall time: the summed duration of the root spans.

    Roots of a merged parallel trace are campaigns (shards are children);
    a bare worker trace or a single-command trace may have several roots,
    which ran sequentially in one process, so their durations add.
    """
    return sum(record.duration_s for record in records
               if record.parent_id is None)


def phase_profile(records: Sequence[SpanRecord]
                  ) -> List[Dict[str, object]]:
    """Aggregate spans by name: count, total/mean duration, wall share.

    ``total_s`` sums each span's own duration (children nest inside
    parents, so the column is *inclusive* time — the tree view of where
    time went, not an exclusive flat profile).
    """
    wall = _wall_seconds(records)
    by_name: Dict[str, List[float]] = {}
    order: List[str] = []
    for record in records:
        if record.name not in by_name:
            by_name[record.name] = []
            order.append(record.name)
        by_name[record.name].append(record.duration_s)
    profile = []
    for name in order:
        durations = by_name[name]
        total = sum(durations)
        profile.append({
            "phase": name,
            "count": len(durations),
            "total_s": total,
            "mean_ms": 1e3 * total / len(durations),
            "share": total / wall if wall > 0 else 0.0,
        })
    profile.sort(key=lambda row: row["total_s"], reverse=True)
    return profile


def slowest_spans(records: Sequence[SpanRecord], name: str = "shard",
                  top: int = 5) -> List[SpanRecord]:
    """The ``top`` longest spans named ``name`` (default: shards)."""
    matching = [record for record in records if record.name == name]
    matching.sort(key=lambda record: record.duration_s, reverse=True)
    return matching[:top]


def device_profile(records: Sequence[SpanRecord]
                   ) -> List[Dict[str, object]]:
    """Per-device rows from a fleet trace's ``device`` spans.

    Empty for non-fleet traces (no spans named ``device``), which is
    how the renderer decides whether to show the fleet section.
    """
    devices: List[Dict[str, object]] = []
    for record in records:
        if record.name != "device":
            continue
        wall = record.duration_s
        rows = record.attrs.get("records")
        devices.append({
            "device": record.attrs.get("device"),
            "seed": record.attrs.get("seed"),
            "wall_s": wall,
            "records": rows,
            "rows_per_s": (rows / wall if rows and wall > 0 else 0.0),
        })
    devices.sort(key=lambda row: (row["device"] is None, row["device"]))
    return devices


def _spread(values: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(values)
    return {"min": ordered[0], "p50": ordered[len(ordered) // 2],
            "max": ordered[-1]}


def _format_rows(rows: List[Sequence[str]], header: Sequence[str]) -> str:
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(str(cell).ljust(width) if i == 0
                       else str(cell).rjust(width)
                       for i, (cell, width) in enumerate(zip(row, widths)))
             for row in [header] + rows]
    lines.insert(1, "-" * len(lines[0]))
    return "\n".join(lines)


def _describe(record: SpanRecord) -> str:
    attrs = record.attrs
    keys = ("shard", "channel", "pseudo_channel", "bank", "region", "row")
    parts = [f"{key}={attrs[key]}" for key in keys if key in attrs]
    return " ".join(parts) if parts else "-"


def render_profile(records: Sequence[SpanRecord],
                   metrics: Optional[Mapping[str, Mapping[str, object]]]
                   = None,
                   top: int = 5) -> str:
    """The full profile rendering (see module docstring)."""
    wall = _wall_seconds(records)
    sections: List[str] = []

    sections.append(f"spans: {len(records)}    campaign wall: {wall:.3f} s")

    rows = [[row["phase"], row["count"], f"{row['total_s']:.3f}",
             f"{row['mean_ms']:.2f}", f"{row['share']:.1%}"]
            for row in phase_profile(records)]
    sections.append("time per phase (inclusive)\n" + _format_rows(
        rows, ["phase", "count", "total_s", "mean_ms", "share"]))

    shards = slowest_spans(records, "shard", top)
    if shards:
        shard_rows = [[_describe(record), f"{record.duration_s:.3f}"]
                      for record in shards]
        sections.append(f"slowest shards (top {len(shards)})\n" +
                        _format_rows(shard_rows, ["shard", "wall_s"]))

    devices = device_profile(records)
    if devices:
        sections.append(_render_devices(devices))

    if metrics is not None:
        sections.append(_render_metrics(metrics, wall))

    return "\n\n".join(sections)


def _render_devices(devices: List[Dict[str, object]]) -> str:
    rows = [[f"{row['device']}", f"{row['seed']}",
             f"{row['wall_s']:.3f}",
             "-" if row["records"] is None else f"{row['records']}",
             f"{row['rows_per_s']:.1f}"]
            for row in devices]
    table = _format_rows(
        rows, ["device", "seed", "wall_s", "records", "rows/s"])
    walls = _spread([row["wall_s"] for row in devices])
    rates = _spread([row["rows_per_s"] for row in devices])
    spread = (f"population spread: wall_s "
              f"min={walls['min']:.3f} p50={walls['p50']:.3f} "
              f"max={walls['max']:.3f}; rows/s "
              f"min={rates['min']:.1f} p50={rates['p50']:.1f} "
              f"max={rates['max']:.1f}")
    return (f"fleet devices ({len(devices)})\n{table}\n{spread}")


def _render_metrics(metrics: Mapping[str, Mapping[str, object]],
                    wall: float) -> str:
    counters = metrics.get("counters", {})
    commands = {name.rsplit(".", 1)[-1]: value
                for name, value in counters.items()
                if name.startswith("dram.commands.")}
    lines: List[str] = []
    if commands:
        total = sum(commands.values())
        per_type = "  ".join(f"{mnemonic}={int(value):,}"
                             for mnemonic, value in sorted(commands.items()))
        lines.append(f"DRAM commands: {int(total):,}  ({per_type})")
        if wall > 0:
            lines.append(f"command throughput: {total / wall:,.0f} "
                         "commands/s")
    measurements = (counters.get("sweep.ber_records", 0) +
                    counters.get("sweep.hcfirst_records", 0))
    if measurements and wall > 0:
        lines.append(f"measurements: {int(measurements):,} "
                     f"({measurements / wall:.2f} rows/s)")
    for name, label in (("hammer.pairs", "hammer pairs"),
                        ("bitflips.observed", "bitflips observed"),
                        ("trr.preventive_refreshes",
                         "TRR preventive refreshes"),
                        ("sweep.shard_retries", "shard retries"),
                        ("sweep.shard_timeouts", "shard timeouts"),
                        ("sweep.shard_failures", "shard failures"),
                        ("campaign.recovered_shards",
                         "corrupt shard archives recovered"),
                        ("campaign.recovered_manifests",
                         "corrupt manifests recovered"),
                        ("campaign.checkpoint_write_errors",
                         "checkpoint writes refused (disk)"),
                        ("engine.pool.worker_crashes",
                         "worker pool crashes"),
                        ("engine.pool.breaker_open",
                         "pool circuit-breaker trips"),
                        ("sweep.degraded_serial",
                         "shards finished degraded-serial"),
                        ("fleet.degraded_serial",
                         "devices finished degraded-serial"),
                        ("events.dropped_lines",
                         "torn event-log lines dropped")):
        if name in counters:
            lines.append(f"{label}: {int(counters[name]):,}")
    hits = int(counters.get("engine.cache.hits", 0))
    misses = int(counters.get("engine.cache.misses", 0))
    if hits or misses:
        rate = hits / (hits + misses)
        lines.append(f"program cache: {hits:,} hits, {misses:,} misses "
                     f"({rate:.1%} hit rate)")
    fast_hits = int(counters.get("engine.fastpath.hits", 0))
    fast_falls = int(counters.get("engine.fastpath.fallbacks", 0))
    fast_bypasses = int(counters.get("engine.fastpath.bypasses", 0))
    if fast_hits or fast_falls or fast_bypasses:
        total = fast_hits + fast_falls + fast_bypasses
        lines.append(f"analytic fast path: {fast_hits:,} hits, "
                     f"{fast_falls:,} fallbacks, "
                     f"{fast_bypasses:,} bypasses "
                     f"({fast_hits / total:.1%} of programs)")
    for name in sorted(metrics.get("histograms", {})):
        summary = metrics["histograms"][name]
        if not summary.get("count") or "p50" not in summary:
            continue
        lines.append(
            f"{name}: n={summary['count']} p50={summary['p50']:.4g} "
            f"p95={summary['p95']:.4g} p99={summary['p99']:.4g} "
            f"(min={summary['min']:.4g} max={summary['max']:.4g})")
    if not lines:
        lines.append("(metrics snapshot holds no campaign counters)")
    return "command-stream metrics\n" + "\n".join(
        "  " + line for line in lines)


def summarize_trace(trace_path: Union[str, Path],
                    metrics_path: Union[str, Path, None] = None,
                    top: int = 5) -> str:
    """Load a trace (and optional metrics snapshot) and render it."""
    if not Path(trace_path).exists():
        raise ConfigurationError(
            f"no trace at {trace_path} (record one with --trace PATH)")
    records = read_jsonl(trace_path)
    metrics = None
    if metrics_path is not None:
        if not Path(metrics_path).exists():
            raise ConfigurationError(
                f"no metrics snapshot at {metrics_path} "
                "(record one with --metrics PATH)")
        import json
        metrics = json.loads(Path(metrics_path).read_text())
    return render_profile(records, metrics, top=top)

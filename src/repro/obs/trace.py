"""Hierarchical span tracer for campaigns, sweeps, shards, and phases.

A *span* is one timed, named region of work.  Spans nest: the tracer
keeps an open-span stack, so a span opened while another is open becomes
its child.  The span tree of a characterization campaign looks like::

    campaign                      (repro.core.parallel)
      shard                       (worker process, one per plan entry)
        sweep                     (repro.core.sweeps)
          region                  (one (ch, pc, bank, region) cell grid)
            cell                  (one victim row)
              ber / hcfirst       (one measurement)
                prepare / hammer / readback   (repro.core.hammer)

Design constraints, in priority order:

1. **Zero cost when disabled.**  The module-level default tracer is
   :data:`NOOP_TRACER`; its :meth:`~NoopTracer.span` returns one shared
   no-op context manager, so an instrumented hot path pays a function
   call and nothing else.  Enabling tracing is an explicit act
   (:func:`repro.obs.set_tracer` / the CLI ``--trace`` flag).
2. **Dependency-free.**  Only the standard library; traces serialize to
   JSON Lines (one span object per line) so any tool can consume them.
3. **Deterministic export order.**  Spans are recorded when *opened*,
   i.e. the export order is the pre-order traversal of the span tree —
   for a merged parallel trace this equals the shard plan order.

Cross-process traces: worker processes run their own :class:`Tracer`
with their own monotonic clock.  :meth:`Tracer.graft` imports a worker's
span records into a parent tracer, rebasing span ids and re-parenting
the worker's root spans, so one coherent tree covers the whole campaign.
Timestamps stay in each recorder's own clock domain (durations are
meaningful everywhere; absolute starts only within one process).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "read_jsonl",
]

Clock = Callable[[], float]


@dataclass
class SpanRecord:
    """One completed (or still-open) span.

    ``end_s`` is None while the span is open; an exported open span
    (e.g. from a crashed worker) keeps it None.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    end_s: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        return cls(span_id=int(payload["span"]),
                   parent_id=(None if payload.get("parent") is None
                              else int(payload["parent"])),
                   name=str(payload["name"]),
                   start_s=float(payload["start_s"]),
                   end_s=(None if payload.get("end_s") is None
                          else float(payload["end_s"])),
                   attrs=dict(payload.get("attrs") or {}))


class Span:
    """Context-manager handle of one open span."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    @property
    def span_id(self) -> int:
        """This span's id (e.g. a graft point for imported subtrees)."""
        return self._record.span_id

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span (e.g. results known at close)."""
        self._record.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._record, failed=exc_type is not None)


class _NoopSpan:
    """Shared do-nothing span; the disabled-path cost of instrumentation."""

    __slots__ = ()
    span_id = None

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The default tracer: records nothing, allocates nothing per span."""

    enabled = False
    records: Sequence[SpanRecord] = ()
    dropped = 0

    def span(self, name: str, **attrs: object) -> _NoopSpan:
        return _NOOP_SPAN

    def write_jsonl(self, path: Union[str, Path]) -> None:
        raise RuntimeError(
            "the no-op tracer has nothing to export; install a real "
            "Tracer first (repro.obs.set_tracer)")


NOOP_TRACER = NoopTracer()


class Tracer:
    """Records a tree of timed spans.

    Args:
        clock: monotonic time source (seconds).  Pluggable so tests can
            drive deterministic timelines.
        max_spans: hard cap on recorded spans; spans opened beyond it
            are silently no-ops and counted in :attr:`dropped` (a full-
            density campaign traced at cell granularity would otherwise
            grow without bound).
    """

    enabled = True

    def __init__(self, clock: Optional[Clock] = None,
                 max_spans: int = 1_000_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self._clock: Clock = clock or time.monotonic
        self._max_spans = max_spans
        self.records: List[SpanRecord] = []
        self.dropped = 0
        self._stack: List[SpanRecord] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Open a span; use as ``with tracer.span("hammer", rows=2):``."""
        if len(self.records) >= self._max_spans:
            self.dropped += 1
            return _NOOP_SPAN
        parent = self._stack[-1].span_id if self._stack else None
        record = SpanRecord(span_id=self._next_id, parent_id=parent,
                            name=name, start_s=self._clock(), attrs=attrs)
        self._next_id += 1
        self.records.append(record)
        self._stack.append(record)
        return Span(self, record)

    def _close(self, record: SpanRecord, failed: bool) -> None:
        record.end_s = self._clock()
        if failed:
            record.attrs["failed"] = True
        # Exiting out of order (a caller holding a span handle across a
        # generator boundary) closes everything opened inside it too.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
            if top.end_s is None:
                top.end_s = record.end_s

    # ------------------------------------------------------------------
    def graft(self, records: Iterable[SpanRecord],
              parent_id: Optional[int] = None) -> int:
        """Import foreign span records (e.g. a worker shard's trace).

        Span ids are rebased onto this tracer's id space and the foreign
        roots are re-parented under ``parent_id`` (or left as roots).
        Records are appended in their given order, preserving the
        foreign pre-order.  Returns the number of spans grafted.
        """
        remap: Dict[int, int] = {}
        count = 0
        for record in records:
            new_id = self._next_id
            self._next_id += 1
            remap[record.span_id] = new_id
            if record.parent_id is None:
                new_parent = parent_id
            else:
                new_parent = remap.get(record.parent_id)
                if new_parent is None:
                    # Orphaned subtree (truncated trace): hang it off the
                    # graft point rather than dropping it.
                    new_parent = parent_id
            self.records.append(SpanRecord(
                span_id=new_id, parent_id=new_parent, name=record.name,
                start_s=record.start_s, end_s=record.end_s,
                attrs=dict(record.attrs)))
            count += 1
        return count

    # ------------------------------------------------------------------
    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Export all recorded spans as JSON Lines, in open order."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.as_dict()) + "\n")


def read_jsonl(path: Union[str, Path]) -> List[SpanRecord]:
    """Load a trace exported with :meth:`Tracer.write_jsonl`."""
    records: List[SpanRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records

"""Deterministic, hierarchical random number generation.

The simulated HBM2 device must behave like silicon: the same physical cell
has the same RowHammer threshold, orientation, and retention time every
time it is tested, across repetitions and across independent experiment
processes.  We achieve this by deriving every random stream from a stable
64-bit hash of (device seed, entity path), where the entity path names the
physical object the stream describes, e.g. ``("cell", ch, pc, bank, row)``.

This is the standard "counter-based / keyed" RNG idiom used by hardware
fault simulators: no global RNG state, no ordering sensitivity, perfect
reproducibility under parallelism.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable, Union

import numpy as np

Key = Union[int, str, bytes]

#: Domain-separation prefix so streams from this library never collide with
#: user-seeded numpy generators.
_DOMAIN = b"repro.hbm2-rowhammer.v1"


def _encode_key(part: Key) -> bytes:
    """Encode one path component unambiguously (type-tagged)."""
    if isinstance(part, bool):  # bool is an int subclass; tag separately
        return b"b" + (b"\x01" if part else b"\x00")
    if isinstance(part, int):
        return b"i" + struct.pack("<q", part)
    if isinstance(part, str):
        raw = part.encode("utf-8")
        return b"s" + struct.pack("<I", len(raw)) + raw
    if isinstance(part, bytes):
        return b"y" + struct.pack("<I", len(part)) + part
    raise TypeError(f"unsupported key component type: {type(part)!r}")


def derive_seed(root_seed: int, path: Iterable[Key]) -> int:
    """Derive a stable 128-bit integer seed for an entity path.

    ``root_seed`` is the device seed; ``path`` names the entity.  The same
    (seed, path) pair always yields the same derived seed, independent of
    call order, process, or platform.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(_DOMAIN)
    hasher.update(struct.pack("<q", root_seed))
    for part in path:
        hasher.update(_encode_key(part))
    return int.from_bytes(hasher.digest(), "little")


def generator_for(root_seed: int, path: Iterable[Key]) -> np.random.Generator:
    """Create a numpy Generator dedicated to one entity path.

    Uses Philox, a counter-based bit generator, so creating millions of
    per-row generators stays cheap and statistically independent.
    """
    return np.random.Generator(np.random.Philox(key=derive_seed(root_seed, path)))


def uniform_hash01(root_seed: int, path: Iterable[Key]) -> float:
    """A single deterministic uniform(0, 1) draw for an entity path.

    Cheaper than building a Generator when only one number is needed
    (e.g. a per-bank scaling factor).
    """
    value = derive_seed(root_seed, path)
    # Use the top 53 bits for an exactly-representable double in [0, 1).
    return (value >> 75) / float(1 << 53)


def normal_hash(root_seed: int, path: Iterable[Key]) -> float:
    """A single deterministic standard-normal draw for an entity path.

    Implemented via the inverse-CDF of a hashed uniform so that it needs
    no Generator allocation.  Accuracy of the rational approximation is
    ~1e-9, far below the physical meaning of any calibration constant.
    """
    u = uniform_hash01(root_seed, path)
    # Clamp away from 0/1 so the inverse CDF stays finite.
    u = min(max(u, 1e-15), 1.0 - 1e-15)
    return _norm_ppf(u)


def _norm_ppf(p: float) -> float:
    """Acklam's rational approximation to the standard normal inverse CDF."""
    # Coefficients in rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = (-2.0 * np.log(p)) ** 0.5
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = (-2.0 * np.log(1.0 - p)) ** 0.5
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)

"""Time and frequency unit helpers.

The library tracks in-DRAM time in *interface clock cycles* (the HBM2
interface in the paper runs at 600 MHz, i.e. one cycle every 1.66 ns) and
converts to seconds only at reporting boundaries.  Keeping integer cycle
counts internally avoids floating-point drift over the hundreds of
thousands of commands a hammering experiment issues.
"""

from __future__ import annotations

#: Nanoseconds per second.
NS_PER_S = 1_000_000_000

#: Microseconds per second.
US_PER_S = 1_000_000

#: Milliseconds per second.
MS_PER_S = 1_000


def ns(value: float) -> float:
    """Convert a value in nanoseconds to seconds."""
    return value / NS_PER_S


def us(value: float) -> float:
    """Convert a value in microseconds to seconds."""
    return value / US_PER_S


def ms(value: float) -> float:
    """Convert a value in milliseconds to seconds."""
    return value / MS_PER_S


def seconds_to_ns(value: float) -> float:
    """Convert a value in seconds to nanoseconds."""
    return value * NS_PER_S


def seconds_to_us(value: float) -> float:
    """Convert a value in seconds to microseconds."""
    return value * US_PER_S


def seconds_to_ms(value: float) -> float:
    """Convert a value in seconds to milliseconds."""
    return value * MS_PER_S


def cycles_for_time(time_s: float, frequency_hz: float) -> int:
    """Number of whole clock cycles needed to cover ``time_s`` seconds.

    DRAM timing constraints are minimums, so partial cycles round *up*:
    a 48 ns constraint on a 600 MHz clock needs ceil(48 / 1.6667) = 29
    cycles, not 28.

    >>> cycles_for_time(48e-9, 600e6)
    29
    """
    if time_s < 0:
        raise ValueError(f"time must be non-negative, got {time_s}")
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    exact = time_s * frequency_hz
    whole = int(exact)
    if exact > whole:
        whole += 1
    return whole


def time_for_cycles(cycles: int, frequency_hz: float) -> float:
    """Seconds elapsed over ``cycles`` clock cycles at ``frequency_hz``."""
    if cycles < 0:
        raise ValueError(f"cycles must be non-negative, got {cycles}")
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz

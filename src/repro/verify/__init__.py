"""Static analyzers: program verification and source determinism lint.

Two analyzers share the :class:`Diagnostic` / :class:`VerificationReport`
types and the CLI exit-code contract (0 clean / 1 warnings / 2
violations):

* :func:`verify_program` — abstract interpretation of a DRAM Bender
  :class:`~repro.bender.program.Program` against the same
  :class:`~repro.dram.timing.ConstraintTable` the runtime enforces.
* :func:`lint_source` — AST lint over the package source for
  reproducibility hazards (unseeded RNG, wall-clock reads, set-order
  dependence in fingerprinted paths).

A third analysis builds on the first: :func:`summarize_program`
(:mod:`repro.verify.effects`) extends the abstract interpretation into
a typed :class:`EffectSummary` of what a verified program *does* —
the contract behind the execution engine's analytic fast path — with
an explicit :class:`Unsummarizable` result for programs whose effects
cannot be proven.
"""

from repro.verify.diagnostics import (
    ANALYSIS_TRUNCATED,
    HAMMER_COUNT_MISMATCH,
    PROTOCOL_VIOLATION,
    REFRESH_STARVATION,
    SEVERITY_VIOLATION,
    SEVERITY_WARNING,
    TIMING_VIOLATION,
    TRR_WINDOW_WARNING,
    Diagnostic,
    VerificationReport,
)
from repro.verify.determinism import (
    FINGERPRINTED_SUFFIXES,
    lint_file,
    lint_source,
    lint_text,
)
from repro.verify.effects import (
    EffectSummary,
    Unsummarizable,
    summarize_program,
)
from repro.verify.program import (
    VerifyContext,
    assert_verified,
    count_activations,
    verify_program,
    verify_protocol,
)

__all__ = [
    "ANALYSIS_TRUNCATED",
    "HAMMER_COUNT_MISMATCH",
    "PROTOCOL_VIOLATION",
    "REFRESH_STARVATION",
    "SEVERITY_VIOLATION",
    "SEVERITY_WARNING",
    "TIMING_VIOLATION",
    "TRR_WINDOW_WARNING",
    "Diagnostic",
    "VerificationReport",
    "FINGERPRINTED_SUFFIXES",
    "lint_file",
    "lint_source",
    "lint_text",
    "EffectSummary",
    "Unsummarizable",
    "summarize_program",
    "VerifyContext",
    "assert_verified",
    "count_activations",
    "verify_program",
    "verify_protocol",
]

"""AST lint enforcing the repo's determinism contract.

Campaign fingerprints, shard checkpoints and the fault plan all promise
byte-identical re-runs from a seed (PRs 1-3).  That contract dies the
moment library code consults an unseeded RNG, reads the wall clock, or
iterates a set in hash order inside a fingerprinted path.  This module
turns the convention into lint rules over the package source:

``DET001`` (violation)
    Unseeded randomness: ``random``-module functions, the legacy
    ``numpy.random`` functions, ``random.Random()`` /
    ``numpy.random.default_rng()`` without a seed, ``numpy.random.seed``
    (global state).  Seeded construction — ``default_rng(seed)``,
    ``Generator(PCG64(seed))``, ``random.Random(seed)`` — is fine;
    :mod:`repro.rng` wraps exactly those.

``DET002`` (violation)
    Wall-clock reads: ``time.time``/``time_ns``,
    ``datetime.datetime.now``/``utcnow``/``today``,
    ``datetime.date.today``.  Monotonic and duration clocks
    (``perf_counter``, ``monotonic``, ``process_time``) and ``sleep``
    are allowed — they never end up in fingerprinted bytes.

``DET003`` (warning, fingerprinted files only)
    Iterating a set (literal, ``set(...)`` call, or a local name bound
    to one) in a ``for`` or comprehension inside a file whose bytes feed
    fingerprints (:data:`FINGERPRINTED_SUFFIXES`).  Wrap in ``sorted``.

Suppress a finding with ``# noqa`` (blanket) or ``# noqa: DET001`` on
the offending line, mirroring ruff's convention.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.verify.diagnostics import (
    SEVERITY_VIOLATION,
    SEVERITY_WARNING,
    Diagnostic,
    VerificationReport,
)

#: Files whose iteration order reaches campaign fingerprints / manifests.
FINGERPRINTED_SUFFIXES = (
    "core/campaign.py",
    "faults/plan.py",
    "core/parallel.py",
    "dram/profiles.py",
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*([A-Z0-9, ]+))?", re.IGNORECASE)

_RANDOM_MODULE_FUNCTIONS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

_NUMPY_LEGACY_FUNCTIONS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "bytes", "beta", "binomial", "poisson",
    "exponential", "geometric", "gamma",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Callables that are deterministic *only* when given a seed argument.
_SEED_REQUIRED_CALLS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
})


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set")


class _Linter(ast.NodeVisitor):
    def __init__(self, filename: str, source_lines: Sequence[str],
                 fingerprinted: bool) -> None:
        self._filename = filename
        self._lines = source_lines
        self._fingerprinted = fingerprinted
        self.diagnostics: List[Diagnostic] = []
        # local name -> dotted module/attribute path it aliases
        self._aliases: Dict[str, str] = {}
        # local names currently bound to a set expression (DET003)
        self._set_names: set = set()

    # -- reporting -----------------------------------------------------
    def _suppressed(self, line_number: int, rule: str) -> bool:
        if 1 <= line_number <= len(self._lines):
            match = _NOQA_RE.search(self._lines[line_number - 1])
            if match:
                codes = match.group(1)
                if codes is None:
                    return True
                return rule in {code.strip().upper()
                                for code in codes.split(",")}
        return False

    def _emit(self, rule: str, severity: str, message: str,
              node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(line, rule):
            return
        column = getattr(node, "col_offset", 0) + 1
        self.diagnostics.append(Diagnostic(
            kind=rule, severity=severity, message=message,
            location=f"{self._filename}:{line}:{column}"))

    # -- import tracking -----------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
        self.generic_visit(node)

    def _dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted path through the
        import alias map (``np.random.seed`` -> ``numpy.random.seed``)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- DET001 / DET002 -----------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_call(dotted, node)
        self.generic_visit(node)

    def _check_call(self, dotted: str, node: ast.Call) -> None:
        if dotted in _WALL_CLOCK_CALLS:
            self._emit("DET002", SEVERITY_VIOLATION,
                       f"wall-clock read {dotted}() is not reproducible; "
                       "pass timestamps in or use a monotonic clock for "
                       "durations", node)
            return
        parts = dotted.split(".")
        if (parts[0] == "random" and len(parts) == 2
                and parts[1] in _RANDOM_MODULE_FUNCTIONS):
            self._emit("DET001", SEVERITY_VIOLATION,
                       f"{dotted}() uses the process-global RNG; use "
                       "repro.rng (seeded generators) instead", node)
            return
        if (len(parts) == 3 and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] in _NUMPY_LEGACY_FUNCTIONS):
            self._emit("DET001", SEVERITY_VIOLATION,
                       f"{dotted}() is numpy's legacy global-state RNG; "
                       "use numpy.random.default_rng(seed) via repro.rng",
                       node)
            return
        if dotted in _SEED_REQUIRED_CALLS and not node.args \
                and not node.keywords:
            self._emit("DET001", SEVERITY_VIOLATION,
                       f"{dotted}() without a seed draws OS entropy; "
                       "pass an explicit seed", node)

    # -- DET003 --------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._fingerprinted:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if _is_set_expression(node.value):
                        self._set_names.add(target.id)
                    else:
                        self._set_names.discard(target.id)
        self.generic_visit(node)

    def _iter_is_set(self, node: ast.AST) -> bool:
        if _is_set_expression(node):
            return True
        return isinstance(node, ast.Name) and node.id in self._set_names

    def _check_iteration(self, iter_node: ast.AST, node: ast.AST) -> None:
        if self._fingerprinted and self._iter_is_set(iter_node):
            self._emit("DET003", SEVERITY_WARNING,
                       "iterating a set in a fingerprinted path visits "
                       "elements in hash order; wrap in sorted(...)", node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def lint_text(text: str, filename: str = "<string>") -> List[Diagnostic]:
    """Lint one unit of Python source; returns its diagnostics."""
    try:
        tree = ast.parse(text, filename=filename)
    except SyntaxError as error:
        return [Diagnostic(
            kind="DET000", severity=SEVERITY_VIOLATION,
            message=f"cannot parse: {error.msg}",
            location=f"{filename}:{error.lineno or 0}:"
                     f"{(error.offset or 0)}")]
    normalized = filename.replace("\\", "/")
    fingerprinted = normalized.endswith(FINGERPRINTED_SUFFIXES)
    linter = _Linter(filename, text.splitlines(), fingerprinted)
    linter.visit(tree)
    return linter.diagnostics


def lint_file(path) -> List[Diagnostic]:
    path = Path(path)
    return lint_text(path.read_text(encoding="utf-8"), str(path))


def _default_root() -> Path:
    # The repro package directory itself (verify/ lives one level in).
    return Path(__file__).resolve().parents[1]


def iter_source_files(paths: Optional[Iterable] = None) -> List[Path]:
    """Expand files/directories into the sorted .py file list to lint."""
    roots = [Path(p) for p in paths] if paths else [_default_root()]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        else:
            files.append(root)
    return files


def lint_source(paths: Optional[Iterable] = None) -> VerificationReport:
    """Lint the package source (default) or the given files/dirs."""
    report = VerificationReport()
    for path in iter_source_files(paths):
        report.diagnostics.extend(lint_file(path))
    return report

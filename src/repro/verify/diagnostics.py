"""Typed diagnostics shared by the program verifier and source lint.

Every analyzer in :mod:`repro.verify` reports :class:`Diagnostic`
objects collected into a :class:`VerificationReport`.  The report maps
onto the CLI exit-code contract (``repro lint ...``):

====  =========================================
0     clean — no diagnostics
1     warnings only
2     at least one violation
====  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# -- diagnostic kinds (program verifier) -------------------------------
#: A command issues before its earliest timing-legal cycle.
TIMING_VIOLATION = "TimingViolation"
#: A command is illegal in the abstract bank state (ACT on an open bank,
#: RD/WR against a closed row, REF with a bank open, ...).
PROTOCOL_VIOLATION = "ProtocolViolation"
#: A pseudo channel the program hammers goes longer than tREFW without
#: a REF, so retention decay can contaminate the measurement.
REFRESH_STARVATION = "RefreshStarvation"
#: Counted ACTs per aggressor row disagree with the declared hammer
#: count, silently mis-attributing BER / HC_first.
HAMMER_COUNT_MISMATCH = "HammerCountMismatch"
#: REF cadence gives the on-die TRR sampler (one victim refresh every 17
#: REFs, paper Sec. 5) enough firing opportunities to rescue victims in
#: a program that assumes TRR is escaped.
TRR_WINDOW_WARNING = "TrrWindowWarning"
#: The abstract interpreter hit its step budget before the program end;
#: later instructions were not analyzed.
ANALYSIS_TRUNCATED = "AnalysisTruncated"

# -- severities --------------------------------------------------------
SEVERITY_WARNING = "warning"
SEVERITY_VIOLATION = "violation"

#: Default severity per diagnostic kind (source-lint rules DET001..DET003
#: register theirs in :mod:`repro.verify.determinism`).
KIND_SEVERITIES = {
    TIMING_VIOLATION: SEVERITY_VIOLATION,
    PROTOCOL_VIOLATION: SEVERITY_VIOLATION,
    REFRESH_STARVATION: SEVERITY_VIOLATION,
    HAMMER_COUNT_MISMATCH: SEVERITY_VIOLATION,
    TRR_WINDOW_WARNING: SEVERITY_WARNING,
    ANALYSIS_TRUNCATED: SEVERITY_WARNING,
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer.

    Attributes:
        kind: diagnostic type (one of the module constants, or a
            ``DETxxx`` rule id from the determinism lint).
        severity: ``"warning"`` or ``"violation"``.
        message: human-readable description.
        location: where the finding anchors — an instruction path like
            ``instructions[2].body[0]`` for programs, ``file:line:col``
            for source files.
        constraint: JEDEC constraint name for timing findings (``tRAS``,
            ``tFAW``, ...), else None.
    """

    kind: str
    severity: str
    message: str
    location: str = ""
    constraint: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
        }
        if self.constraint is not None:
            data["constraint"] = self.constraint
        return data

    def render(self) -> str:
        prefix = f"{self.location}: " if self.location else ""
        constraint = f" [{self.constraint}]" if self.constraint else ""
        return f"{prefix}{self.severity}: {self.kind}{constraint}: " \
               f"{self.message}"


@dataclass
class VerificationReport:
    """All diagnostics of one analysis run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Scheduled program duration in interface cycles, as the abstract
    #: interpreter computed it (None for source lint or truncated runs).
    duration_cycles: Optional[int] = None

    @property
    def violations(self) -> List[Diagnostic]:
        return [diagnostic for diagnostic in self.diagnostics
                if diagnostic.severity == SEVERITY_VIOLATION]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [diagnostic for diagnostic in self.diagnostics
                if diagnostic.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """True when nothing (not even a warning) was reported."""
        return not self.diagnostics

    @property
    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 warnings only, 2 violations."""
        if self.violations:
            return 2
        if self.warnings:
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "diagnostics": [diagnostic.to_dict()
                            for diagnostic in self.diagnostics],
            "summary": {
                "violations": len(self.violations),
                "warnings": len(self.warnings),
            },
            "exit_code": self.exit_code,
        }
        if self.duration_cycles is not None:
            data["duration_cycles"] = self.duration_cycles
        return data

    def render(self) -> str:
        if self.ok:
            return "clean: no diagnostics"
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        lines.append(f"{len(self.violations)} violation(s), "
                     f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)
